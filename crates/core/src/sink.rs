//! Incremental, GOP-at-a-time writes.
//!
//! [`WriteSink`] is the write-side counterpart of
//! [`ReadStream`](crate::ReadStream): frames are pushed incrementally, each
//! GOP is encoded and persisted **as it fills**, and
//! [`finish`](WriteSink::finish) returns the same
//! [`WriteReport`] a batch write would. An ingest
//! pipeline therefore holds at most one GOP of frames, instead of the whole
//! clip [`Engine::write`] requires up front — and because the sink persists
//! through the exact per-GOP path the batch write uses (same GOP boundaries,
//! same deferred-compression decisions, in the same order), the resulting
//! store is **byte-identical** to a batch write of the same frames.
//!
//! Three layers cooperate:
//!
//! * [`Engine::begin_incremental_write`] / [`Engine::push_incremental_gop`] /
//!   [`Engine::finish_incremental_write`] are the lock-scoped primitives: each
//!   call needs the engine only briefly, so callers that guard the engine with
//!   a lock (the [`Vss`](crate::Vss) mutex, a `vss-server` shard lock) hold it
//!   per GOP, not for the whole ingest.
//! * [`GopWriteBackend`] adapts those primitives to a particular locking
//!   discipline (or, for the baseline stores, to a buffer-then-batch-write
//!   fallback — baselines write monolithic files and genuinely cannot stream,
//!   which is exactly the contrast the paper draws).
//! * [`WriteSink`] owns the frame buffer and GOP chunking on top of any
//!   backend.
//!
//! # Overlapped encoding
//!
//! With [`VssConfig::readahead`](crate::VssConfig::readahead) `= N > 0`, the
//! sink encodes off-thread: each full GOP is handed to a dedicated encode
//! worker and the caller's thread persists previously encoded GOPs through
//! the backend, so the encode of GOP *n + 1* overlaps the file write of GOP
//! *n* (at most `N` encoded GOPs in flight). The worker uses exactly the
//! parameters [`Engine::sink_encoder`] captures and GOPs persist strictly in
//! submission order, so the resulting store stays **byte-identical** to both
//! the synchronous sink and a batch write. Backends never move threads: the
//! lock-scoped persist calls stay on the caller, which is what keeps the
//! `vss-server` shard-locking discipline (write lock per GOP) unchanged.
//! Dropping an overlapped sink mid-clip joins the worker and discards
//! in-flight GOPs — only fully persisted GOPs remain on disk.

use crate::engine::{Engine, WriteReport};
use crate::params::WriteRequest;
use crate::VssError;
use crossbeam::channel::{bounded, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::Instant;
use vss_catalog::PhysicalVideoId;
use vss_codec::{codec_instance, Codec, CodecError, EncodedGop, EncoderConfig};
use vss_frame::{Frame, FrameError, FrameSequence};

/// In-flight state of one incremental write. Opaque to callers; thread it
/// through the [`Engine`] incremental-write methods.
#[derive(Debug)]
pub struct IncrementalWrite {
    request: WriteRequest,
    frame_rate: f64,
    /// Established on the first flushed GOP.
    physical_id: Option<PhysicalVideoId>,
    time: f64,
    gops_written: usize,
    frames_written: usize,
    bytes_written: u64,
    deferred_levels: Vec<u8>,
    started: Instant,
}

impl IncrementalWrite {
    /// The logical video being written.
    pub fn name(&self) -> &str {
        &self.request.name
    }

    /// Frames persisted so far.
    pub fn frames_written(&self) -> usize {
        self.frames_written
    }
}

impl Engine {
    /// Frames per persisted block for the given codec (compressed GOP size or
    /// uncompressed block size) — the boundary at which a [`WriteSink`]
    /// flushes, chosen to match the batch write path exactly.
    pub fn write_gop_size(&self, codec: Codec) -> usize {
        if codec.is_compressed() {
            self.config.gop_size
        } else {
            self.config.uncompressed_gop_frames
        }
    }

    /// Begins an incremental write of `request` at the given frame rate
    /// (which must be positive and finite, as in a [`FrameSequence`]).
    /// Nothing is created until the first GOP is pushed (so an abandoned
    /// sink leaves no trace, and an empty one errors at finish just like an
    /// empty batch write).
    pub fn begin_incremental_write(
        &self,
        request: &WriteRequest,
        frame_rate: f64,
    ) -> Result<IncrementalWrite, VssError> {
        if !(frame_rate > 0.0 && frame_rate.is_finite()) {
            return Err(VssError::Frame(FrameError::InvalidFrameRate));
        }
        Ok(IncrementalWrite {
            request: request.clone(),
            frame_rate,
            physical_id: None,
            time: request.start_time,
            gops_written: 0,
            frames_written: 0,
            bytes_written: 0,
            deferred_levels: Vec::new(),
            started: Instant::now(),
        })
    }

    /// The encoder parameters an incremental write of `request` uses for
    /// every GOP — captured once so an off-thread encoder (the overlapped
    /// [`WriteSink`] pipeline) produces bit-identical GOPs to the inline
    /// [`push_incremental_gop`](Self::push_incremental_gop) path.
    pub fn sink_encoder(&self, request: &WriteRequest) -> SinkEncoder {
        SinkEncoder {
            codec: request.codec,
            encoder: EncoderConfig {
                quality: request.encoder_quality.unwrap_or(self.config.default_encoder_quality),
                gop_size: self.write_gop_size(request.codec),
            },
            depth: self.config.readahead,
        }
    }

    /// Encodes and persists one GOP of an incremental write — the inline
    /// ([`sink_encoder`](Self::sink_encoder)-equivalent) encode followed by
    /// [`push_incremental_encoded`](Self::push_incremental_encoded).
    pub fn push_incremental_gop(
        &mut self,
        write: &mut IncrementalWrite,
        frames: &[Frame],
    ) -> Result<(), VssError> {
        if frames.is_empty() {
            return Ok(());
        }
        // One derivation of the encode parameters for both the inline and
        // the overlapped path — the byte-identity guarantee depends on the
        // two never disagreeing.
        let encoder = self.sink_encoder(&write.request);
        let gop = codec_instance(encoder.codec).encode_slice(
            frames,
            write.frame_rate,
            &encoder.encoder,
        )?;
        self.push_incremental_encoded(write, frames, &gop)
    }

    /// Persists one pre-encoded GOP of an incremental write. The GOP must
    /// have been encoded from exactly `frames` with the write's
    /// [`sink_encoder`](Self::sink_encoder) parameters (the overlapped
    /// [`WriteSink`] pipeline guarantees this), so the stored bytes are
    /// identical to the inline-encoding path. The first push creates the
    /// logical video if needed and registers the physical video (the
    /// original, if none exists yet) — mirroring what a batch write does
    /// before its first GOP.
    pub fn push_incremental_encoded(
        &mut self,
        write: &mut IncrementalWrite,
        frames: &[Frame],
        gop: &EncodedGop,
    ) -> Result<(), VssError> {
        if frames.is_empty() {
            return Ok(());
        }
        let name = write.request.name.clone();
        let codec = write.request.codec;
        let physical_id = match write.physical_id {
            Some(id) => id,
            None => {
                if !self.catalog.contains_video(&name) {
                    self.create_video(&name, None)?;
                }
                let is_original = self.catalog.video(&name)?.original().is_none();
                let resolution = frames[0].resolution();
                let id = self.catalog.add_physical(
                    &name,
                    resolution.width,
                    resolution.height,
                    write.frame_rate,
                    &codec.name(),
                    is_original,
                    0.0,
                )?;
                write.physical_id = Some(id);
                id
            }
        };
        let (bytes, level) = self.persist_gop(
            &name,
            physical_id,
            codec,
            gop,
            write.time,
            frames.len(),
            write.frame_rate,
        )?;
        write.bytes_written += bytes;
        write.deferred_levels.push(level);
        write.gops_written += 1;
        write.frames_written += frames.len();
        write.time += frames.len() as f64 / write.frame_rate;
        Ok(())
    }

    /// Completes an incremental write: establishes the storage budget (once
    /// the original's size is known) and persists the catalog. Errors with
    /// [`VssError::EmptyWrite`] if no frames were pushed.
    pub fn finish_incremental_write(
        &mut self,
        write: &mut IncrementalWrite,
    ) -> Result<WriteReport, VssError> {
        let Some(physical_id) = write.physical_id else {
            return Err(VssError::EmptyWrite);
        };
        self.establish_budget(&write.request.name)?;
        self.catalog.persist()?;
        Ok(WriteReport {
            physical_id,
            gops_written: write.gops_written,
            frames_written: write.frames_written,
            bytes_written: write.bytes_written,
            deferred_levels: std::mem::take(&mut write.deferred_levels),
            elapsed: write.started.elapsed(),
        })
    }
}

/// Process-wide overlapped-sink telemetry (`sink.pipeline.*`), cached so the
/// ingest hot path never takes the registry lock.
mod metrics {
    use std::sync::OnceLock;

    /// Time the persisting thread blocked waiting for the encode worker to
    /// deliver the oldest in-flight GOP (zero = perfect overlap).
    pub(super) fn encode_wait() -> &'static vss_telemetry::Histogram {
        static H: OnceLock<&'static vss_telemetry::Histogram> = OnceLock::new();
        H.get_or_init(|| vss_telemetry::histogram("sink.pipeline.encode_wait_ns"))
    }

    /// Time spent persisting one already-encoded GOP through the backend.
    pub(super) fn persist() -> &'static vss_telemetry::Histogram {
        static H: OnceLock<&'static vss_telemetry::Histogram> = OnceLock::new();
        H.get_or_init(|| vss_telemetry::histogram("sink.pipeline.persist_ns"))
    }
}

/// Adapts a storage backend's locking discipline to [`WriteSink`]. Each
/// `flush_gop` call receives exactly one GOP-sized (or final partial) run of
/// frames, in order; `finish` is called once, after the last flush.
///
/// Implementations exist for the engine itself, the [`Vss`](crate::Vss)
/// handle, `vss-server` sessions and (as a buffer-then-write fallback) every
/// other [`VideoStorage`](crate::VideoStorage) implementor.
pub trait GopWriteBackend {
    /// Encodes and persists one GOP's worth of frames.
    fn flush_gop(&mut self, frames: &[Frame]) -> Result<(), VssError>;

    /// Persists one GOP that was already encoded off-thread (the overlapped
    /// [`WriteSink`] pipeline). The GOP was encoded from exactly `frames`
    /// with the backend's [`SinkEncoder`] parameters, so backends that can
    /// persist pre-encoded GOPs skip the redundant encode; the default
    /// ignores `gop` and re-encodes via [`flush_gop`](Self::flush_gop) —
    /// byte-identical either way.
    fn flush_encoded(&mut self, frames: &[Frame], gop: EncodedGop) -> Result<(), VssError> {
        let _ = gop;
        self.flush_gop(frames)
    }

    /// Completes the write and produces its report.
    fn finish(&mut self) -> Result<WriteReport, VssError>;
}

/// The parameters an overlapped [`WriteSink`] encode worker needs to produce
/// GOPs bit-identical to the inline
/// [`Engine::push_incremental_gop`] path, plus the pipeline depth
/// (`depth = 0` disables overlapping). Obtain from [`Engine::sink_encoder`].
#[derive(Debug, Clone, Copy)]
pub struct SinkEncoder {
    /// Codec every GOP is encoded with.
    pub codec: Codec,
    /// Encoder parameters (quality and GOP size) captured at sink creation.
    pub encoder: EncoderConfig,
    /// Maximum encoded-but-unpersisted GOPs in flight (0 = inline encoding).
    pub depth: usize,
}

/// One GOP through the encode worker: the source frames (needed by the
/// persist call) and the encode outcome, delivered in submission order.
type EncodedUnit = (Vec<Frame>, Result<EncodedGop, CodecError>);

/// The encode worker of an overlapped [`WriteSink`]: full GOPs are handed to
/// a dedicated thread that encodes them in submission order while the
/// caller's thread persists previously encoded GOPs through the backend —
/// encode of GOP *n + 1* overlaps the file write of GOP *n*. At most `depth`
/// GOPs are in flight between pushes (`depth + 1` momentarily, while a flush
/// retires); dropping the pipeline (sink abort) closes the work
/// channel and joins the worker, discarding any not-yet-persisted GOPs so no
/// partial GOP ever reaches disk.
struct EncodePipeline {
    /// Work channel; `None` once closed (drop/teardown).
    submit: Option<Sender<Vec<Frame>>>,
    /// Completed (frames, encode result) pairs, in submission order.
    complete: Option<Receiver<EncodedUnit>>,
    worker: Option<JoinHandle<()>>,
    /// GOPs submitted but not yet retired (≤ depth).
    in_flight: usize,
    depth: usize,
}

impl EncodePipeline {
    fn spawn(encoder: SinkEncoder, frame_rate: f64) -> Self {
        let depth = encoder.depth.max(1);
        // Both channels hold `depth + 1` slots: a flush submits the new GOP
        // *before* retiring down to `depth`, so occupancy momentarily
        // reaches `depth + 1` — the headroom guarantees neither side ever
        // blocks on a full channel, leaving the deliberate in-order wait in
        // `retire_one` as the only blocking point.
        let (submit, work) = bounded::<Vec<Frame>>(depth + 1);
        let (done, complete) = bounded::<EncodedUnit>(depth + 1);
        let worker = std::thread::spawn(move || {
            let implementation = codec_instance(encoder.codec);
            while let Ok(frames) = work.recv() {
                let encoded = implementation.encode_slice(&frames, frame_rate, &encoder.encoder);
                if done.send((frames, encoded)).is_err() {
                    break; // sink dropped; stop encoding
                }
            }
        });
        Self {
            submit: Some(submit),
            complete: Some(complete),
            worker: Some(worker),
            in_flight: 0,
            depth,
        }
    }
}

impl Drop for EncodePipeline {
    fn drop(&mut self) {
        // Close both channels first so a worker blocked on either side wakes
        // with a disconnect, then join it — the pipeline never leaks threads,
        // and unpersisted GOPs are simply discarded (a persisted prefix is
        // all an aborted sink leaves behind).
        self.submit = None;
        self.complete = None;
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// An incremental writer: push frames, each GOP is encoded and persisted as
/// it fills, `finish()` returns the [`WriteReport`]. See the
/// [module docs](self).
pub struct WriteSink<'a> {
    backend: Box<dyn GopWriteBackend + 'a>,
    pending: Vec<Frame>,
    frame_rate: f64,
    gop_size: usize,
    /// Shape of the first frame ever pushed; every later frame must match it
    /// (the per-sink equivalent of `FrameSequence`'s shape check — it must
    /// not reset when `pending` drains at a GOP boundary).
    shape: Option<(u32, u32, vss_frame::PixelFormat)>,
    /// Overlapped-encode parameters (worker spawned lazily on the first full
    /// GOP); `None` or `depth == 0` keeps the synchronous flush path.
    encoder: Option<SinkEncoder>,
    pipeline: Option<EncodePipeline>,
}

impl std::fmt::Debug for WriteSink<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteSink")
            .field("buffered_frames", &self.pending.len())
            .field("gop_size", &self.gop_size)
            .finish_non_exhaustive()
    }
}

impl<'a> WriteSink<'a> {
    /// Builds a sink over a backend. `gop_size` is the flush boundary; pass
    /// [`Engine::write_gop_size`] for engine-backed sinks so the chunking
    /// matches batch writes byte-for-byte.
    pub fn from_backend(
        backend: Box<dyn GopWriteBackend + 'a>,
        frame_rate: f64,
        gop_size: usize,
    ) -> Self {
        Self {
            backend,
            pending: Vec::new(),
            frame_rate,
            gop_size: gop_size.max(1),
            shape: None,
            encoder: None,
            pipeline: None,
        }
    }

    /// [`from_backend`](Self::from_backend) with overlapped encoding: when
    /// `encoder.depth > 0`, full GOPs are encoded on a worker thread (with
    /// exactly the given parameters) while previously encoded GOPs persist
    /// through the backend on the caller's thread, keeping at most
    /// `encoder.depth` encoded GOPs in flight. `depth == 0` is exactly
    /// `from_backend`. The store produced is byte-identical either way; see
    /// [`VssConfig::readahead`](crate::VssConfig::readahead).
    pub fn overlapped(
        backend: Box<dyn GopWriteBackend + 'a>,
        frame_rate: f64,
        gop_size: usize,
        encoder: SinkEncoder,
    ) -> Self {
        let mut sink = Self::from_backend(backend, frame_rate, gop_size);
        if encoder.depth > 0 {
            sink.encoder = Some(encoder);
        }
        sink
    }

    /// GOPs handed to the encode worker and not yet persisted (always 0 for
    /// synchronous sinks).
    pub fn in_flight_gops(&self) -> usize {
        self.pipeline.as_ref().map_or(0, |p| p.in_flight)
    }

    /// Routes one full (or final partial) GOP to the backend: directly when
    /// synchronous, through the encode worker when overlapped.
    fn dispatch_gop(&mut self, frames: Vec<Frame>) -> Result<(), VssError> {
        let Some(encoder) = self.encoder else {
            return self.backend.flush_gop(&frames);
        };
        if self.pipeline.is_none() {
            self.pipeline = Some(EncodePipeline::spawn(encoder, self.frame_rate));
        }
        // Submit the new GOP *first*, then persist completed GOPs (in
        // submission order) back down to the depth limit: the worker encodes
        // the GOP just submitted while this thread writes its predecessors —
        // overlap holds even at depth 1.
        let pipeline = self.pipeline.as_mut().expect("pipeline spawned above");
        let submit = pipeline.submit.as_ref().expect("open work channel");
        submit.send(frames).map_err(|_| {
            VssError::Unsatisfiable("sink encode worker exited unexpectedly".into())
        })?;
        pipeline.in_flight += 1;
        while self.pipeline.as_ref().is_some_and(|p| p.in_flight > p.depth) {
            self.retire_one()?;
        }
        Ok(())
    }

    /// Receives the oldest in-flight GOP from the encode worker and persists
    /// it through the backend. The two timed phases quantify the overlap:
    /// `encode_wait` is how long this thread blocked on the worker (zero when
    /// encoding hid entirely behind the previous persist), `persist` is the
    /// backend write itself.
    fn retire_one(&mut self) -> Result<(), VssError> {
        let pipeline = self.pipeline.as_mut().expect("retire with an active pipeline");
        let complete = pipeline.complete.as_ref().expect("open completion channel");
        let wait_started = Instant::now();
        let (frames, encoded) = complete.recv().map_err(|_| {
            VssError::Unsatisfiable("sink encode worker exited unexpectedly".into())
        })?;
        metrics::encode_wait().record_duration(wait_started.elapsed());
        pipeline.in_flight -= 1;
        let persist_started = Instant::now();
        let outcome = self.backend.flush_encoded(&frames, encoded?);
        metrics::persist().record_duration(persist_started.elapsed());
        outcome
    }

    /// Persists every in-flight GOP and retires the encode worker.
    fn drain_pipeline(&mut self) -> Result<(), VssError> {
        while self.pipeline.as_ref().is_some_and(|p| p.in_flight > 0) {
            self.retire_one()?;
        }
        self.pipeline = None; // worker is idle; drop closes channels and joins
        Ok(())
    }

    /// The sink's frame rate.
    pub fn frame_rate(&self) -> f64 {
        self.frame_rate
    }

    /// The flush boundary in frames: one backend flush per this many pushed
    /// frames (plus one final partial flush). A network server announces it
    /// to remote clients so their sinks chunk on the same boundary.
    pub fn gop_size(&self) -> usize {
        self.gop_size
    }

    /// Frames currently buffered (always `< gop_size` after a push returns).
    pub fn buffered_frames(&self) -> usize {
        self.pending.len()
    }

    /// Pushes one frame, flushing a GOP to the backend when full. Frames must
    /// all share the first frame's shape (as in a [`FrameSequence`]) — across
    /// the whole ingest, exactly like a batch write of the same frames.
    pub fn push_frame(&mut self, frame: Frame) -> Result<(), VssError> {
        let shape = (frame.width(), frame.height(), frame.format());
        match self.shape {
            None => self.shape = Some(shape),
            Some(expected) if expected != shape => {
                return Err(VssError::Frame(FrameError::ShapeMismatch));
            }
            Some(_) => {}
        }
        self.pending.push(frame);
        if self.pending.len() >= self.gop_size {
            let chunk: Vec<Frame> = self.pending.drain(..).collect();
            self.dispatch_gop(chunk)?;
        }
        Ok(())
    }

    /// Pushes every frame of a sequence (its frame rate must match the
    /// sink's).
    pub fn push_sequence(&mut self, frames: &FrameSequence) -> Result<(), VssError> {
        if (frames.frame_rate() - self.frame_rate).abs() > 1e-9 {
            return Err(VssError::Frame(FrameError::InvalidFrameRate));
        }
        for frame in frames.frames() {
            self.push_frame(frame.clone())?;
        }
        Ok(())
    }

    /// Flushes the final partial GOP and completes the write. (Overlapped
    /// sinks first persist every in-flight GOP, in submission order.)
    pub fn finish(mut self) -> Result<WriteReport, VssError> {
        self.drain_pipeline()?;
        if !self.pending.is_empty() {
            let chunk: Vec<Frame> = self.pending.drain(..).collect();
            self.backend.flush_gop(&chunk)?;
        }
        self.backend.finish()
    }
}

/// Engine-backed sink: flushes go straight at the exclusively borrowed
/// engine.
pub(crate) struct EngineSinkBackend<'a> {
    pub(crate) engine: &'a mut Engine,
    pub(crate) write: IncrementalWrite,
}

impl GopWriteBackend for EngineSinkBackend<'_> {
    fn flush_gop(&mut self, frames: &[Frame]) -> Result<(), VssError> {
        self.engine.push_incremental_gop(&mut self.write, frames)
    }

    fn flush_encoded(&mut self, frames: &[Frame], gop: EncodedGop) -> Result<(), VssError> {
        self.engine.push_incremental_encoded(&mut self.write, frames, &gop)
    }

    fn finish(&mut self) -> Result<WriteReport, VssError> {
        self.engine.finish_incremental_write(&mut self.write)
    }
}

/// Buffer-then-batch-write fallback used as the default
/// [`VideoStorage::write_sink`](crate::VideoStorage::write_sink): stores that
/// cannot persist incrementally (the monolithic-file baselines) accumulate
/// the frames and issue one batch write at finish.
pub(crate) struct BufferedSinkBackend<'a, S: crate::VideoStorage + ?Sized> {
    pub(crate) store: &'a mut S,
    pub(crate) request: WriteRequest,
    pub(crate) frame_rate: f64,
    pub(crate) frames: Vec<Frame>,
}

impl<S: crate::VideoStorage + ?Sized> GopWriteBackend for BufferedSinkBackend<'_, S> {
    fn flush_gop(&mut self, frames: &[Frame]) -> Result<(), VssError> {
        self.frames.extend_from_slice(frames);
        Ok(())
    }

    fn finish(&mut self) -> Result<WriteReport, VssError> {
        let frames = FrameSequence::new(std::mem::take(&mut self.frames), self.frame_rate)?;
        self.store.write(&self.request, &frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::test_support::temp_engine;
    use vss_frame::{pattern, PixelFormat};

    fn frames(count: usize) -> Vec<Frame> {
        (0..count).map(|i| pattern::gradient(64, 48, PixelFormat::Yuv420, i as u64)).collect()
    }

    #[test]
    fn sink_write_is_byte_identical_to_batch_write() {
        let source = frames(75); // 2 full GOPs + 1 partial at gop_size 30
        let collect_pages = |root: &std::path::Path| {
            let mut pages: Vec<(String, Vec<u8>)> = Vec::new();
            let mut pending = vec![root.to_path_buf()];
            while let Some(dir) = pending.pop() {
                for entry in std::fs::read_dir(&dir).unwrap() {
                    let path = entry.unwrap().path();
                    if path.is_dir() {
                        pending.push(path);
                    } else {
                        let relative =
                            path.strip_prefix(root).unwrap().to_string_lossy().into_owned();
                        pages.push((relative, std::fs::read(&path).unwrap()));
                    }
                }
            }
            pages.sort_by(|a, b| a.0.cmp(&b.0));
            pages
        };

        let (mut batch_engine, batch_root) = temp_engine("sink-batch");
        let sequence = FrameSequence::new(source.clone(), 30.0).unwrap();
        let batch_report =
            batch_engine.write(&WriteRequest::new("v", Codec::H264), &sequence).unwrap();

        let (mut sink_engine, sink_root) = temp_engine("sink-inc");
        let request = WriteRequest::new("v", Codec::H264);
        let gop_size = sink_engine.write_gop_size(request.codec);
        let backend = EngineSinkBackend {
            write: sink_engine.begin_incremental_write(&request, 30.0).unwrap(),
            engine: &mut sink_engine,
        };
        let mut sink = WriteSink::from_backend(Box::new(backend), 30.0, gop_size);
        for frame in source {
            sink.push_frame(frame).unwrap();
            assert!(sink.buffered_frames() < gop_size, "sink never holds a full GOP");
        }
        let sink_report = sink.finish().unwrap();

        assert_eq!(sink_report.gops_written, batch_report.gops_written);
        assert_eq!(sink_report.frames_written, batch_report.frames_written);
        assert_eq!(sink_report.bytes_written, batch_report.bytes_written);
        assert_eq!(sink_report.deferred_levels, batch_report.deferred_levels);
        assert_eq!(
            collect_pages(&batch_root),
            collect_pages(&sink_root),
            "incremental and batch writes must produce identical stores"
        );
        let _ = std::fs::remove_dir_all(batch_root);
        let _ = std::fs::remove_dir_all(sink_root);
    }

    #[test]
    fn overlapped_sink_store_is_byte_identical_to_the_synchronous_sink() {
        let source = frames(100); // 3 full GOPs + 1 partial at gop_size 30
        let collect_pages = |root: &std::path::Path| {
            let mut pages: Vec<(String, Vec<u8>)> = Vec::new();
            let mut pending = vec![root.to_path_buf()];
            while let Some(dir) = pending.pop() {
                for entry in std::fs::read_dir(&dir).unwrap() {
                    let path = entry.unwrap().path();
                    if path.is_dir() {
                        pending.push(path);
                    } else {
                        let relative =
                            path.strip_prefix(root).unwrap().to_string_lossy().into_owned();
                        pages.push((relative, std::fs::read(&path).unwrap()));
                    }
                }
            }
            pages.sort_by(|a, b| a.0.cmp(&b.0));
            pages
        };
        let run = |tag: &str, depth: usize| {
            let (mut engine, root) = temp_engine(tag);
            engine.config.readahead = depth;
            let request = WriteRequest::new("v", Codec::H264);
            let gop_size = engine.write_gop_size(request.codec);
            let encoder = engine.sink_encoder(&request);
            let backend = EngineSinkBackend {
                write: engine.begin_incremental_write(&request, 30.0).unwrap(),
                engine: &mut engine,
            };
            let mut sink = WriteSink::overlapped(Box::new(backend), 30.0, gop_size, encoder);
            let mut saw_in_flight = false;
            for frame in source.clone() {
                sink.push_frame(frame).unwrap();
                saw_in_flight |= sink.in_flight_gops() > 0;
            }
            assert_eq!(
                saw_in_flight,
                depth > 0,
                "overlap pipeline engaged iff readahead > 0 (depth {depth})"
            );
            let report = sink.finish().unwrap();
            (report, collect_pages(&root), root)
        };
        let (baseline_report, baseline_pages, baseline_root) = run("sink-overlap-0", 0);
        for depth in [1usize, 2, 4] {
            let (report, pages, root) = run(&format!("sink-overlap-{depth}"), depth);
            assert_eq!(report.gops_written, baseline_report.gops_written);
            assert_eq!(report.frames_written, baseline_report.frames_written);
            assert_eq!(report.bytes_written, baseline_report.bytes_written);
            assert_eq!(report.deferred_levels, baseline_report.deferred_levels);
            assert_eq!(
                pages, baseline_pages,
                "overlapped sink (depth {depth}) must write an identical store"
            );
            let _ = std::fs::remove_dir_all(root);
        }
        let _ = std::fs::remove_dir_all(baseline_root);
    }

    #[test]
    fn aborted_overlapped_sink_leaves_only_fully_persisted_gops() {
        let (mut engine, root) = temp_engine("sink-abort");
        engine.config.readahead = 1;
        let request = WriteRequest::new("v", Codec::H264);
        let gop_size = engine.write_gop_size(request.codec);
        let encoder = engine.sink_encoder(&request);
        let backend = EngineSinkBackend {
            write: engine.begin_incremental_write(&request, 30.0).unwrap(),
            engine: &mut engine,
        };
        let mut sink = WriteSink::overlapped(Box::new(backend), 30.0, gop_size, encoder);
        // 3 full GOPs submitted; with depth 1 at least two retire (persist),
        // the last may still be in flight — plus a partial that never flushes.
        for frame in frames(3 * gop_size + 10) {
            sink.push_frame(frame).unwrap();
        }
        drop(sink); // abort: joins the worker, discards in-flight work
        // Whatever prefix was persisted is complete and fully readable.
        let (start, end) = engine.video_time_range("v").unwrap();
        let persisted = engine
            .read(&crate::params::ReadRequest::new("v", start, end, Codec::H264).uncacheable())
            .unwrap();
        assert!(persisted.frames.len() >= 2 * gop_size, "retired GOPs survive the abort");
        assert_eq!(persisted.frames.len() % gop_size, 0, "no partial GOP reaches disk");
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn empty_sink_errors_like_an_empty_write() {
        let (mut engine, root) = temp_engine("sink-empty");
        let request = WriteRequest::new("v", Codec::H264);
        let backend = EngineSinkBackend {
            write: engine.begin_incremental_write(&request, 30.0).unwrap(),
            engine: &mut engine,
        };
        let sink = WriteSink::from_backend(Box::new(backend), 30.0, 30);
        assert!(matches!(sink.finish(), Err(VssError::EmptyWrite)));
        // Nothing was created.
        assert!(engine.video_names().is_empty());
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn sink_rejects_shape_and_rate_mismatches() {
        let (mut engine, root) = temp_engine("sink-shape");
        let request = WriteRequest::new("v", Codec::H264);
        let backend = EngineSinkBackend {
            write: engine.begin_incremental_write(&request, 30.0).unwrap(),
            engine: &mut engine,
        };
        let mut sink = WriteSink::from_backend(Box::new(backend), 30.0, 30);
        sink.push_frame(pattern::gradient(64, 48, PixelFormat::Yuv420, 0)).unwrap();
        assert!(matches!(
            sink.push_frame(pattern::gradient(32, 24, PixelFormat::Yuv420, 0)),
            Err(VssError::Frame(FrameError::ShapeMismatch))
        ));
        // The shape contract spans GOP boundaries: after a full GOP flushes
        // (pending drains), a differently shaped frame must still be
        // rejected, exactly as a batch write of the same frames would be.
        for i in 1..30 {
            sink.push_frame(pattern::gradient(64, 48, PixelFormat::Yuv420, i)).unwrap();
        }
        assert_eq!(sink.buffered_frames(), 0, "first GOP flushed");
        assert!(matches!(
            sink.push_frame(pattern::gradient(32, 24, PixelFormat::Yuv420, 0)),
            Err(VssError::Frame(FrameError::ShapeMismatch))
        ));
        let other_rate =
            FrameSequence::new(vec![pattern::gradient(64, 48, PixelFormat::Yuv420, 1)], 25.0)
                .unwrap();
        assert!(matches!(
            sink.push_sequence(&other_rate),
            Err(VssError::Frame(FrameError::InvalidFrameRate))
        ));
        // Non-positive / non-finite frame rates are rejected up front, like
        // FrameSequence::new on the batch path.
        drop(sink);
        for bad_rate in [0.0, -30.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                engine.begin_incremental_write(&request, bad_rate),
                Err(VssError::Frame(FrameError::InvalidFrameRate))
            ));
        }
        let _ = std::fs::remove_dir_all(root);
    }
}
