//! GOP-page caching and the LRU_VSS eviction policy (paper Section 4).
//!
//! VSS treats the individual GOPs of every physical video as cache pages.
//! When a logical video exceeds its storage budget, pages are evicted in
//! order of a sequence number
//!
//! `LRU_VSS(f) = LRU(f) + γ·p(f) − ζ·r(f) + b(f)`
//!
//! where `p` pushes eviction toward the ends of a physical video (to avoid
//! fragmenting it), `r` prefers evicting pages that have higher-quality
//! redundant variants, and `b` protects the last remaining
//! sufficient-quality copy of any time range (so the original can always be
//! reproduced). Plain LRU (`γ = ζ = 0`) is available as the baseline the
//! paper compares against; the baseline-quality guard is kept even then so
//! the store never destroys its only copy of a region.

use crate::config::EvictionPolicy;
use crate::quality::QualityModel;
use crate::VssError;
use vss_catalog::{LogicalVideoRecord, PhysicalVideoId, PhysicalVideoRecord};
use vss_frame::PsnrDb;

/// A candidate page for eviction and its computed sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct EvictionCandidate {
    /// Physical video owning the page.
    pub physical_id: PhysicalVideoId,
    /// GOP index within the physical video.
    pub gop_index: u64,
    /// The LRU_VSS (or LRU) sequence number; lower numbers are evicted first.
    pub sequence_number: f64,
    /// Size of the page on disk.
    pub byte_len: u64,
}

/// Computes the position offset `p(f_i) = min(i, n − i)` for the `i`-th of
/// `n` GOPs in a physical video.
pub fn position_offset(index_in_video: usize, total: usize) -> f64 {
    index_in_video.min(total.saturating_sub(index_in_video)) as f64
}

/// Counts the higher-quality redundant variants of a GOP: physical videos,
/// other than the GOP's own, whose estimated quality is strictly higher and
/// whose stored GOPs cover the GOP's time interval.
pub fn redundancy_rank(
    video: &LogicalVideoRecord,
    owner: &PhysicalVideoRecord,
    gop_start: f64,
    gop_end: f64,
    quality_model: &QualityModel,
) -> usize {
    let own_quality = quality_model.estimate_physical_quality(owner).db();
    video
        .physical
        .iter()
        .filter(|other| other.id != owner.id)
        .filter(|other| quality_model.estimate_physical_quality(other).db() > own_quality)
        .filter(|other| covers_interval(other, gop_start, gop_end))
        .count()
}

/// True if another sufficient-quality physical video covers the interval, so
/// the page is not the last good copy of that region.
pub fn has_alternate_baseline_cover(
    video: &LogicalVideoRecord,
    owner: &PhysicalVideoRecord,
    gop_start: f64,
    gop_end: f64,
    quality_model: &QualityModel,
    threshold: PsnrDb,
) -> bool {
    video
        .physical
        .iter()
        .filter(|other| other.id != owner.id)
        .filter(|other| quality_model.estimate_physical_quality(other).db() >= threshold.db())
        .any(|other| covers_interval(other, gop_start, gop_end))
}

fn covers_interval(physical: &PhysicalVideoRecord, start: f64, end: f64) -> bool {
    // The interval is covered if every moment of [start, end) falls inside
    // some stored GOP (contiguity across the interval).
    let mut cursor = start;
    for gop in &physical.gops {
        if gop.start_time <= cursor + 1e-6 && gop.end_time > cursor + 1e-6 {
            cursor = gop.end_time;
            if cursor >= end - 1e-6 {
                return true;
            }
        }
    }
    cursor >= end - 1e-6
}

/// Computes eviction candidates for every GOP page of a logical video under
/// the given policy, lowest sequence number (most evictable) first. Pages
/// protected by the baseline-quality guard are excluded.
pub fn eviction_order(
    video: &LogicalVideoRecord,
    policy: &EvictionPolicy,
    quality_model: &QualityModel,
    baseline_threshold: PsnrDb,
) -> Vec<EvictionCandidate> {
    let mut candidates = Vec::new();
    for physical in &video.physical {
        let own_quality = quality_model.estimate_physical_quality(physical);
        let total = physical.gops.len();
        for (position, gop) in physical.gops.iter().enumerate() {
            // Baseline guard: if this physical video meets the baseline
            // quality and no other sufficient-quality copy covers this
            // region, the page must never be evicted.
            let protected = own_quality.db() >= baseline_threshold.db()
                && !has_alternate_baseline_cover(
                    video,
                    physical,
                    gop.start_time,
                    gop.end_time,
                    quality_model,
                    baseline_threshold,
                );
            if protected {
                continue;
            }
            let lru = gop.last_access.get() as f64;
            let sequence_number = match policy {
                EvictionPolicy::Lru => lru,
                EvictionPolicy::LruVss { gamma, zeta } => {
                    let p = position_offset(position, total);
                    let r = redundancy_rank(
                        video,
                        physical,
                        gop.start_time,
                        gop.end_time,
                        quality_model,
                    ) as f64;
                    lru + gamma * p - zeta * r
                }
            };
            candidates.push(EvictionCandidate {
                physical_id: physical.id,
                gop_index: gop.index,
                sequence_number,
                byte_len: gop.byte_len,
            });
        }
    }
    candidates.sort_by(|a, b| {
        a.sequence_number
            .partial_cmp(&b.sequence_number)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.physical_id.cmp(&b.physical_id))
            .then(a.gop_index.cmp(&b.gop_index))
    });
    candidates
}

impl crate::engine::Engine {
    /// Evicts GOP pages until the logical video fits inside its storage
    /// budget (or nothing evictable remains). Returns the number of pages
    /// evicted. Physical videos whose last page is evicted are removed.
    pub fn enforce_budget(&mut self, name: &str) -> Result<usize, VssError> {
        let mut evicted = 0usize;
        loop {
            let Some(budget) = self.budget_bytes(name)? else { return Ok(evicted) };
            let used = self.bytes_used(name)?;
            if used <= budget {
                return Ok(evicted);
            }
            let video = self.catalog.video(name)?.clone();
            let order = eviction_order(
                &video,
                &self.config.eviction_policy,
                &self.quality_model,
                self.config.default_quality_threshold,
            );
            let Some(victim) = order.first() else { return Ok(evicted) };
            self.catalog.remove_gop(name, victim.physical_id, victim.gop_index)?;
            evicted += 1;
            // Drop physical videos that no longer hold any data.
            let empty: Vec<PhysicalVideoId> = self
                .catalog
                .video(name)?
                .physical
                .iter()
                .filter(|p| p.gops.is_empty())
                .map(|p| p.id)
                .collect();
            for id in empty {
                self.catalog.remove_physical(name, id)?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vss_catalog::GopRecord;

    fn gop(index: u64, start: f64, end: f64, last_access: u64) -> GopRecord {
        GopRecord {
            index,
            start_time: start,
            end_time: end,
            frame_count: 30,
            byte_len: 1000,
            lossless_level: None,
            last_access: vss_catalog::AtomicClock::new(last_access),
            duplicate_of: None,
        }
    }

    fn physical(id: u64, codec: &str, is_original: bool, mse_bound: f64, gops: Vec<GopRecord>) -> PhysicalVideoRecord {
        PhysicalVideoRecord {
            id,
            width: 320,
            height: 180,
            frame_rate: 30.0,
            codec: codec.into(),
            is_original,
            mse_bound,
            gops,
        }
    }

    fn two_copy_video() -> LogicalVideoRecord {
        let mut video = LogicalVideoRecord::new("v");
        // Original: 4 GOPs over [0, 4).
        video.physical.push(physical(
            1,
            "h264",
            true,
            0.0,
            (0..4).map(|i| gop(i, i as f64, i as f64 + 1.0, 10 + i)).collect(),
        ));
        // Cached lower-quality copy over [0, 2), accessed more recently.
        video.physical.push(physical(
            2,
            "rgb",
            false,
            200.0,
            (0..2).map(|i| gop(i, i as f64, i as f64 + 1.0, 50 + i)).collect(),
        ));
        video
    }

    #[test]
    fn position_offset_prefers_edges() {
        assert_eq!(position_offset(0, 10), 0.0);
        assert_eq!(position_offset(9, 10), 1.0);
        assert_eq!(position_offset(5, 10), 5.0);
        assert_eq!(position_offset(0, 0), 0.0);
    }

    #[test]
    fn baseline_guard_protects_the_only_good_copy() {
        let video = two_copy_video();
        let model = QualityModel::new();
        let order = eviction_order(&video, &EvictionPolicy::default(), &model, PsnrDb(40.0));
        // GOPs 2 and 3 of the original have no alternate cover of any quality,
        // and GOPs 0 and 1 of the original have only a *low-quality* copy, so
        // every original page is protected; only the cached copy is evictable.
        assert!(order.iter().all(|c| c.physical_id == 2), "{order:?}");
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn high_quality_duplicate_unlocks_original_pages() {
        let mut video = two_copy_video();
        // Make the cached copy pristine quality covering [0, 2).
        video.physical[1].mse_bound = 0.0;
        let model = QualityModel::new();
        let order = eviction_order(&video, &EvictionPolicy::default(), &model, PsnrDb(40.0));
        // Now original pages 0 and 1 are also evictable (their region has an
        // alternate lossless copy), but pages 2 and 3 remain protected.
        let originals: Vec<u64> =
            order.iter().filter(|c| c.physical_id == 1).map(|c| c.gop_index).collect();
        assert_eq!(originals, vec![0, 1]);
    }

    #[test]
    fn redundancy_prefers_evicting_dominated_copies() {
        let video = two_copy_video();
        let model = QualityModel::new();
        let owner = &video.physical[1];
        assert_eq!(redundancy_rank(&video, owner, 0.0, 1.0, &model), 1);
        let original = &video.physical[0];
        assert_eq!(redundancy_rank(&video, original, 0.0, 1.0, &model), 0);
    }

    #[test]
    fn lru_vss_orders_by_adjusted_sequence_number() {
        let mut video = LogicalVideoRecord::new("v");
        // One original (protected) plus one long cached copy; all cached pages
        // share the same recency so position decides the order.
        video.physical.push(physical(1, "h264", true, 0.0, (0..6).map(|i| gop(i, i as f64, i as f64 + 1.0, 100)).collect()));
        video.physical.push(physical(2, "rgb", false, 150.0, (0..6).map(|i| gop(i, i as f64, i as f64 + 1.0, 7)).collect()));
        let model = QualityModel::new();
        let order = eviction_order(&video, &EvictionPolicy::default(), &model, PsnrDb(40.0));
        let cached: Vec<u64> = order.iter().filter(|c| c.physical_id == 2).map(|c| c.gop_index).collect();
        // Edges (0 and 5) first, the innermost page (index 3, position offset 3) last.
        let first = cached.first().copied().unwrap();
        assert!(first == 0 || first == 5, "{cached:?}");
        assert_eq!(cached.last().copied().unwrap(), 3, "{cached:?}");
        // Plain LRU ignores position: order is purely by recency, which is a
        // tie here, broken by ids — the middle is *not* specially protected.
        let lru = eviction_order(&video, &EvictionPolicy::Lru, &model, PsnrDb(40.0));
        let lru_cached: Vec<u64> = lru.iter().filter(|c| c.physical_id == 2).map(|c| c.gop_index).collect();
        assert_eq!(lru_cached, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn interval_coverage_requires_contiguity() {
        let p = physical(1, "h264", false, 0.0, vec![gop(0, 0.0, 1.0, 0), gop(2, 2.0, 3.0, 0)]);
        assert!(covers_interval(&p, 0.0, 1.0));
        assert!(covers_interval(&p, 2.0, 3.0));
        assert!(!covers_interval(&p, 0.5, 2.5));
        assert!(!covers_interval(&p, 1.0, 2.0));
    }
}
