//! The read path: answering `read(name, S, T, P)` from materialized views.
//!
//! A read is executed in four stages (paper Section 3):
//!
//! 1. **Candidate collection** — every contiguous run of cached GOPs whose
//!    estimated quality clears the read's threshold becomes a candidate
//!    fragment, alongside the original video.
//! 2. **Planning** — the fragment selector picks the minimum-cost combination
//!    of fragments covering the requested range (`vss-solver`).
//! 3. **Execution** — the chosen GOPs are loaded (transparently undoing any
//!    deferred compression), decoded (paying look-back for mid-GOP entry),
//!    resampled to the requested spatial/temporal configuration and, if the
//!    requested codec is compressed, re-encoded.
//! 4. **Cache admission** — the result is admitted as a new physical video
//!    (paper Section 4), the storage budget is enforced by evicting GOP
//!    pages, and a deferred-compression step runs if the budget is tight.
//!
//! Stages 1–3 are implemented by the GOP-at-a-time [`crate::stream`] module:
//! every read opens a [`ReadStream`](crate::ReadStream) and the materialized
//! entry points below simply [drain](crate::ReadStream::drain) it, so
//! streaming and materialized reads are byte-identical by construction.

use crate::engine::{Engine, ReadStats};
use crate::fragments::CandidateSet;
use crate::params::{PlannerKind, ReadRequest};
use crate::quality::QualityModel;
use crate::VssError;
use vss_codec::EncodedGop;
use vss_frame::{FrameSequence, Resolution};
use vss_solver::ReadPlan;

/// The result of a read operation.
#[derive(Debug, Clone)]
pub struct ReadResult {
    /// The decoded output frames in the requested spatial and temporal
    /// configuration (and requested raw layout, or YUV 4:2:0 for compressed
    /// requests).
    pub frames: FrameSequence,
    /// The encoded output, present when the requested codec is compressed.
    /// Segments served directly from cached GOPs in the requested
    /// configuration are emitted GOP-for-GOP, so the encoded stream is
    /// GOP-aligned and may extend slightly past the requested boundaries.
    pub encoded: Option<Vec<EncodedGop>>,
    /// Execution statistics.
    pub stats: ReadStats,
}

impl Engine {
    /// Executes a read planned by `request.planner` (the optimal planner by
    /// default).
    pub fn read(&mut self, request: &ReadRequest) -> Result<ReadResult, VssError> {
        self.read_with_planner(request, request.planner)
    }

    /// Executes a read with an explicit planner choice (overriding
    /// `request.planner`).
    pub fn read_with_planner(
        &mut self,
        request: &ReadRequest,
        planner: PlannerKind,
    ) -> Result<ReadResult, VssError> {
        let _span = vss_telemetry::span("engine", "read", request.name.as_str());
        let stream = self.plan_stream(request, planner, true)?;
        let (mut result, admission) = stream.drain_with_admission()?;
        // --- cache admission -----------------------------------------------
        // Results assembled partly from pass-through GOP reuse are not
        // re-admitted: the reused pieces already exist in the requested
        // configuration, so admitting the combination would only duplicate
        // them (and GOP-aligned reuse makes exact timing bookkeeping fuzzy).
        let cache_admitted = if admission.reused_any {
            false
        } else {
            self.maybe_admit_result(
                request,
                &admission.candidates,
                &result.stats.plan,
                &result.frames,
                result.encoded.as_deref(),
                admission.derivation_mse,
                admission.source_mse_bound,
                admission.output_resolution,
            )?
        };
        if cache_admitted {
            self.enforce_budget(&request.name)?;
        }
        if self.config.deferred_compression {
            self.deferred_compression_step(&request.name)?;
        }
        self.catalog.persist()?;
        result.stats.cache_admitted = cache_admitted;
        Ok(result)
    }

    /// Executes a read through a shared (`&self`) reference: plans, decodes
    /// and normalizes exactly like [`read_with_planner`](Self::read_with_planner)
    /// but never admits the result to the cache, runs no deferred-compression
    /// step and does not persist the catalog. Recency bookkeeping still
    /// happens (the LRU clocks are atomic).
    ///
    /// For the same request against the same store state, the returned frames
    /// and encoded GOPs are **byte-identical** to the exclusive path — this is
    /// what lets `vss-server` serve non-cacheable reads under a shard's
    /// shared read lock, concurrently with other readers.
    pub fn read_shared(
        &self,
        request: &ReadRequest,
        planner: PlannerKind,
    ) -> Result<ReadResult, VssError> {
        let _span = vss_telemetry::span("engine", "read", request.name.as_str());
        // Shared reads never admit, so no admission-quality measurement.
        self.plan_stream(request, planner, false)?.drain()
    }

    /// Admits a read result into the cache of materialized views, unless the
    /// read was marked non-cacheable, caching is disabled, a region of
    /// interest was applied (cropped results are not reusable as general
    /// fragments), or the plan was a pure pass-through of an existing
    /// fragment in the requested configuration.
    #[allow(clippy::too_many_arguments)]
    fn maybe_admit_result(
        &mut self,
        request: &ReadRequest,
        candidates: &CandidateSet,
        plan: &ReadPlan,
        output: &FrameSequence,
        encoded: Option<&[EncodedGop]>,
        derivation_mse: f64,
        source_mse_bound: f64,
        output_resolution: Resolution,
    ) -> Result<bool, VssError> {
        if !request.cacheable || !self.config.caching_enabled || request.spatial.region.is_some() {
            return Ok(false);
        }
        // Pass-through check: a single fragment already stores exactly the
        // requested configuration over the requested range.
        if plan.segments.len() == 1 {
            let fragment = &candidates.candidates[plan.segments[0].fragment_id as usize];
            let same_rate = request
                .temporal
                .frame_rate
                .is_none_or(|fps| (fps - fragment.frame_rate).abs() < 1e-9);
            if fragment.codec == request.physical.codec
                && fragment.resolution == output_resolution
                && same_rate
            {
                return Ok(false);
            }
        }
        let mse_bound = QualityModel::compose_bound(source_mse_bound, derivation_mse);
        let physical_id = self.catalog.add_physical(
            &request.name,
            output_resolution.width,
            output_resolution.height,
            output.frame_rate(),
            &request.physical.codec.name(),
            false,
            mse_bound,
        )?;
        match encoded {
            Some(gops) => {
                let mut time = request.temporal.start;
                for gop in gops {
                    let duration = gop.frame_count() as f64 / output.frame_rate();
                    self.catalog.append_gop(
                        &request.name,
                        physical_id,
                        time,
                        time + duration,
                        gop.frame_count(),
                        &gop.to_bytes(),
                        None,
                    )?;
                    time += duration;
                }
            }
            None => {
                self.store_sequence(
                    &request.name,
                    physical_id,
                    request.physical.codec,
                    request.physical.encoder_quality,
                    request.temporal.start,
                    output,
                )?;
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::test_support::temp_engine;
    use crate::fragments::build_candidates;
    use crate::params::{ReadRequest, WriteRequest};
    use vss_codec::Codec;
    use vss_frame::{pattern, quality, PixelFormat, RegionOfInterest};

    fn sequence(frames: usize, width: u32, height: u32) -> FrameSequence {
        let frames: Vec<_> =
            (0..frames).map(|i| pattern::gradient(width, height, PixelFormat::Yuv420, i as u64)).collect();
        FrameSequence::new(frames, 30.0).unwrap()
    }

    #[test]
    fn read_round_trips_written_video() {
        let (mut engine, root) = temp_engine("read-roundtrip");
        let source = sequence(60, 64, 48);
        engine.write(&WriteRequest::new("v", Codec::H264), &source).unwrap();
        let result = engine
            .read(&ReadRequest::new("v", 0.0, 2.0, Codec::Raw(PixelFormat::Yuv420)))
            .unwrap();
        assert_eq!(result.frames.len(), 60);
        assert!(result.encoded.is_none());
        let p = quality::sequence_psnr(source.frames(), result.frames.frames()).unwrap();
        assert!(p.db() > 35.0, "decoded output should match the written video, got {p}");
        assert!(result.stats.gops_read >= 2);
        assert!(result.stats.bytes_read > 0);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn out_of_range_reads_error() {
        let (mut engine, root) = temp_engine("read-range");
        engine.write(&WriteRequest::new("v", Codec::H264), &sequence(30, 64, 48)).unwrap();
        assert!(matches!(
            engine.read(&ReadRequest::new("v", 0.0, 5.0, Codec::H264)),
            Err(VssError::OutOfRange { .. })
        ));
        assert!(matches!(
            engine.read(&ReadRequest::new("v", 0.8, 0.2, Codec::H264)),
            Err(VssError::OutOfRange { .. })
        ));
        assert!(engine.read(&ReadRequest::new("missing", 0.0, 1.0, Codec::H264)).is_err());
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn transcoding_read_returns_encoded_gops_and_caches_result() {
        let (mut engine, root) = temp_engine("read-transcode");
        engine.write(&WriteRequest::new("v", Codec::H264), &sequence(60, 64, 48)).unwrap();
        let result = engine.read(&ReadRequest::new("v", 0.0, 2.0, Codec::Hevc)).unwrap();
        let gops = result.encoded.as_ref().expect("compressed read returns encoded GOPs");
        assert!(!gops.is_empty());
        assert!(gops.iter().all(|g| g.codec() == Codec::Hevc));
        assert!(result.stats.cache_admitted);
        // The cached HEVC representation is now a physical video.
        let video = engine.catalog.video("v").unwrap();
        assert_eq!(video.physical.len(), 2);
        assert!(video.physical.iter().any(|p| p.codec == "hevc" && !p.is_original));
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn cached_fragment_is_reused_by_later_reads() {
        let (mut engine, root) = temp_engine("read-reuse");
        engine.write(&WriteRequest::new("v", Codec::H264), &sequence(90, 64, 48)).unwrap();
        // Populate the cache with an HEVC copy of [0, 2).
        engine.read(&ReadRequest::new("v", 0.0, 2.0, Codec::Hevc)).unwrap();
        // A later HEVC read of a sub-range should be served from the cached
        // fragment (pass-through), not re-transcoded from the original.
        let result = engine.read(&ReadRequest::new("v", 0.0, 1.0, Codec::Hevc)).unwrap();
        let video = engine.catalog.video("v").unwrap();
        let cached_id =
            video.physical.iter().find(|p| p.codec == "hevc" && !p.is_original).unwrap().id;
        let used_run = result.stats.plan.segments[0].fragment_id;
        // Reconstruct which physical the plan used via stats: the plan's only
        // segment must map to the cached physical, which is cheaper.
        let candidates = build_candidates(
            engine.catalog.video("v").unwrap(),
            &engine.quality_model,
            vss_frame::PsnrDb(40.0),
        );
        assert_eq!(candidates.run(used_run).physical_id, cached_id);
        // Pass-through reads are not re-admitted as yet another copy.
        assert!(!result.stats.cache_admitted);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn roi_and_resolution_and_frame_rate_are_applied() {
        let (mut engine, root) = temp_engine("read-spatial");
        engine.write(&WriteRequest::new("v", Codec::H264), &sequence(60, 64, 48)).unwrap();
        let roi = RegionOfInterest::new(4, 4, 20, 16).unwrap();
        let result = engine
            .read(
                &ReadRequest::new("v", 0.0, 2.0, Codec::Raw(PixelFormat::Rgb8))
                    .at_resolution(Resolution::new(32, 24))
                    .with_region(roi)
                    .at_frame_rate(15.0),
            )
            .unwrap();
        assert_eq!(result.frames.len(), 30);
        let frame = &result.frames.frames()[0];
        assert_eq!(frame.width(), 16);
        assert_eq!(frame.height(), 12);
        assert_eq!(frame.format(), PixelFormat::Rgb8);
        // ROI reads are not cached.
        assert!(!result.stats.cache_admitted);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn uncacheable_reads_do_not_grow_the_catalog() {
        let (mut engine, root) = temp_engine("read-uncacheable");
        engine.write(&WriteRequest::new("v", Codec::H264), &sequence(30, 64, 48)).unwrap();
        let before = engine.catalog.video("v").unwrap().physical.len();
        let result = engine
            .read(&ReadRequest::new("v", 0.0, 1.0, Codec::Hevc).uncacheable())
            .unwrap();
        assert!(!result.stats.cache_admitted);
        assert_eq!(engine.catalog.video("v").unwrap().physical.len(), before);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn greedy_planner_is_available_and_covers_the_range() {
        let (mut engine, root) = temp_engine("read-greedy");
        engine.write(&WriteRequest::new("v", Codec::H264), &sequence(60, 64, 48)).unwrap();
        engine.read(&ReadRequest::new("v", 0.5, 1.5, Codec::Hevc)).unwrap();
        let result = engine
            .read_with_planner(&ReadRequest::new("v", 0.0, 2.0, Codec::Hevc), PlannerKind::Greedy)
            .unwrap();
        assert!(result.stats.plan.covers_range(0.0, 2.0));
        assert_eq!(result.frames.len(), 60);
        // The request-level builder selects the same planner.
        let via_request = engine
            .read(&ReadRequest::new("v", 0.0, 2.0, Codec::Hevc).planner(PlannerKind::Greedy))
            .unwrap();
        assert_eq!(via_request.frames.len(), 60);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn shared_read_is_byte_identical_to_exclusive_read() {
        let (mut engine, root) = temp_engine("read-shared");
        engine.write(&WriteRequest::new("v", Codec::H264), &sequence(60, 64, 48)).unwrap();
        // Populate the cache so plans can involve non-original fragments too.
        engine.read(&ReadRequest::new("v", 0.0, 2.0, Codec::Hevc)).unwrap();
        for request in [
            ReadRequest::new("v", 0.0, 2.0, Codec::Raw(PixelFormat::Yuv420)).uncacheable(),
            ReadRequest::new("v", 0.5, 1.5, Codec::Hevc).uncacheable(),
            ReadRequest::new("v", 0.0, 1.0, Codec::H264)
                .at_resolution(Resolution::new(32, 24))
                .uncacheable(),
        ] {
            let shared = engine.read_shared(&request, PlannerKind::Optimal).unwrap();
            let exclusive = engine.read_with_planner(&request, PlannerKind::Optimal).unwrap();
            assert_eq!(shared.frames.frames(), exclusive.frames.frames());
            let shared_bytes: Option<Vec<Vec<u8>>> =
                shared.encoded.as_ref().map(|g| g.iter().map(|g| g.to_bytes()).collect());
            let exclusive_bytes: Option<Vec<Vec<u8>>> =
                exclusive.encoded.as_ref().map(|g| g.iter().map(|g| g.to_bytes()).collect());
            assert_eq!(shared_bytes, exclusive_bytes);
            assert!(!shared.stats.cache_admitted);
        }
        // Recency bookkeeping still advanced through the shared reference.
        assert!(engine.catalog.clock() > 0);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn cached_fragment_use_is_reported_in_stats() {
        let (mut engine, root) = temp_engine("read-cachedstats");
        engine.write(&WriteRequest::new("v", Codec::H264), &sequence(60, 64, 48)).unwrap();
        let cold = engine.read(&ReadRequest::new("v", 0.0, 2.0, Codec::Hevc)).unwrap();
        assert_eq!(cold.stats.cached_fragments_used, 0, "first read decodes the original");
        let warm = engine.read(&ReadRequest::new("v", 0.0, 1.0, Codec::Hevc)).unwrap();
        assert!(warm.stats.cached_fragments_used > 0, "second read reuses the cached fragment");
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn streaming_prefix_reads_work_before_the_full_video_is_written() {
        let (mut engine, root) = temp_engine("read-streaming");
        engine.write(&WriteRequest::new("v", Codec::H264), &sequence(30, 64, 48)).unwrap();
        // Only [0, 1) exists so far; a prefix read succeeds...
        assert!(engine.read(&ReadRequest::new("v", 0.0, 1.0, Codec::H264).uncacheable()).is_ok());
        // ...a read past the end fails...
        assert!(engine.read(&ReadRequest::new("v", 0.0, 1.5, Codec::H264)).is_err());
        // ...until more data is appended.
        engine.append("v", &sequence(30, 64, 48)).unwrap();
        assert!(engine.read(&ReadRequest::new("v", 0.0, 1.5, Codec::H264).uncacheable()).is_ok());
        let _ = std::fs::remove_dir_all(root);
    }
}
