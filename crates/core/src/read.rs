//! The read path: answering `read(name, S, T, P)` from materialized views.
//!
//! A read is executed in four stages (paper Section 3):
//!
//! 1. **Candidate collection** — every contiguous run of cached GOPs whose
//!    estimated quality clears the read's threshold becomes a candidate
//!    fragment, alongside the original video.
//! 2. **Planning** — the fragment selector picks the minimum-cost combination
//!    of fragments covering the requested range (`vss-solver`).
//! 3. **Execution** — the chosen GOPs are loaded (transparently undoing any
//!    deferred compression), decoded (paying look-back for mid-GOP entry),
//!    resampled to the requested spatial/temporal configuration and, if the
//!    requested codec is compressed, re-encoded.
//! 4. **Cache admission** — the result is admitted as a new physical video
//!    (paper Section 4), the storage budget is enforced by evicting GOP
//!    pages, and a deferred-compression step runs if the budget is tight.

use crate::engine::{Engine, ReadStats};
use crate::fragments::{build_candidates, CandidateSet};
use crate::params::ReadRequest;
use crate::quality::QualityModel;
use crate::VssError;
use std::time::Instant;
use vss_catalog::PhysicalVideoRecord;
use vss_codec::{codec_instance, encode_to_gops_parallel, Codec, EncodedGop, EncoderConfig};
use vss_frame::{
    convert_frame_rate, crop, resize_bilinear, Frame, FrameSequence, PixelFormat, Resolution,
};
use vss_solver::{plan_read, plan_read_greedy, ReadPlan, ReadPlanRequest};

/// The result of a read operation.
#[derive(Debug, Clone)]
pub struct ReadResult {
    /// The decoded output frames in the requested spatial and temporal
    /// configuration (and requested raw layout, or YUV 4:2:0 for compressed
    /// requests).
    pub frames: FrameSequence,
    /// The encoded output, present when the requested codec is compressed.
    /// Segments served directly from cached GOPs in the requested
    /// configuration are emitted GOP-for-GOP, so the encoded stream is
    /// GOP-aligned and may extend slightly past the requested boundaries.
    pub encoded: Option<Vec<EncodedGop>>,
    /// Execution statistics.
    pub stats: ReadStats,
}

/// Which planning algorithm a read should use (the greedy variant exists for
/// the Figure 10 baseline comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlannerKind {
    /// The exact minimum-cost planner (default).
    #[default]
    Optimal,
    /// The dependency-naïve greedy baseline.
    Greedy,
}

impl Engine {
    /// Executes a read with the default (optimal) planner.
    pub fn read(&mut self, request: &ReadRequest) -> Result<ReadResult, VssError> {
        self.read_with_planner(request, PlannerKind::Optimal)
    }

    /// Executes a read with an explicit planner choice.
    pub fn read_with_planner(
        &mut self,
        request: &ReadRequest,
        planner: PlannerKind,
    ) -> Result<ReadResult, VssError> {
        let (mut result, admission) = self.read_core(request, planner)?;
        // --- cache admission -----------------------------------------------
        // Results assembled partly from pass-through GOP reuse are not
        // re-admitted: the reused pieces already exist in the requested
        // configuration, so admitting the combination would only duplicate
        // them (and GOP-aligned reuse makes exact timing bookkeeping fuzzy).
        let cache_admitted = if admission.reused_any {
            false
        } else {
            self.maybe_admit_result(
                request,
                &admission.candidates,
                &result.stats.plan,
                &result.frames,
                result.encoded.as_deref(),
                admission.derivation_mse,
                admission.source_mse_bound,
                admission.output_resolution,
            )?
        };
        if cache_admitted {
            self.enforce_budget(&request.name)?;
        }
        if self.config.deferred_compression {
            self.deferred_compression_step(&request.name)?;
        }
        self.catalog.persist()?;
        result.stats.cache_admitted = cache_admitted;
        Ok(result)
    }

    /// Executes a read through a shared (`&self`) reference: plans, decodes
    /// and normalizes exactly like [`read_with_planner`](Self::read_with_planner)
    /// but never admits the result to the cache, runs no deferred-compression
    /// step and does not persist the catalog. Recency bookkeeping still
    /// happens (the LRU clocks are atomic).
    ///
    /// For the same request against the same store state, the returned frames
    /// and encoded GOPs are **byte-identical** to the exclusive path — this is
    /// what lets `vss-server` serve non-cacheable reads under a shard's
    /// shared read lock, concurrently with other readers.
    pub fn read_shared(
        &self,
        request: &ReadRequest,
        planner: PlannerKind,
    ) -> Result<ReadResult, VssError> {
        let (result, _admission) = self.read_core(request, planner)?;
        Ok(result)
    }

    /// The lock-agnostic part of a read: planning, execution and output
    /// finalization. Returns the result (with `cache_admitted = false`) plus
    /// everything the exclusive path needs to decide on cache admission.
    fn read_core(
        &self,
        request: &ReadRequest,
        planner: PlannerKind,
    ) -> Result<(ReadResult, AdmissionInputs), VssError> {
        let video = self.catalog.video(&request.name)?.clone();
        let original = video
            .original()
            .ok_or_else(|| VssError::Unsatisfiable("video has no written data".into()))?;
        let (start, end) = (request.temporal.start, request.temporal.end);
        if end <= start
            || start < original.start_time() - 1e-6
            || end > original.end_time() + 1e-6
        {
            return Err(VssError::OutOfRange {
                requested_start: start,
                requested_end: end,
                available_start: original.start_time(),
                available_end: original.end_time(),
            });
        }
        let threshold =
            request.physical.quality_threshold.unwrap_or(self.config.default_quality_threshold);
        let output_resolution = request.spatial.resolution.unwrap_or_else(|| original.resolution());
        let output_fps = request.temporal.frame_rate.unwrap_or(original.frame_rate);

        // --- plan ----------------------------------------------------------
        let plan_started = Instant::now();
        let candidates = build_candidates(&video, &self.quality_model, threshold);
        let plan_request = ReadPlanRequest {
            start,
            end,
            resolution: output_resolution,
            codec: request.physical.codec,
        };
        let plan = match planner {
            PlannerKind::Optimal => plan_read(&plan_request, &candidates.candidates, &self.cost_model)?,
            PlannerKind::Greedy => {
                plan_read_greedy(&plan_request, &candidates.candidates, &self.cost_model)?
            }
        };
        let planning = plan_started.elapsed();

        // --- execute --------------------------------------------------------
        let decode_started = Instant::now();
        let target_format = match request.physical.codec {
            Codec::Raw(format) => format,
            _ => PixelFormat::Yuv420,
        };
        let execution = self.execute_plan(
            request,
            &video.physical,
            &candidates,
            &plan,
            output_resolution,
            output_fps,
            target_format,
        )?;
        let decoding = decode_started.elapsed();

        // --- finalize output -------------------------------------------------
        let encode_started = Instant::now();
        let mut output = FrameSequence::empty(output_fps)?;
        let mut reused_any = false;
        for segment in &execution.segments {
            output.extend(segment.frames.clone())?;
            reused_any |= segment.reused_gops.is_some();
        }
        if let Some(region) = request.spatial.region {
            let cropped = vss_parallel::try_par_map(
                self.config.parallelism,
                output.frames(),
                |_, frame| crop(frame, &region),
            )?;
            output = FrameSequence::new(cropped, output.frame_rate())?;
        }
        let encoded = if request.physical.codec.is_compressed() {
            let config = EncoderConfig {
                quality: request
                    .physical
                    .encoder_quality
                    .unwrap_or(self.config.default_encoder_quality),
                gop_size: self.config.gop_size,
            };
            // Segments already stored in the requested configuration are
            // emitted GOP-for-GOP without re-encoding (the cheap path the
            // materialized-view cache exists to enable); everything else is
            // (re)encoded from the normalized frames, one GOP per worker.
            let mut gops = Vec::new();
            for segment in &execution.segments {
                match (&segment.reused_gops, request.spatial.region) {
                    (Some(reused), None) => gops.extend(reused.iter().cloned()),
                    _ => {
                        if !segment.frames.is_empty() {
                            let cropped = match request.spatial.region {
                                Some(region) => {
                                    let frames = vss_parallel::try_par_map(
                                        self.config.parallelism,
                                        segment.frames.frames(),
                                        |_, frame| crop(frame, &region),
                                    )?;
                                    FrameSequence::new(frames, segment.frames.frame_rate())?
                                }
                                None => segment.frames.clone(),
                            };
                            gops.extend(encode_to_gops_parallel(
                                &cropped,
                                request.physical.codec,
                                &config,
                                self.config.parallelism,
                            )?);
                        }
                    }
                }
            }
            Some(gops)
        } else {
            None
        };
        let encoding = encode_started.elapsed();

        let result = ReadResult {
            frames: output,
            encoded,
            stats: ReadStats {
                plan,
                fragments_available: candidates.candidates.len(),
                gops_read: execution.gops_read,
                frames_decoded: execution.frames_decoded,
                bytes_read: execution.bytes_read,
                cached_fragments_used: execution.cached_segments,
                cache_admitted: false,
                planning,
                decoding,
                encoding,
            },
        };
        let admission = AdmissionInputs {
            candidates,
            reused_any,
            derivation_mse: execution.derivation_mse,
            source_mse_bound: execution.source_mse_bound,
            output_resolution,
        };
        Ok((result, admission))
    }

    /// Loads, decodes and normalizes every plan segment into a single output
    /// sequence at the requested resolution, frame rate and pixel format.
    #[allow(clippy::too_many_arguments)]
    fn execute_plan(
        &self,
        request: &ReadRequest,
        physicals: &[PhysicalVideoRecord],
        candidates: &CandidateSet,
        plan: &ReadPlan,
        output_resolution: Resolution,
        output_fps: f64,
        target_format: PixelFormat,
    ) -> Result<PlanExecution, VssError> {
        let mut segments: Vec<SegmentOutput> = Vec::new();
        let mut gops_read = 0usize;
        let mut frames_decoded = 0usize;
        let mut bytes_read = 0u64;
        let mut cached_segments = 0usize;
        let mut derivation_mse = 0.0f64;
        let mut derivation_measured = false;
        let mut source_mse_bound = 0.0f64;

        for segment in &plan.segments {
            let run = candidates.run(segment.fragment_id);
            let physical = physicals
                .iter()
                .find(|p| p.id == run.physical_id)
                .ok_or_else(|| VssError::Unsatisfiable("plan references a missing physical video".into()))?;
            source_mse_bound = source_mse_bound.max(physical.mse_bound);
            if !physical.is_original {
                cached_segments += 1;
            }
            let source_codec = physical
                .codec()
                .ok_or_else(|| VssError::Unsatisfiable("unknown stored codec".into()))?;
            let implementation = codec_instance(source_codec);
            // A segment whose fragment already matches the requested codec,
            // resolution and frame rate can hand its stored GOPs straight to
            // the output without re-encoding.
            let passthrough = request.physical.codec.is_compressed()
                && source_codec == request.physical.codec
                && physical.resolution() == output_resolution
                && (physical.frame_rate - output_fps).abs() < 1e-9;

            // Stage 1 (sequential): index lookups, file I/O and recency
            // bookkeeping. The precomputed index → GOP map replaces the
            // previous per-lookup linear scan over `physical.gops`.
            let gop_map = physical.gop_index_map();
            let mut loaded: Vec<(EncodedGop, usize, usize)> = Vec::new();
            for &gop_index in &run.gop_indices {
                let Some(gop_record) = gop_map.get(&gop_index) else {
                    continue;
                };
                if !gop_record.overlaps(segment.start, segment.end) {
                    continue;
                }
                let (gop, gop_bytes) = self.load_gop(&request.name, run.physical_id, gop_index)?;
                gops_read += 1;
                bytes_read += gop_bytes;
                let gop_fps = if gop.frame_rate() > 0.0 { gop.frame_rate() } else { physical.frame_rate };
                let relative_start = (segment.start - gop_record.start_time).max(0.0);
                let relative_end =
                    (segment.end - gop_record.start_time).min(gop_record.duration().max(0.0));
                let first = (relative_start * gop_fps).round() as usize;
                if first >= gop.frame_count() {
                    continue;
                }
                let last = ((relative_end * gop_fps).round() as usize)
                    .min(gop.frame_count())
                    .max(first + 1);
                self.catalog.touch_gop(&request.name, run.physical_id, gop_index)?;
                loaded.push((gop, first, last));
            }

            // Stage 2 (parallel): each GOP decodes independently; decoding up
            // to `last` pays the look-back cost for mid-GOP entry. Results
            // are collected in input order, so the output is identical to the
            // sequential path for any `parallelism` setting.
            let decoded = vss_parallel::try_par_map(
                self.config.parallelism,
                &loaded,
                |_, (gop, _, last)| implementation.decode_prefix(gop, *last),
            )?;

            let mut segment_frames: Vec<Frame> = Vec::new();
            let mut reused_gops: Vec<EncodedGop> = Vec::new();
            for ((gop, first, _), frames) in loaded.into_iter().zip(decoded) {
                frames_decoded += frames.len();
                segment_frames.extend_from_slice(&frames.frames()[first.min(frames.len())..]);
                if passthrough {
                    reused_gops.push(gop);
                }
            }
            if segment_frames.is_empty() {
                continue;
            }
            let source_sequence = FrameSequence::new(segment_frames, physical.frame_rate)?;

            // Stage 3 (parallel): normalize spatial configuration and
            // physical layout per frame, then retime.
            let resize_needed = output_resolution != physical.resolution();
            let normalized = vss_parallel::try_par_map(
                self.config.parallelism,
                source_sequence.frames(),
                |_, frame| -> Result<Frame, vss_frame::FrameError> {
                    let resized = if resize_needed && frame.resolution() != output_resolution {
                        resize_bilinear(frame, output_resolution.width, output_resolution.height)?
                    } else {
                        frame.clone()
                    };
                    resized.convert(target_format)
                },
            )?;
            let normalized = FrameSequence::new(normalized, physical.frame_rate)?;
            if !derivation_measured && output_resolution != physical.resolution() {
                derivation_mse = QualityModel::resampling_mse(&source_sequence, &normalized);
                derivation_measured = true;
            }
            let retimed = if (physical.frame_rate - output_fps).abs() > 1e-9 {
                convert_frame_rate(&normalized, output_fps)?
            } else {
                normalized
            };
            segments.push(SegmentOutput {
                frames: retimed,
                reused_gops: if passthrough && !reused_gops.is_empty() { Some(reused_gops) } else { None },
            });
        }
        if segments.iter().all(|s| s.frames.is_empty()) {
            return Err(VssError::Unsatisfiable("plan produced no frames".into()));
        }
        Ok(PlanExecution {
            segments,
            gops_read,
            frames_decoded,
            bytes_read,
            cached_segments,
            derivation_mse,
            source_mse_bound,
        })
    }

    /// Admits a read result into the cache of materialized views, unless the
    /// read was marked non-cacheable, caching is disabled, a region of
    /// interest was applied (cropped results are not reusable as general
    /// fragments), or the plan was a pure pass-through of an existing
    /// fragment in the requested configuration.
    #[allow(clippy::too_many_arguments)]
    fn maybe_admit_result(
        &mut self,
        request: &ReadRequest,
        candidates: &CandidateSet,
        plan: &ReadPlan,
        output: &FrameSequence,
        encoded: Option<&[EncodedGop]>,
        derivation_mse: f64,
        source_mse_bound: f64,
        output_resolution: Resolution,
    ) -> Result<bool, VssError> {
        if !request.cacheable || !self.config.caching_enabled || request.spatial.region.is_some() {
            return Ok(false);
        }
        // Pass-through check: a single fragment already stores exactly the
        // requested configuration over the requested range.
        if plan.segments.len() == 1 {
            let fragment = &candidates.candidates[plan.segments[0].fragment_id as usize];
            let same_rate = request
                .temporal
                .frame_rate
                .is_none_or(|fps| (fps - fragment.frame_rate).abs() < 1e-9);
            if fragment.codec == request.physical.codec
                && fragment.resolution == output_resolution
                && same_rate
            {
                return Ok(false);
            }
        }
        let mse_bound = QualityModel::compose_bound(source_mse_bound, derivation_mse);
        let physical_id = self.catalog.add_physical(
            &request.name,
            output_resolution.width,
            output_resolution.height,
            output.frame_rate(),
            &request.physical.codec.name(),
            false,
            mse_bound,
        )?;
        match encoded {
            Some(gops) => {
                let mut time = request.temporal.start;
                for gop in gops {
                    let duration = gop.frame_count() as f64 / output.frame_rate();
                    self.catalog.append_gop(
                        &request.name,
                        physical_id,
                        time,
                        time + duration,
                        gop.frame_count(),
                        &gop.to_bytes(),
                        None,
                    )?;
                    time += duration;
                }
            }
            None => {
                self.store_sequence(
                    &request.name,
                    physical_id,
                    request.physical.codec,
                    request.physical.encoder_quality,
                    request.temporal.start,
                    output,
                )?;
            }
        }
        Ok(true)
    }
}

/// Per-segment execution output: the normalized decoded frames plus, for
/// segments already stored in the requested configuration, the stored GOPs
/// that can be emitted without re-encoding.
struct SegmentOutput {
    frames: FrameSequence,
    reused_gops: Option<Vec<EncodedGop>>,
}

struct PlanExecution {
    segments: Vec<SegmentOutput>,
    gops_read: usize,
    frames_decoded: usize,
    bytes_read: u64,
    cached_segments: usize,
    derivation_mse: f64,
    source_mse_bound: f64,
}

/// Everything the exclusive read path needs, beyond the result itself, to
/// decide on (and perform) cache admission after the shared phase.
struct AdmissionInputs {
    candidates: CandidateSet,
    reused_any: bool,
    derivation_mse: f64,
    source_mse_bound: f64,
    output_resolution: Resolution,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::test_support::temp_engine;
    use crate::params::{ReadRequest, WriteRequest};
    use vss_frame::{pattern, quality, RegionOfInterest};

    fn sequence(frames: usize, width: u32, height: u32) -> FrameSequence {
        let frames: Vec<_> =
            (0..frames).map(|i| pattern::gradient(width, height, PixelFormat::Yuv420, i as u64)).collect();
        FrameSequence::new(frames, 30.0).unwrap()
    }

    #[test]
    fn read_round_trips_written_video() {
        let (mut engine, root) = temp_engine("read-roundtrip");
        let source = sequence(60, 64, 48);
        engine.write(&WriteRequest::new("v", Codec::H264), &source).unwrap();
        let result = engine
            .read(&ReadRequest::new("v", 0.0, 2.0, Codec::Raw(PixelFormat::Yuv420)))
            .unwrap();
        assert_eq!(result.frames.len(), 60);
        assert!(result.encoded.is_none());
        let p = quality::sequence_psnr(source.frames(), result.frames.frames()).unwrap();
        assert!(p.db() > 35.0, "decoded output should match the written video, got {p}");
        assert!(result.stats.gops_read >= 2);
        assert!(result.stats.bytes_read > 0);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn out_of_range_reads_error() {
        let (mut engine, root) = temp_engine("read-range");
        engine.write(&WriteRequest::new("v", Codec::H264), &sequence(30, 64, 48)).unwrap();
        assert!(matches!(
            engine.read(&ReadRequest::new("v", 0.0, 5.0, Codec::H264)),
            Err(VssError::OutOfRange { .. })
        ));
        assert!(matches!(
            engine.read(&ReadRequest::new("v", 0.8, 0.2, Codec::H264)),
            Err(VssError::OutOfRange { .. })
        ));
        assert!(engine.read(&ReadRequest::new("missing", 0.0, 1.0, Codec::H264)).is_err());
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn transcoding_read_returns_encoded_gops_and_caches_result() {
        let (mut engine, root) = temp_engine("read-transcode");
        engine.write(&WriteRequest::new("v", Codec::H264), &sequence(60, 64, 48)).unwrap();
        let result = engine.read(&ReadRequest::new("v", 0.0, 2.0, Codec::Hevc)).unwrap();
        let gops = result.encoded.as_ref().expect("compressed read returns encoded GOPs");
        assert!(!gops.is_empty());
        assert!(gops.iter().all(|g| g.codec() == Codec::Hevc));
        assert!(result.stats.cache_admitted);
        // The cached HEVC representation is now a physical video.
        let video = engine.catalog.video("v").unwrap();
        assert_eq!(video.physical.len(), 2);
        assert!(video.physical.iter().any(|p| p.codec == "hevc" && !p.is_original));
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn cached_fragment_is_reused_by_later_reads() {
        let (mut engine, root) = temp_engine("read-reuse");
        engine.write(&WriteRequest::new("v", Codec::H264), &sequence(90, 64, 48)).unwrap();
        // Populate the cache with an HEVC copy of [0, 2).
        engine.read(&ReadRequest::new("v", 0.0, 2.0, Codec::Hevc)).unwrap();
        // A later HEVC read of a sub-range should be served from the cached
        // fragment (pass-through), not re-transcoded from the original.
        let result = engine.read(&ReadRequest::new("v", 0.0, 1.0, Codec::Hevc)).unwrap();
        let video = engine.catalog.video("v").unwrap();
        let cached_id =
            video.physical.iter().find(|p| p.codec == "hevc" && !p.is_original).unwrap().id;
        let used_run = result.stats.plan.segments[0].fragment_id;
        // Reconstruct which physical the plan used via stats: the plan's only
        // segment must map to the cached physical, which is cheaper.
        let candidates = build_candidates(
            engine.catalog.video("v").unwrap(),
            &engine.quality_model,
            vss_frame::PsnrDb(40.0),
        );
        assert_eq!(candidates.run(used_run).physical_id, cached_id);
        // Pass-through reads are not re-admitted as yet another copy.
        assert!(!result.stats.cache_admitted);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn roi_and_resolution_and_frame_rate_are_applied() {
        let (mut engine, root) = temp_engine("read-spatial");
        engine.write(&WriteRequest::new("v", Codec::H264), &sequence(60, 64, 48)).unwrap();
        let roi = RegionOfInterest::new(4, 4, 20, 16).unwrap();
        let result = engine
            .read(
                &ReadRequest::new("v", 0.0, 2.0, Codec::Raw(PixelFormat::Rgb8))
                    .at_resolution(Resolution::new(32, 24))
                    .with_region(roi)
                    .at_frame_rate(15.0),
            )
            .unwrap();
        assert_eq!(result.frames.len(), 30);
        let frame = &result.frames.frames()[0];
        assert_eq!(frame.width(), 16);
        assert_eq!(frame.height(), 12);
        assert_eq!(frame.format(), PixelFormat::Rgb8);
        // ROI reads are not cached.
        assert!(!result.stats.cache_admitted);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn uncacheable_reads_do_not_grow_the_catalog() {
        let (mut engine, root) = temp_engine("read-uncacheable");
        engine.write(&WriteRequest::new("v", Codec::H264), &sequence(30, 64, 48)).unwrap();
        let before = engine.catalog.video("v").unwrap().physical.len();
        let result = engine
            .read(&ReadRequest::new("v", 0.0, 1.0, Codec::Hevc).uncacheable())
            .unwrap();
        assert!(!result.stats.cache_admitted);
        assert_eq!(engine.catalog.video("v").unwrap().physical.len(), before);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn greedy_planner_is_available_and_covers_the_range() {
        let (mut engine, root) = temp_engine("read-greedy");
        engine.write(&WriteRequest::new("v", Codec::H264), &sequence(60, 64, 48)).unwrap();
        engine.read(&ReadRequest::new("v", 0.5, 1.5, Codec::Hevc)).unwrap();
        let result = engine
            .read_with_planner(&ReadRequest::new("v", 0.0, 2.0, Codec::Hevc), PlannerKind::Greedy)
            .unwrap();
        assert!(result.stats.plan.covers_range(0.0, 2.0));
        assert_eq!(result.frames.len(), 60);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn shared_read_is_byte_identical_to_exclusive_read() {
        let (mut engine, root) = temp_engine("read-shared");
        engine.write(&WriteRequest::new("v", Codec::H264), &sequence(60, 64, 48)).unwrap();
        // Populate the cache so plans can involve non-original fragments too.
        engine.read(&ReadRequest::new("v", 0.0, 2.0, Codec::Hevc)).unwrap();
        for request in [
            ReadRequest::new("v", 0.0, 2.0, Codec::Raw(PixelFormat::Yuv420)).uncacheable(),
            ReadRequest::new("v", 0.5, 1.5, Codec::Hevc).uncacheable(),
            ReadRequest::new("v", 0.0, 1.0, Codec::H264)
                .at_resolution(Resolution::new(32, 24))
                .uncacheable(),
        ] {
            let shared = engine.read_shared(&request, PlannerKind::Optimal).unwrap();
            let exclusive = engine.read_with_planner(&request, PlannerKind::Optimal).unwrap();
            assert_eq!(shared.frames.frames(), exclusive.frames.frames());
            let shared_bytes: Option<Vec<Vec<u8>>> =
                shared.encoded.as_ref().map(|g| g.iter().map(|g| g.to_bytes()).collect());
            let exclusive_bytes: Option<Vec<Vec<u8>>> =
                exclusive.encoded.as_ref().map(|g| g.iter().map(|g| g.to_bytes()).collect());
            assert_eq!(shared_bytes, exclusive_bytes);
            assert!(!shared.stats.cache_admitted);
        }
        // Recency bookkeeping still advanced through the shared reference.
        assert!(engine.catalog.clock() > 0);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn cached_fragment_use_is_reported_in_stats() {
        let (mut engine, root) = temp_engine("read-cachedstats");
        engine.write(&WriteRequest::new("v", Codec::H264), &sequence(60, 64, 48)).unwrap();
        let cold = engine.read(&ReadRequest::new("v", 0.0, 2.0, Codec::Hevc)).unwrap();
        assert_eq!(cold.stats.cached_fragments_used, 0, "first read decodes the original");
        let warm = engine.read(&ReadRequest::new("v", 0.0, 1.0, Codec::Hevc)).unwrap();
        assert!(warm.stats.cached_fragments_used > 0, "second read reuses the cached fragment");
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn streaming_prefix_reads_work_before_the_full_video_is_written() {
        let (mut engine, root) = temp_engine("read-streaming");
        engine.write(&WriteRequest::new("v", Codec::H264), &sequence(30, 64, 48)).unwrap();
        // Only [0, 1) exists so far; a prefix read succeeds...
        assert!(engine.read(&ReadRequest::new("v", 0.0, 1.0, Codec::H264).uncacheable()).is_ok());
        // ...a read past the end fails...
        assert!(engine.read(&ReadRequest::new("v", 0.0, 1.5, Codec::H264)).is_err());
        // ...until more data is appended.
        engine.append("v", &sequence(30, 64, 48)).unwrap();
        assert!(engine.read(&ReadRequest::new("v", 0.0, 1.5, Codec::H264).uncacheable()).is_ok());
        let _ = std::fs::remove_dir_all(root);
    }
}
