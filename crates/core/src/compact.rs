//! Physical video compaction (paper Section 5.3).
//!
//! Caching and deferred compression can leave a logical video with many
//! small cached physical videos that are temporally contiguous and share a
//! spatial/physical configuration (e.g. entries covering `[0, 90)` and
//! `[90, 120)`). Every extra physical video increases read-planning cost, so
//! VSS periodically and non-quiescently merges such pairs into a single
//! representation. The paper's prototype hard-links the second entry's GOP
//! files into the first; here the files are re-appended under the first
//! entry and the second is dropped.

use crate::engine::Engine;
use crate::VssError;
use vss_catalog::PhysicalVideoId;

const TIME_EPSILON: f64 = 1e-6;

impl Engine {
    /// Compacts pairs of contiguous cached physical videos with identical
    /// configurations. Returns the number of merges performed.
    pub fn compact_video(&mut self, name: &str) -> Result<usize, VssError> {
        let _span = vss_telemetry::span("engine", "compact", name);
        if !self.config.compaction_enabled {
            return Ok(0);
        }
        let mut merges = 0usize;
        while let Some((target, source)) = self.find_compaction_pair(name)? {
            self.merge_physical(name, target, source)?;
            merges += 1;
        }
        if merges > 0 {
            self.catalog.persist()?;
        }
        Ok(merges)
    }

    /// Finds one `(target, source)` pair where `source` starts exactly where
    /// `target` ends and both share resolution, frame rate and codec. The
    /// original physical video is never compacted into or out of.
    fn find_compaction_pair(
        &self,
        name: &str,
    ) -> Result<Option<(PhysicalVideoId, PhysicalVideoId)>, VssError> {
        let video = self.catalog.video(name)?;
        for target in &video.physical {
            if target.is_original || target.gops.is_empty() {
                continue;
            }
            for source in &video.physical {
                if source.id == target.id || source.is_original || source.gops.is_empty() {
                    continue;
                }
                let same_config = source.width == target.width
                    && source.height == target.height
                    && (source.frame_rate - target.frame_rate).abs() < 1e-9
                    && source.codec == target.codec;
                let contiguous = (source.start_time() - target.end_time()).abs() < TIME_EPSILON;
                if same_config && contiguous {
                    return Ok(Some((target.id, source.id)));
                }
            }
        }
        Ok(None)
    }

    /// Moves every GOP of `source` to the end of `target` and removes
    /// `source`. The merged representation's quality bound is the worse of
    /// the two inputs.
    fn merge_physical(
        &mut self,
        name: &str,
        target: PhysicalVideoId,
        source: PhysicalVideoId,
    ) -> Result<(), VssError> {
        let video = self.catalog.video(name)?;
        let source_record = video
            .physical_by_id(source)
            .ok_or_else(|| VssError::Unsatisfiable("compaction source vanished".into()))?
            .clone();
        // Read source GOP files in parallel one window at a time (appends
        // stay in temporal order). The window bounds peak memory to
        // `threads` pages rather than materializing the whole video.
        let window = vss_parallel::resolve_threads(self.config.parallelism);
        for chunk in source_record.gops.chunks(window.max(1)) {
            let catalog = &self.catalog;
            let page_bytes =
                vss_parallel::try_par_map(self.config.parallelism, chunk, |_, gop| {
                    catalog.read_gop(name, source, gop.index)
                })?;
            for (gop, bytes) in chunk.iter().zip(&page_bytes) {
                self.catalog.append_gop(
                    name,
                    target,
                    gop.start_time,
                    gop.end_time,
                    gop.frame_count,
                    bytes,
                    gop.lossless_level,
                )?;
            }
        }
        let source_bound = source_record.mse_bound;
        if let Some(target_record) = self.catalog.video(name)?.physical_by_id(target) {
            let raised = target_record.mse_bound.max(source_bound);
            self.catalog.set_mse_bound(name, target, raised)?;
        }
        self.catalog.remove_physical(name, source)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::test_support::temp_engine;
    use crate::params::{ReadRequest, WriteRequest};
    use vss_codec::Codec;
    use vss_frame::{pattern, FrameSequence, PixelFormat};

    fn sequence(frames: usize) -> FrameSequence {
        let frames: Vec<_> =
            (0..frames).map(|i| pattern::gradient(64, 48, PixelFormat::Yuv420, i as u64)).collect();
        FrameSequence::new(frames, 30.0).unwrap()
    }

    #[test]
    fn contiguous_cached_entries_are_merged() {
        let (mut engine, root) = temp_engine("compact-merge");
        engine.write(&WriteRequest::new("v", Codec::H264), &sequence(90)).unwrap();
        // Two contiguous HEVC reads create two cached physical videos.
        engine.read(&ReadRequest::new("v", 0.0, 1.0, Codec::Hevc)).unwrap();
        engine.read(&ReadRequest::new("v", 1.0, 2.0, Codec::Hevc)).unwrap();
        let before = engine.catalog.video("v").unwrap().physical.len();
        assert_eq!(before, 3, "original + two cached entries");
        let merges = engine.compact_video("v").unwrap();
        assert_eq!(merges, 1);
        let video = engine.catalog.video("v").unwrap();
        assert_eq!(video.physical.len(), 2);
        let cached = video.physical.iter().find(|p| !p.is_original).unwrap();
        assert!((cached.start_time() - 0.0).abs() < 1e-6);
        assert!((cached.end_time() - 2.0).abs() < 1e-6);
        // The merged entry still serves reads.
        let result = engine.read(&ReadRequest::new("v", 0.0, 2.0, Codec::Hevc).uncacheable()).unwrap();
        assert_eq!(result.frames.len(), 60);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn non_contiguous_or_mismatched_entries_are_left_alone() {
        let (mut engine, root) = temp_engine("compact-skip");
        engine.write(&WriteRequest::new("v", Codec::H264), &sequence(90)).unwrap();
        // Non-contiguous HEVC reads and a raw read: nothing to merge.
        engine.read(&ReadRequest::new("v", 0.0, 1.0, Codec::Hevc)).unwrap();
        engine.read(&ReadRequest::new("v", 2.0, 3.0, Codec::Hevc)).unwrap();
        engine.read(&ReadRequest::new("v", 1.0, 2.0, Codec::Raw(PixelFormat::Yuv420))).unwrap();
        let before = engine.catalog.video("v").unwrap().physical.len();
        assert_eq!(engine.compact_video("v").unwrap(), 0);
        assert_eq!(engine.catalog.video("v").unwrap().physical.len(), before);
        // Disabling compaction is a no-op even when merges are possible.
        engine.read(&ReadRequest::new("v", 1.0, 2.0, Codec::Hevc)).unwrap();
        engine.config.compaction_enabled = false;
        assert_eq!(engine.compact_video("v").unwrap(), 0);
        let _ = std::fs::remove_dir_all(root);
    }
}
