//! The live-publication hook: how freshly persisted GOPs reach subscribers.
//!
//! A [`GopPublisher`] installed on an [`Engine`](crate::Engine) (via
//! [`Engine::set_publisher`](crate::Engine::set_publisher)) is notified of
//! every GOP appended to a logical video's **original** timeline, immediately
//! after the GOP is durably persisted — the catalog record is journaled and
//! fsynced and the GOP file has landed via temp+rename+fsync before the hook
//! fires, so a subscriber can never observe bytes a crash could lose.
//!
//! The hook receives the *pre-deferral* [`EncodedGop`]: the exact encoded
//! container the writer produced, before any write-time lossless wrapping.
//! Deferred compression is lossless, so a later catch-up read of the
//! persisted GOP decodes to identical frames — fanning the in-memory GOP out
//! to subscribers costs zero re-encodes and stays frame-identical to reading
//! the store.
//!
//! Cached (non-original) fragments materialized by the read path never
//! publish: subscribers tail the original timeline only.
//!
//! The hook runs on the writer's thread while the engine is exclusively
//! borrowed (under the `Vss` mutex or a `vss-server` shard write lock), so
//! implementations **must not block** and must never call back into the
//! engine. The `vss-live` hub satisfies this with bounded per-subscriber
//! queues: a full queue marks the subscriber lagged (it transparently
//! catches up from the persisted store) instead of stalling ingest.

use vss_codec::EncodedGop;

/// One durably persisted GOP of a logical video's original timeline, as seen
/// by a [`GopPublisher`]. Borrowed from the write path; publishers clone what
/// they need to retain.
#[derive(Debug, Clone, Copy)]
pub struct GopPublication<'a> {
    /// The logical video the GOP belongs to.
    pub name: &'a str,
    /// The GOP's catalog index within the original physical video — a dense,
    /// monotonically increasing sequence number (0-based) that continues
    /// across appends and sink restarts. Subscription cursors are expressed
    /// in this sequence.
    pub seq: u64,
    /// Start time of the GOP within the logical video, in seconds.
    pub start_time: f64,
    /// End time of the GOP within the logical video, in seconds.
    pub end_time: f64,
    /// Number of frames in the GOP.
    pub frame_count: usize,
    /// Frame rate of the original timeline, in frames per second.
    pub frame_rate: f64,
    /// The encoded GOP exactly as the writer produced it (pre-deferral).
    pub gop: &'a EncodedGop,
}

/// Receives engine lifecycle events for live fanout. See the
/// [module docs](self) for the delivery and non-blocking contract.
pub trait GopPublisher: Send + Sync {
    /// Called after one GOP of a video's original timeline was durably
    /// persisted (journaled, fsynced, file renamed into place).
    fn gop_persisted(&self, publication: &GopPublication<'_>);

    /// Called after a logical video was deleted; live subscriptions to it
    /// should terminate with an end-of-stream event.
    fn video_deleted(&self, name: &str);
}
