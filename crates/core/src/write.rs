//! The write path: ingesting video data into VSS.
//!
//! Writes accept frame data in any supported configuration and persist it as
//! a sequence of independently decodable GOP files (paper Section 2). The
//! first write of a logical video establishes the *original* physical video —
//! the quality reference for all cached derivations — and resolves the
//! video's storage budget. Uncompressed writes participate in deferred
//! compression (Section 5.2): once the storage budget passes the activation
//! threshold, newly written blocks are losslessly compressed at a level that
//! scales with the remaining budget.

use crate::engine::{Engine, WriteReport};
use crate::params::WriteRequest;
use crate::VssError;
use std::time::Instant;
use vss_catalog::PhysicalVideoId;
use vss_codec::{codec_instance, lossless, Codec, EncodedGop, EncoderConfig};
use vss_frame::FrameSequence;

impl Engine {
    /// Writes a frame sequence to a logical video. Creates the video (with
    /// the default budget) if it does not exist yet; the first write becomes
    /// the original physical video.
    pub fn write(&mut self, request: &WriteRequest, frames: &FrameSequence) -> Result<WriteReport, VssError> {
        let _span = vss_telemetry::span("engine", "write", request.name.as_str());
        if frames.is_empty() {
            return Err(VssError::EmptyWrite);
        }
        if !self.catalog.contains_video(&request.name) {
            self.create_video(&request.name, None)?;
        }
        let is_original = self.catalog.video(&request.name)?.original().is_none();
        let resolution = frames.resolution().expect("non-empty sequence");
        let physical_id = self.catalog.add_physical(
            &request.name,
            resolution.width,
            resolution.height,
            frames.frame_rate(),
            &request.codec.name(),
            is_original,
            0.0,
        )?;
        let report = self.store_sequence(
            &request.name,
            physical_id,
            request.codec,
            request.encoder_quality,
            request.start_time,
            frames,
        )?;
        self.catalog.persist()?;
        Ok(report)
    }

    /// Appends additional frames to a logical video's original physical
    /// video (streaming ingest). The frames must match the original's
    /// configuration; they are stored continuing from its current end time.
    /// Readers may query any prefix of the data written so far.
    pub fn append(&mut self, name: &str, frames: &FrameSequence) -> Result<WriteReport, VssError> {
        let _span = vss_telemetry::span("engine", "append", name);
        if frames.is_empty() {
            return Err(VssError::EmptyWrite);
        }
        let video = self.catalog.video(name)?;
        let original = video
            .original()
            .ok_or_else(|| VssError::Unsatisfiable("append requires an existing original".into()))?;
        let codec = original
            .codec()
            .ok_or_else(|| VssError::Unsatisfiable("original has an unknown codec".into()))?;
        let physical_id = original.id;
        let start_time = original.end_time();
        let report = self.store_sequence(name, physical_id, codec, None, start_time, frames)?;
        self.catalog.persist()?;
        Ok(report)
    }

    /// Encodes a frame sequence into GOPs of the configured size and persists
    /// them under an existing physical video, applying deferred compression
    /// to uncompressed blocks when the budget calls for it.
    pub(crate) fn store_sequence(
        &mut self,
        name: &str,
        physical_id: PhysicalVideoId,
        codec: Codec,
        encoder_quality: Option<u8>,
        start_time: f64,
        frames: &FrameSequence,
    ) -> Result<WriteReport, VssError> {
        let started = Instant::now();
        let gop_size = if codec.is_compressed() {
            self.config.gop_size
        } else {
            self.config.uncompressed_gop_frames
        };
        let encoder_config = EncoderConfig {
            quality: encoder_quality.unwrap_or(self.config.default_encoder_quality),
            gop_size,
        };
        let implementation = codec_instance(codec);
        let frame_rate = frames.frame_rate();
        let all = frames.frames();
        // Encode every GOP chunk up front on the parallel pipeline (each
        // chunk is independent and encoded straight from the borrowed frame
        // slice), then persist sequentially: write-time deferred compression
        // depends on the budget fraction, which evolves with each appended
        // GOP, so the persistence order is part of the on-disk semantics.
        let ranges = vss_parallel::chunk_ranges(all.len(), gop_size);
        let encoded = vss_parallel::try_par_map(
            self.config.parallelism,
            &ranges,
            |_, &(chunk_start, chunk_end)| {
                implementation.encode_slice(&all[chunk_start..chunk_end], frame_rate, &encoder_config)
            },
        )?;
        let mut gops_written = 0usize;
        let mut bytes_written = 0u64;
        let mut deferred_levels = Vec::new();
        let mut time = start_time;
        for (&(chunk_start, chunk_end), gop) in ranges.iter().zip(&encoded) {
            let frame_count = chunk_end - chunk_start;
            let (bytes, level) =
                self.persist_gop(name, physical_id, codec, gop, time, frame_count, frame_rate)?;
            bytes_written += bytes;
            deferred_levels.push(level);
            gops_written += 1;
            time += frame_count as f64 / frame_rate;
        }
        self.establish_budget(name)?;
        Ok(WriteReport {
            physical_id,
            gops_written,
            frames_written: all.len(),
            bytes_written,
            deferred_levels,
            elapsed: started.elapsed(),
        })
    }

    /// Serializes and persists one encoded GOP under an existing physical
    /// video, applying write-time deferred compression when the budget calls
    /// for it. This is the unit of persistence shared by the batch write path
    /// above and the incremental [`WriteSink`](crate::WriteSink) path —
    /// the two produce byte-identical stores because they both come through
    /// here with identical GOP boundaries, in the same order. Returns the
    /// bytes stored and the lossless level applied (0 = none).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn persist_gop(
        &mut self,
        name: &str,
        physical_id: PhysicalVideoId,
        codec: Codec,
        gop: &EncodedGop,
        time: f64,
        frame_count: usize,
        frame_rate: f64,
    ) -> Result<(u64, u8), VssError> {
        let duration = frame_count as f64 / frame_rate;
        let (data, level) = self.maybe_defer_on_write(name, codec, gop)?;
        let bytes = data.len() as u64;
        let seq = self.catalog.append_gop(
            name,
            physical_id,
            time,
            time + duration,
            frame_count,
            &data,
            if level > 0 { Some(level) } else { None },
        )?;
        // Live fanout: the GOP is durable (journaled + fsynced + renamed into
        // place) as of the append above, so it may now be published. Only the
        // original timeline publishes — cached fragments materialized by the
        // read path come through here too, but subscribers tail the original.
        if let Some(publisher) = &self.publisher {
            let is_original = self
                .catalog
                .video(name)?
                .original()
                .is_some_and(|original| original.id == physical_id);
            if is_original {
                publisher.gop_persisted(&crate::publish::GopPublication {
                    name,
                    seq,
                    start_time: time,
                    end_time: time + duration,
                    frame_count,
                    frame_rate,
                    gop,
                });
            }
        }
        Ok((bytes, level))
    }

    /// Establishes the video's storage budget once the original's size is
    /// known (a no-op when already set or nothing has been written).
    pub(crate) fn establish_budget(&mut self, name: &str) -> Result<(), VssError> {
        let default_budget = self.config.default_budget;
        let video = self.catalog.video(name)?;
        if video.storage_budget_bytes.is_none() {
            if let Some(original) = video.original() {
                let original_bytes = original.byte_len();
                if original_bytes > 0 {
                    if let Some(resolved) = default_budget.resolve(original_bytes) {
                        self.catalog.set_storage_budget(name, Some(resolved))?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Serializes a GOP for storage, applying write-time deferred compression
    /// to uncompressed blocks when the video's budget consumption has passed
    /// the activation threshold. Returns the bytes to store and the lossless
    /// level applied (0 = none).
    fn maybe_defer_on_write(
        &mut self,
        name: &str,
        codec: Codec,
        gop: &EncodedGop,
    ) -> Result<(Vec<u8>, u8), VssError> {
        let serialized = gop.to_bytes();
        if codec.is_compressed() || !self.config.deferred_compression {
            return Ok((serialized, 0));
        }
        let Some(fraction) = self.budget_fraction(name)? else {
            return Ok((serialized, 0));
        };
        let activation = self.config.deferred_activation_fraction;
        if fraction < activation {
            return Ok((serialized, 0));
        }
        let level = deferred_level_for_fraction(fraction, activation);
        Ok((lossless::compress(&serialized, level), level))
    }
}

/// Maps budget consumption to a deferred-compression level: the level scales
/// linearly from 1 (just past the activation threshold) to 19 (budget
/// exhausted), mirroring the paper's Figure 13 behaviour.
pub fn deferred_level_for_fraction(fraction: f64, activation: f64) -> u8 {
    let span = (1.0 - activation).max(1e-9);
    let t = ((fraction - activation) / span).clamp(0.0, 1.0);
    (1.0 + t * (lossless::MAX_LEVEL as f64 - 1.0)).round() as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::test_support::temp_engine;
    use crate::params::StorageBudget;
    use vss_frame::{pattern, PixelFormat};

    fn sequence(frames: usize, width: u32, height: u32) -> FrameSequence {
        let frames: Vec<_> =
            (0..frames).map(|i| pattern::gradient(width, height, PixelFormat::Yuv420, i as u64)).collect();
        FrameSequence::new(frames, 30.0).unwrap()
    }

    #[test]
    fn first_write_becomes_original_and_sets_budget() {
        let (mut engine, root) = temp_engine("write-original");
        let report = engine
            .write(&WriteRequest::new("traffic", Codec::H264), &sequence(60, 64, 48))
            .unwrap();
        assert_eq!(report.frames_written, 60);
        assert_eq!(report.gops_written, 2);
        assert!(report.bytes_written > 0);
        let video = engine.catalog.video("traffic").unwrap();
        let original = video.original().unwrap();
        assert!(original.is_original);
        assert_eq!(original.gops.len(), 2);
        assert_eq!(
            video.storage_budget_bytes,
            Some((original.byte_len() as f64 * 10.0).round() as u64)
        );
        // Second write of the same video is a cached (non-original) representation.
        let report2 = engine
            .write(&WriteRequest::new("traffic", Codec::Raw(PixelFormat::Yuv420)), &sequence(6, 64, 48))
            .unwrap();
        assert_ne!(report2.physical_id, report.physical_id);
        assert_eq!(engine.catalog.video("traffic").unwrap().physical.len(), 2);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn empty_writes_are_rejected() {
        let (mut engine, root) = temp_engine("write-empty");
        let empty = FrameSequence::empty(30.0).unwrap();
        assert!(matches!(
            engine.write(&WriteRequest::new("v", Codec::H264), &empty),
            Err(VssError::EmptyWrite)
        ));
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn append_continues_the_original_timeline() {
        let (mut engine, root) = temp_engine("append");
        engine.write(&WriteRequest::new("v", Codec::H264), &sequence(30, 64, 48)).unwrap();
        engine.append("v", &sequence(30, 64, 48)).unwrap();
        let video = engine.catalog.video("v").unwrap();
        let original = video.original().unwrap();
        assert_eq!(original.gops.len(), 2);
        assert!((original.end_time() - 2.0).abs() < 1e-6);
        assert!((original.gops[1].start_time - 1.0).abs() < 1e-6);
        // Appending to a video with no original fails.
        engine.create_video("w", None).unwrap();
        assert!(engine.append("w", &sequence(5, 64, 48)).is_err());
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn uncompressed_writes_defer_compress_once_budget_tightens() {
        let (mut engine, root) = temp_engine("write-deferred");
        // A small fixed budget forces deferred compression to activate partway
        // through the write.
        engine.create_video("v", Some(StorageBudget::Bytes(400_000))).unwrap();
        let report = engine
            .write(&WriteRequest::new("v", Codec::Raw(PixelFormat::Rgb8)), &sequence(30, 64, 48))
            .unwrap();
        assert_eq!(report.deferred_levels.len(), report.gops_written);
        assert_eq!(report.deferred_levels[0], 0, "first block is written before activation");
        let max_level = *report.deferred_levels.iter().max().unwrap();
        assert!(max_level >= 1, "deferred compression should have activated");
        // Levels never decrease as the budget fills.
        let active: Vec<u8> = report.deferred_levels.iter().copied().filter(|&l| l > 0).collect();
        assert!(active.windows(2).all(|w| w[1] >= w[0]));
        // Stored GOPs round-trip through the lossless layer.
        let video = engine.catalog.video("v").unwrap();
        let original = video.original().unwrap();
        let compressed_gop =
            original.gops.iter().find(|g| g.lossless_level.is_some()).expect("some gop compressed");
        let (decoded, _) = engine.load_gop("v", original.id, compressed_gop.index).unwrap();
        assert_eq!(decoded.frame_count(), compressed_gop.frame_count);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn compressed_writes_are_never_deferred() {
        let (mut engine, root) = temp_engine("write-compressed");
        engine.create_video("v", Some(StorageBudget::Bytes(10))).unwrap();
        let report =
            engine.write(&WriteRequest::new("v", Codec::Hevc), &sequence(10, 64, 48)).unwrap();
        assert!(report.deferred_levels.iter().all(|&l| l == 0));
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn deferred_level_scales_linearly_with_budget() {
        assert_eq!(deferred_level_for_fraction(0.0, 0.25), 1);
        assert_eq!(deferred_level_for_fraction(0.25, 0.25), 1);
        assert_eq!(deferred_level_for_fraction(1.0, 0.25), 19);
        assert_eq!(deferred_level_for_fraction(2.0, 0.25), 19);
        let mid = deferred_level_for_fraction(0.625, 0.25);
        assert!((9..=11).contains(&mid), "midpoint should be near level 10, got {mid}");
        let mut last = 0;
        for i in 0..=20 {
            let level = deferred_level_for_fraction(0.25 + i as f64 * 0.0375, 0.25);
            assert!(level >= last);
            last = level;
        }
    }
}
