//! The storage manager's error type.

use std::fmt;
use vss_catalog::CatalogError;
use vss_codec::CodecError;
use vss_frame::FrameError;
use vss_solver::SolverError;
use vss_vision::VisionError;

/// Errors produced by the VSS storage manager.
#[derive(Debug)]
pub enum VssError {
    /// The named logical video does not exist.
    VideoNotFound(String),
    /// A video with this name already exists.
    VideoExists(String),
    /// A read extends outside the temporal interval of the originally
    /// written video (the paper returns an error for such reads).
    OutOfRange {
        /// Requested start (seconds).
        requested_start: f64,
        /// Requested end (seconds).
        requested_end: f64,
        /// Available start (seconds).
        available_start: f64,
        /// Available end (seconds).
        available_end: f64,
    },
    /// The write contained no frames.
    EmptyWrite,
    /// No combination of materialized views satisfies the read at the
    /// requested quality.
    Unsatisfiable(String),
    /// The storage backend does not support the requested operation (e.g. a
    /// format conversion the local-file-system baseline cannot perform).
    /// VSS itself never returns this; it exists so the baseline stores can
    /// speak the unified [`VideoStorage`](crate::VideoStorage) vocabulary.
    Unsupported(String),
    /// Joint compression could not be applied to the requested pair.
    JointCompressionAborted(String),
    /// The server refused the session or request because it is operating at
    /// its configured admission limits (or is shutting down). Produced by
    /// `vss-server`'s admission control and surfaced through the `vss-net`
    /// wire protocol; retry after backing off.
    Overloaded(String),
    /// An error reported by a remote VSS server for which no structural
    /// local equivalent can be reconstructed (nested subsystem errors whose
    /// payloads do not cross the wire). Carries the wire-protocol error code
    /// and the remote error's display text; re-encoding a `Remote` error
    /// preserves the original code, so proxies are lossless.
    Remote {
        /// The `vss-net` wire-protocol error code.
        code: u16,
        /// Display text of the remote error.
        message: String,
    },
    /// An error from the metadata catalog / file store.
    Catalog(CatalogError),
    /// An error from the codec layer.
    Codec(CodecError),
    /// An error from the frame layer.
    Frame(FrameError),
    /// An error from the read planner.
    Solver(SolverError),
    /// An error from the vision subsystem.
    Vision(VisionError),
}

impl fmt::Display for VssError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VssError::VideoNotFound(name) => write!(f, "video '{name}' not found"),
            VssError::VideoExists(name) => write!(f, "video '{name}' already exists"),
            VssError::OutOfRange { requested_start, requested_end, available_start, available_end } => {
                write!(
                    f,
                    "read [{requested_start}, {requested_end}) extends outside the written interval \
                     [{available_start}, {available_end})"
                )
            }
            VssError::EmptyWrite => write!(f, "write contained no frames"),
            VssError::Unsatisfiable(msg) => write!(f, "read cannot be satisfied: {msg}"),
            VssError::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            VssError::JointCompressionAborted(msg) => write!(f, "joint compression aborted: {msg}"),
            VssError::Overloaded(msg) => write!(f, "server overloaded: {msg}"),
            VssError::Remote { code, message } => write!(f, "remote error (code {code}): {message}"),
            VssError::Catalog(e) => write!(f, "catalog error: {e}"),
            VssError::Codec(e) => write!(f, "codec error: {e}"),
            VssError::Frame(e) => write!(f, "frame error: {e}"),
            VssError::Solver(e) => write!(f, "planner error: {e}"),
            VssError::Vision(e) => write!(f, "vision error: {e}"),
        }
    }
}

impl std::error::Error for VssError {
    // Deliberately exhaustive (no `_` arm): adding a variant must force a
    // decision about whether it wraps a source error.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VssError::Catalog(e) => Some(e),
            VssError::Codec(e) => Some(e),
            VssError::Frame(e) => Some(e),
            VssError::Solver(e) => Some(e),
            VssError::Vision(e) => Some(e),
            VssError::VideoNotFound(_)
            | VssError::VideoExists(_)
            | VssError::OutOfRange { .. }
            | VssError::EmptyWrite
            | VssError::Unsatisfiable(_)
            | VssError::Unsupported(_)
            | VssError::JointCompressionAborted(_)
            | VssError::Overloaded(_)
            | VssError::Remote { .. } => None,
        }
    }
}

impl From<CatalogError> for VssError {
    fn from(e: CatalogError) -> Self {
        VssError::Catalog(e)
    }
}

impl From<CodecError> for VssError {
    fn from(e: CodecError) -> Self {
        VssError::Codec(e)
    }
}

impl From<FrameError> for VssError {
    fn from(e: FrameError) -> Self {
        VssError::Frame(e)
    }
}

impl From<SolverError> for VssError {
    fn from(e: SolverError) -> Self {
        VssError::Solver(e)
    }
}

impl From<VisionError> for VssError {
    fn from(e: VisionError) -> Self {
        VssError::Vision(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: VssError = FrameError::ShapeMismatch.into();
        assert!(e.to_string().contains("frame error"));
        let e: VssError = SolverError::NoCandidates.into();
        assert!(e.to_string().contains("planner"));
        let e = VssError::OutOfRange {
            requested_start: 0.0,
            requested_end: 100.0,
            available_start: 0.0,
            available_end: 60.0,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("60"));
    }
}
