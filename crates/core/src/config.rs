//! Storage-manager configuration.

use crate::params::StorageBudget;
use std::path::PathBuf;
use vss_frame::PsnrDb;

/// Cache eviction policy (paper Section 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EvictionPolicy {
    /// Plain least-recently-used over GOP pages (the baseline the paper
    /// compares against).
    Lru,
    /// The paper's LRU_VSS: LRU adjusted by fragment position (γ), redundancy
    /// rank (ζ) and a baseline-quality guard.
    LruVss {
        /// Weight of the position (defragmentation) term; prototype γ = 2.
        gamma: f64,
        /// Weight of the redundancy term; prototype ζ = 1.
        zeta: f64,
    },
}

impl Default for EvictionPolicy {
    fn default() -> Self {
        EvictionPolicy::LruVss { gamma: 2.0, zeta: 1.0 }
    }
}

/// Configuration of the joint-compression optimization (paper Section 5.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JointConfig {
    /// Minimum number of unambiguous feature correspondences for a GOP pair
    /// to be considered related (prototype m = 20).
    pub min_correspondences: usize,
    /// Maximum squared feature distance for a correspondence (prototype d = 400).
    pub max_feature_distance_sq: f64,
    /// `||H − I||₂` below which two frames are treated as exact duplicates
    /// and stored as a pointer (prototype ε = 0.1).
    pub duplicate_epsilon: f64,
    /// Minimum recovered quality before joint compression of a GOP pair is
    /// aborted (prototype 24 dB for the re-estimation check).
    pub recovery_threshold: PsnrDb,
    /// Quality threshold τ used by Algorithm 1's per-frame verification.
    pub quality_threshold: PsnrDb,
}

impl Default for JointConfig {
    fn default() -> Self {
        Self {
            min_correspondences: 20,
            max_feature_distance_sq: 400.0,
            duplicate_epsilon: 0.1,
            recovery_threshold: PsnrDb(24.0),
            quality_threshold: PsnrDb(40.0),
        }
    }
}

/// Configuration of the VSS storage manager.
#[derive(Debug, Clone, PartialEq)]
pub struct VssConfig {
    /// Root directory for all stored video data and metadata.
    pub root: PathBuf,
    /// Default storage budget for newly created videos (prototype: 10× the
    /// size of the originally written physical video).
    pub default_budget: StorageBudget,
    /// Default quality threshold for reads (prototype: 40 dB).
    pub default_quality_threshold: PsnrDb,
    /// Default encoder quality (0–100) for compressed writes and cached
    /// compressed results.
    pub default_encoder_quality: u8,
    /// Frames per GOP for compressed representations.
    pub gop_size: usize,
    /// Frames per block for uncompressed representations (the prototype
    /// bounds uncompressed blocks at ~25 MB; small synthetic frames use a
    /// fixed small frame count instead).
    pub uncompressed_gop_frames: usize,
    /// Whether read results may be admitted to the cache of materialized views.
    pub caching_enabled: bool,
    /// Eviction policy applied when the storage budget is exceeded.
    pub eviction_policy: EvictionPolicy,
    /// Whether deferred (lossless) compression of uncompressed entries is enabled.
    pub deferred_compression: bool,
    /// Fraction of the budget at which deferred compression activates
    /// (prototype: 25%).
    pub deferred_activation_fraction: f64,
    /// Whether physical video compaction is enabled.
    pub compaction_enabled: bool,
    /// Joint-compression parameters.
    pub joint: JointConfig,
    /// Worker threads used by the parallel GOP pipeline (encode, decode,
    /// per-frame normalization, deferred compression). `0` means "one worker
    /// per available core"; `1` reproduces the historical single-threaded
    /// execution bit-identically (no worker threads are spawned). Because
    /// GOPs are independent and results are collected in input order, every
    /// setting produces byte-identical output — the knob only changes wall
    /// time.
    pub parallelism: usize,
    /// Streaming readahead depth, in GOPs. `0` (the default) keeps the
    /// historical fully synchronous streaming paths: a
    /// [`ReadStream`](crate::ReadStream) loads and decodes each GOP on the
    /// consumer's thread, and a [`WriteSink`](crate::WriteSink) encodes each
    /// GOP inline before persisting it. With `readahead = N > 0`:
    ///
    /// * a `ReadStream` prefetches file bytes and decodes up to `N` GOPs
    ///   ahead of the consumer on a bounded worker pool (restoring cross-GOP
    ///   decode parallelism on the streaming path), raising the stream's
    ///   peak buffered memory bound from ~2 GOPs to ~`2 + N` GOPs; and
    /// * a `WriteSink` encodes GOP *n + 1* on a worker while GOP *n* is
    ///   being persisted, keeping up to `N` encoded GOPs in flight.
    ///
    /// Results are delivered strictly in input order, so every `readahead`
    /// setting produces byte-identical read output and byte-identical
    /// on-disk stores — like [`parallelism`](Self::parallelism), the knob
    /// only trades memory for wall time. Workers never touch the engine or
    /// its locks (streams snapshot their plan first; sinks persist on the
    /// caller's thread), and dropping a stream or sink cancels and joins its
    /// workers.
    pub readahead: usize,
    /// Size in bytes past which the catalog's write-ahead journal is folded
    /// into its JSON checkpoint at the next transaction boundary. Durability
    /// does not depend on this value (every mutation is journaled and
    /// fsynced before it is acknowledged); it only trades steady-state
    /// append cost against replay time on the next open.
    pub wal_checkpoint_bytes: u64,
}

impl VssConfig {
    /// A configuration rooted at the given directory with the paper's
    /// prototype defaults.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self {
            root: root.into(),
            default_budget: StorageBudget::default(),
            default_quality_threshold: PsnrDb(40.0),
            default_encoder_quality: 85,
            gop_size: 30,
            uncompressed_gop_frames: 3,
            caching_enabled: true,
            eviction_policy: EvictionPolicy::default(),
            deferred_compression: true,
            deferred_activation_fraction: 0.25,
            compaction_enabled: true,
            joint: JointConfig::default(),
            parallelism: 0,
            readahead: 0,
            wal_checkpoint_bytes: vss_catalog::DEFAULT_CHECKPOINT_THRESHOLD,
        }
    }

    /// Disables result caching (used by baseline comparisons and ablations).
    pub fn without_caching(mut self) -> Self {
        self.caching_enabled = false;
        self
    }

    /// Uses plain LRU eviction (ablation of LRU_VSS).
    pub fn with_plain_lru(mut self) -> Self {
        self.eviction_policy = EvictionPolicy::Lru;
        self
    }

    /// Disables deferred compression (ablation).
    pub fn without_deferred_compression(mut self) -> Self {
        self.deferred_compression = false;
        self
    }

    /// Overrides the default storage budget.
    pub fn with_default_budget(mut self, budget: StorageBudget) -> Self {
        self.default_budget = budget;
        self
    }

    /// Overrides the compressed GOP size.
    pub fn with_gop_size(mut self, frames: usize) -> Self {
        self.gop_size = frames.max(1);
        self
    }

    /// Overrides the parallel GOP pipeline's worker-thread count
    /// (`0` = one worker per available core, `1` = fully sequential).
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads;
        self
    }

    /// Overrides the streaming readahead depth in GOPs (`0` = synchronous
    /// streaming, `N` = prefetch/encode up to `N` GOPs ahead — see
    /// [`readahead`](Self::readahead)).
    pub fn with_readahead(mut self, gops: usize) -> Self {
        self.readahead = gops;
        self
    }

    /// Overrides the journal-checkpoint threshold — see
    /// [`wal_checkpoint_bytes`](Self::wal_checkpoint_bytes).
    pub fn with_wal_checkpoint_bytes(mut self, bytes: u64) -> Self {
        self.wal_checkpoint_bytes = bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_prototype_constants() {
        let c = VssConfig::new("/tmp/x");
        assert_eq!(c.default_quality_threshold, PsnrDb(40.0));
        assert_eq!(c.deferred_activation_fraction, 0.25);
        assert!(matches!(c.eviction_policy, EvictionPolicy::LruVss { gamma, zeta } if gamma == 2.0 && zeta == 1.0));
        assert_eq!(c.joint.min_correspondences, 20);
        assert_eq!(c.joint.max_feature_distance_sq, 400.0);
        assert_eq!(c.joint.duplicate_epsilon, 0.1);
        assert!(matches!(c.default_budget, StorageBudget::MultipleOfOriginal(m) if m == 10.0));
        assert_eq!(c.parallelism, 0, "default uses every available core");
        assert_eq!(c.readahead, 0, "default streaming is synchronous");
    }

    #[test]
    fn builders_toggle_features() {
        let c = VssConfig::new("/tmp/x")
            .without_caching()
            .with_plain_lru()
            .without_deferred_compression()
            .with_gop_size(0)
            .with_default_budget(StorageBudget::Bytes(123))
            .with_parallelism(2)
            .with_readahead(4);
        assert!(!c.caching_enabled);
        assert!(!c.deferred_compression);
        assert_eq!(c.eviction_policy, EvictionPolicy::Lru);
        assert_eq!(c.gop_size, 1);
        assert_eq!(c.default_budget, StorageBudget::Bytes(123));
        assert_eq!(c.parallelism, 2);
        assert_eq!(c.readahead, 4);
    }
}
