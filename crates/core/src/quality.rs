//! The VSS quality model (paper Section 3.2).
//!
//! VSS tracks the expected quality loss of every materialized view relative
//! to the originally written video. Error accumulates through two
//! mechanisms:
//!
//! * **Resampling error** — resolution or frame-rate changes. When VSS
//!   derives a new representation it measures the MSE against the source it
//!   was derived from, and composes it with the source's own bound using
//!   `MSE(f0, f2) ≤ 2·(MSE(f0, f1) + MSE(f1, f2))`, so the original never
//!   needs to be re-decoded.
//! * **Compression error** — estimated from mean bits per pixel via
//!   [`QualityEstimator`], optionally refined with exact PSNR samples.
//!
//! A fragment is usable for a read only if its estimated PSNR clears the
//! read's threshold (default 40 dB).

use vss_catalog::PhysicalVideoRecord;
use vss_codec::{Codec, QualityEstimator};
use vss_frame::quality::{compose_mse_bound, mse_from_psnr, psnr_from_mse};
use vss_frame::{mse, resize_bilinear, FrameSequence, PsnrDb};

/// Default quality threshold τ = ε = 40 dB ("lossless" per the paper).
pub const DEFAULT_QUALITY_THRESHOLD: PsnrDb = PsnrDb(40.0);

/// Number of frames sampled when measuring resampling error between a source
/// and a derived representation.
const SAMPLE_FRAMES: usize = 3;

/// The quality model: composition of resampling-error bounds with estimated
/// compression error.
#[derive(Debug, Clone, Default)]
pub struct QualityModel {
    estimator: QualityEstimator,
}

impl QualityModel {
    /// Creates a model with the default rate/quality curves.
    pub fn new() -> Self {
        Self::default()
    }

    /// Access to the underlying bits-per-pixel → PSNR estimator (for
    /// recording exact samples).
    pub fn estimator_mut(&mut self) -> &mut QualityEstimator {
        &mut self.estimator
    }

    /// Estimated quality of a physical representation relative to the
    /// originally written video, combining its accumulated resampling-MSE
    /// bound with its estimated compression error.
    pub fn estimate_physical_quality(&self, record: &PhysicalVideoRecord) -> PsnrDb {
        if record.is_original {
            return PsnrDb(PsnrDb::LOSSLESS_CAP);
        }
        let codec = record.codec().unwrap_or(Codec::H264);
        let compression_mse = if codec.is_compressed() {
            let bits_per_pixel = average_bits_per_pixel(record);
            mse_from_psnr(self.estimator.estimate(codec, bits_per_pixel))
        } else {
            0.0
        };
        // The two error sources add (the paper uses the sum of both sources).
        psnr_from_mse(record.mse_bound + compression_mse)
    }

    /// True if the representation may be used to answer a read with the given
    /// quality threshold.
    pub fn acceptable(&self, record: &PhysicalVideoRecord, threshold: PsnrDb) -> bool {
        self.estimate_physical_quality(record).db() >= threshold.db()
    }

    /// Measures the resampling MSE of a derived frame sequence against the
    /// source it was produced from, by upsampling a sample of derived frames
    /// back to the source resolution and comparing. Returns 0 for identical
    /// shapes with identical content.
    pub fn resampling_mse(source: &FrameSequence, derived: &FrameSequence) -> f64 {
        if source.is_empty() || derived.is_empty() {
            return 0.0;
        }
        let src_res = source.resolution().expect("non-empty");
        let samples = SAMPLE_FRAMES.min(source.len()).min(derived.len());
        let mut total = 0.0;
        for i in 0..samples {
            // Pick frames spread across the sequences, aligned by position.
            let src_idx = i * (source.len() - 1) / samples.max(1);
            let dst_idx = (src_idx * derived.len() / source.len()).min(derived.len() - 1);
            let src_frame = &source.frames()[src_idx];
            let derived_frame = &derived.frames()[dst_idx];
            let comparable = if derived_frame.resolution() == src_res {
                derived_frame.clone()
            } else {
                match resize_bilinear(derived_frame, src_res.width, src_res.height) {
                    Ok(f) => f,
                    Err(_) => return f64::INFINITY,
                }
            };
            match mse(src_frame, &comparable) {
                Ok(m) => total += m,
                Err(_) => return f64::INFINITY,
            }
        }
        total / samples as f64
    }

    /// Composes a source representation's accumulated MSE bound with newly
    /// measured derivation error, using the paper's transitive bound.
    pub fn compose_bound(source_mse_bound: f64, derivation_mse: f64) -> f64 {
        if source_mse_bound == 0.0 {
            // Deriving directly from the original: the measurement is exact,
            // no bound inflation needed.
            derivation_mse
        } else {
            compose_mse_bound(source_mse_bound, derivation_mse)
        }
    }
}

/// Mean bits per pixel across a physical video's stored GOPs.
pub fn average_bits_per_pixel(record: &PhysicalVideoRecord) -> f64 {
    let total_frames: usize = record.gops.iter().map(|g| g.frame_count).sum();
    if total_frames == 0 {
        return 0.0;
    }
    let pixels = record.resolution().pixels() * total_frames as u64;
    (record.byte_len() as f64 * 8.0) / pixels as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vss_catalog::GopRecord;
    use vss_frame::{pattern, PixelFormat, Resolution};

    fn record(codec: &str, is_original: bool, mse_bound: f64, bytes_per_gop: u64) -> PhysicalVideoRecord {
        PhysicalVideoRecord {
            id: 1,
            width: 320,
            height: 180,
            frame_rate: 30.0,
            codec: codec.into(),
            is_original,
            mse_bound,
            gops: vec![GopRecord {
                index: 0,
                start_time: 0.0,
                end_time: 1.0,
                frame_count: 30,
                byte_len: bytes_per_gop,
                lossless_level: None,
                last_access: vss_catalog::AtomicClock::new(0),
                duplicate_of: None,
            }],
        }
    }

    #[test]
    fn original_is_always_lossless_reference() {
        let model = QualityModel::new();
        let rec = record("hevc", true, 0.0, 10_000);
        assert_eq!(model.estimate_physical_quality(&rec).db(), PsnrDb::LOSSLESS_CAP);
        assert!(model.acceptable(&rec, DEFAULT_QUALITY_THRESHOLD));
    }

    #[test]
    fn raw_derived_copy_quality_depends_only_on_resampling() {
        let model = QualityModel::new();
        let pristine = record("rgb", false, 0.0, 320 * 180 * 3 * 30);
        assert_eq!(model.estimate_physical_quality(&pristine).db(), PsnrDb::LOSSLESS_CAP);
        let downsampled = record("rgb", false, 120.0, 320 * 180 * 3 * 30);
        let q = model.estimate_physical_quality(&downsampled);
        assert!(q.db() < 30.0, "high MSE bound should be low quality, got {q}");
        assert!(!model.acceptable(&downsampled, DEFAULT_QUALITY_THRESHOLD));
    }

    #[test]
    fn heavier_compression_lowers_estimated_quality() {
        let model = QualityModel::new();
        // ~0.05 bits/pixel vs ~3 bits/pixel.
        let starved = record("h264", false, 0.0, (0.05 * 320.0 * 180.0 * 30.0 / 8.0) as u64);
        let generous = record("h264", false, 0.0, (3.0 * 320.0 * 180.0 * 30.0 / 8.0) as u64);
        let q_starved = model.estimate_physical_quality(&starved);
        let q_generous = model.estimate_physical_quality(&generous);
        assert!(q_generous.db() > q_starved.db());
        assert!(model.acceptable(&generous, DEFAULT_QUALITY_THRESHOLD));
        assert!(!model.acceptable(&starved, DEFAULT_QUALITY_THRESHOLD));
    }

    #[test]
    fn resampling_mse_is_zero_for_identity_and_positive_for_downsampling() {
        let frames: Vec<_> =
            (0..4).map(|i| pattern::gradient(64, 64, PixelFormat::Rgb8, i as u64)).collect();
        let source = FrameSequence::new(frames, 30.0).unwrap();
        assert_eq!(QualityModel::resampling_mse(&source, &source), 0.0);

        let small: Vec<_> = source
            .frames()
            .iter()
            .map(|f| resize_bilinear(f, 16, 16).unwrap())
            .collect();
        let derived = FrameSequence::new(small, 30.0).unwrap();
        let m = QualityModel::resampling_mse(&source, &derived);
        assert!(m > 0.0);
        let empty = FrameSequence::empty(30.0).unwrap();
        assert_eq!(QualityModel::resampling_mse(&source, &empty), 0.0);
    }

    #[test]
    fn compose_bound_behaviour() {
        assert_eq!(QualityModel::compose_bound(0.0, 5.0), 5.0);
        assert_eq!(QualityModel::compose_bound(3.0, 5.0), 16.0);
    }

    #[test]
    fn bits_per_pixel_accounts_all_gops() {
        let mut rec = record("h264", false, 0.0, 1000);
        rec.gops.push(GopRecord {
            index: 1,
            start_time: 1.0,
            end_time: 2.0,
            frame_count: 30,
            byte_len: 3000,
            lossless_level: None,
            last_access: vss_catalog::AtomicClock::new(0),
            duplicate_of: None,
        });
        let bpp = average_bits_per_pixel(&rec);
        let expected = 4000.0 * 8.0 / (320.0 * 180.0 * 60.0);
        assert!((bpp - expected).abs() < 1e-12);
        assert_eq!(average_bits_per_pixel(&record("h264", false, 0.0, 0)), 0.0);
        let _ = Resolution::R1K;
    }
}
