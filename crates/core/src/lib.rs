//! # vss-core
//!
//! The VSS storage manager (SIGMOD 2021, "VSS: A Storage System for Video
//! Analytics"), reproduced in Rust.
//!
//! VSS decouples high-level video operations from the low-level details of
//! storing and retrieving video data. Applications interact with logical
//! videos through four operations — `create`, `write`, `read`, `delete` —
//! parameterized by temporal (`T`), spatial (`S`) and physical (`P`)
//! parameters. Internally VSS:
//!
//! * stores every physical representation as a sequence of independently
//!   decodable GOP files with a temporal index ([`vss_catalog`]);
//! * answers reads by selecting a minimum-cost combination of cached
//!   materialized views with an exact fragment-selection optimizer
//!   ([`vss_solver`]), paying transcode and look-back costs only where
//!   needed;
//! * caches read results as new materialized views, evicting GOP pages with
//!   the LRU_VSS policy when a per-video storage budget is exceeded;
//! * defers lossless compression of uncompressed entries until budgets
//!   tighten, scaling the compression level with remaining space;
//! * compacts contiguous cached entries; and
//! * jointly compresses overlapping GOPs captured by physically proximate
//!   cameras, recovering both views on read ([`joint`]).
//!
//! # Parallel GOP pipeline
//!
//! Every operation above decomposes into independent GOPs, and the engine
//! exploits that: encodes, decodes, per-frame normalization (resize, format
//! conversion, cropping) and deferred-compression sweeps all run on a pool
//! of scoped worker threads sized by [`VssConfig::parallelism`] — `0`
//! (the default) means one worker per available core, `1` reproduces fully
//! sequential execution. Results are always collected in input order, so
//! **every `parallelism` setting produces byte-identical stores and read
//! results**; the knob only changes wall-clock time. Benchmarks live in
//! `crates/bench/benches` (`codec_throughput`'s `encode_parallel` /
//! `decode_parallel` groups measure the scaling).
//!
//! # Streaming API
//!
//! Every store — [`Engine`], [`Vss`], a `vss-server` session and the
//! `vss-baseline` stores — speaks one contract, the [`VideoStorage`] trait
//! (`create` / `delete` / `write` / `append` / `read` / `read_stream` /
//! `write_sink` / `metadata`). Reads and writes come in two flavours:
//!
//! * **Materialized** — [`VideoStorage::read`] returns the whole result,
//!   [`VideoStorage::write`] takes the whole clip; memory is O(clip).
//! * **Streaming** — [`VideoStorage::read_stream`] yields
//!   [`ReadChunk`]s GOP-at-a-time and [`VideoStorage::write_sink`] persists
//!   each GOP as it fills; a pipelining consumer holds O(GOP) memory, and the
//!   plan is snapshotted up front so decoding runs lock-free.
//!
//! The materialized entry points are thin wrappers that drain the stream
//! (reads) or drive the sink's per-GOP persistence path (writes), so the two
//! flavours are **byte-identical** for the same request and store state. See
//! the [`stream`](crate::ReadStream) and [`sink`](crate::WriteSink) docs.
//!
//! Next to [`VssConfig::parallelism`] sits [`VssConfig::readahead`]: with
//! `readahead = N > 0`, a `ReadStream` prefetches file bytes and decodes up
//! to `N` GOPs ahead of the consumer on a bounded in-order worker pool, and
//! a `WriteSink` encodes GOP *n + 1* on a worker while GOP *n*'s file write
//! persists — both hot paths overlap I/O with codec work while staying
//! byte-identical at every depth (a streaming consumer's memory bound grows
//! from ~2 to ~`2 + N` GOPs). This restores the cross-GOP decode
//! parallelism the drained read path temporarily traded away when plan
//! execution moved into `ReadStream`: within a plan segment the synchronous
//! (`readahead = 0`) stream decodes GOPs one at a time, but with readahead
//! enabled multiple GOPs decode concurrently again, on workers that never
//! touch the engine or its locks.
//!
//! # Concurrency and sharding
//!
//! [`Vss`] guards the whole engine with a single mutex — simple, and fine
//! for one client. Multi-client deployments should use the `vss-server`
//! crate instead: it splits the engine into N independent shards keyed by a
//! hash of the logical-video name (each shard is a complete [`Engine`]
//! behind its own reader-writer lock) and exposes per-client sessions, a
//! per-shard background maintenance scheduler and per-shard statistics.
//! Two engine features exist specifically for that layer:
//!
//! * [`Engine::read_shared`] executes a read through `&self` (no cache
//!   admission, no persistence) with byte-identical output, so
//!   non-cacheable reads can run under a *shared* lock; and
//! * GOP recency clocks are atomic ([`vss_catalog::AtomicClock`]), so
//!   read-only traffic bumps LRU state without exclusive access.
//!
//! # Durability contract
//!
//! The store survives `kill -9` (and power cuts) at any instruction, backed
//! by the catalog's write-ahead journal (see the `vss_catalog` crate docs
//! for the mechanism). What the engine guarantees after reopening:
//!
//! * **Acked GOPs survive byte-identically.** Every GOP persisted through
//!   [`VideoStorage::write`]/`append` or a [`WriteSink`] is written
//!   temp-then-rename with file *and* directory fsyncs, and its catalog
//!   record is journaled and fsynced, before the call returns — so a GOP a
//!   caller has been acknowledged is never lost, truncated, or reordered.
//! * **In-flight work disappears cleanly.** A GOP that was mid-persist when
//!   the process died (file renamed but record not journaled, or a torn
//!   journal tail) is removed on the next [`Engine::open`]; the catalog and
//!   the files on disk always agree. [`Engine::recovery_report`] itemizes
//!   what replay repaired.
//! * **Not covered:** GOP recency (LRU) clocks between checkpoints — losing
//!   them can change future eviction *order*, never data correctness.
//!
//! Injected storage faults (see `vss_catalog::fault`) surface as typed
//! [`VssError::Catalog`] I/O errors, never panics; `tests/crash_recovery.rs`
//! exercises the whole contract with a `kill -9` subprocess harness.
//!
//! # Live ingest and retention
//!
//! The write path doubles as a live-publication source: a
//! [`GopPublisher`] installed via [`Engine::set_publisher`] observes every
//! original-timeline GOP *after* it is durably persisted (the durability
//! contract above is the publication barrier — subscribers can never see
//! bytes a crash could lose), receiving the pre-deferral
//! `vss_codec::EncodedGop` so fanout to N subscribers costs zero
//! re-encodes. The `vss-live` crate builds the per-video broadcast hub,
//! bounded subscriber queues and lag→catch-up→re-seam machinery on this
//! hook; `vss-server` installs the hub across all shards and `vss-net`
//! carries subscriptions over TCP.
//!
//! **Retention contract.** [`Engine::trim_before`] removes whole
//! original-timeline GOPs that end at or before a cutoff timestamp, each
//! removal journaled through the catalog WAL before the file is unlinked
//! (crash safe), always retaining the newest GOP. After a trim:
//!
//! * the video's available range starts at the first retained GOP — reads
//!   of trimmed ranges fail with [`VssError::OutOfRange`], and a
//!   subscription catching up across the trim reports the hole as a gap
//!   event rather than silently skipping data;
//! * freed bytes lower budget consumption, so the existing deferred-
//!   compression and compaction machinery sees the headroom on its next
//!   sweep;
//! * sequence numbers (catalog GOP indexes) are never reused — the trimmed
//!   prefix leaves a permanent hole in the sequence space.
//!
//! The main entry point is [`Vss`]. See the `examples/` directory of the
//! workspace for end-to-end usage.

#![warn(missing_docs)]

mod cache;
mod compact;
mod config;
mod deferred;
mod engine;
mod error;
mod fragments;
pub mod joint;
mod params;
pub mod publish;
mod quality;
mod read;
mod select;
pub mod sink;
pub mod storage;
pub mod stream;
mod write;

pub use cache::{eviction_order, EvictionCandidate};
pub use config::{EvictionPolicy, JointConfig, VssConfig};
pub use engine::{Engine, OriginalGopManifest, OriginalGopSpan, ReadStats, TrimReport, WriteReport};
pub use error::VssError;
pub use fragments::{build_candidates, contiguous_runs, CandidateSet, FragmentRun};
pub use joint::{
    joint_compress_sequences, recover_sequences, JointArtifact, JointOutcome, JointTimings,
    MergeFunction,
};
pub use params::{
    PhysicalParameters, PlannerKind, ReadRequest, SpatialParameters, StorageBudget, TemporalRange,
    WriteRequest,
};
pub use publish::{GopPublication, GopPublisher};
pub use quality::{QualityModel, DEFAULT_QUALITY_THRESHOLD};
pub use read::ReadResult;
pub use select::{GopFingerprint, PairSelector};
pub use sink::{GopWriteBackend, IncrementalWrite, SinkEncoder, WriteSink};
pub use storage::{VideoMetadata, VideoStorage};
pub use stream::{ChunkStats, ReadChunk, ReadStream};

use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use vss_frame::FrameSequence;

/// The VSS storage manager handle.
///
/// `Vss` is cheap to clone; clones share the same underlying engine, which is
/// how the background maintenance worker and concurrent readers/writers
/// coordinate (the paper's non-blocking write / prefix-read behaviour).
#[derive(Clone)]
pub struct Vss {
    engine: Arc<Mutex<Engine>>,
}

impl Vss {
    /// Opens (or creates) a VSS store with the given configuration.
    pub fn open(config: VssConfig) -> Result<Self, VssError> {
        Ok(Self { engine: Arc::new(Mutex::new(Engine::open(config)?)) })
    }

    /// Opens a store rooted at a directory with default configuration.
    pub fn open_at(root: impl Into<std::path::PathBuf>) -> Result<Self, VssError> {
        Self::open(VssConfig::new(root))
    }

    /// Creates a logical video, optionally with an explicit storage budget.
    pub fn create(&self, name: &str, budget: Option<StorageBudget>) -> Result<(), VssError> {
        self.engine.lock().create_video(name, budget)
    }

    /// Deletes a logical video and all of its data.
    pub fn delete(&self, name: &str) -> Result<(), VssError> {
        self.engine.lock().delete_video(name)
    }

    /// Writes a frame sequence to a logical video (creating it if needed).
    pub fn write(&self, request: &WriteRequest, frames: &FrameSequence) -> Result<WriteReport, VssError> {
        self.engine.lock().write(request, frames)
    }

    /// Appends frames to a logical video's original representation
    /// (streaming ingest); readers may query any prefix already written.
    pub fn append(&self, name: &str, frames: &FrameSequence) -> Result<WriteReport, VssError> {
        self.engine.lock().append(name, frames)
    }

    /// Executes a read planned by `request.planner` (optimal by default).
    pub fn read(&self, request: &ReadRequest) -> Result<ReadResult, VssError> {
        self.engine.lock().read(request)
    }

    /// Executes a read with an explicit planner choice (the greedy planner
    /// exists for baseline comparisons).
    pub fn read_with_planner(
        &self,
        request: &ReadRequest,
        planner: PlannerKind,
    ) -> Result<ReadResult, VssError> {
        self.engine.lock().read_with_planner(request, planner)
    }

    /// Opens a GOP-at-a-time streaming read. The engine lock is held only
    /// while the plan is snapshotted; the returned [`ReadStream`] decodes
    /// lock-free, so long streaming reads never starve other clients. The
    /// drained stream is byte-identical to [`read`](Self::read) of the same
    /// request, but never admits its result to the cache.
    pub fn read_stream(&self, request: &ReadRequest) -> Result<ReadStream, VssError> {
        self.engine.lock().read_stream(request)
    }

    /// Opens an incremental write: each GOP is encoded and persisted as it
    /// fills, taking the engine lock per GOP rather than for the whole
    /// ingest (with [`VssConfig::readahead`] `> 0`, encoding happens on a
    /// worker thread, overlapped with the previous GOP's persist — the lock
    /// is still only ever taken on the caller's thread, per GOP). The
    /// resulting store is byte-identical to a batch [`write`](Self::write)
    /// of the same frames.
    pub fn write_sink(&self, request: &WriteRequest, frame_rate: f64) -> Result<WriteSink<'static>, VssError> {
        let (gop_size, encoder, write) = {
            let engine = self.engine.lock();
            (
                engine.write_gop_size(request.codec),
                engine.sink_encoder(request),
                engine.begin_incremental_write(request, frame_rate)?,
            )
        };
        struct VssSinkBackend {
            vss: Vss,
            write: IncrementalWrite,
        }
        impl GopWriteBackend for VssSinkBackend {
            fn flush_gop(&mut self, frames: &[vss_frame::Frame]) -> Result<(), VssError> {
                self.vss.engine.lock().push_incremental_gop(&mut self.write, frames)
            }
            fn flush_encoded(
                &mut self,
                frames: &[vss_frame::Frame],
                gop: vss_codec::EncodedGop,
            ) -> Result<(), VssError> {
                self.vss.engine.lock().push_incremental_encoded(&mut self.write, frames, &gop)
            }
            fn finish(&mut self) -> Result<WriteReport, VssError> {
                self.vss.engine.lock().finish_incremental_write(&mut self.write)
            }
        }
        Ok(WriteSink::overlapped(
            Box::new(VssSinkBackend { vss: self.clone(), write }),
            frame_rate,
            gop_size,
            encoder,
        ))
    }

    /// Storage accounting for one logical video.
    pub fn metadata(&self, name: &str) -> Result<VideoMetadata, VssError> {
        self.engine.lock().metadata(name)
    }

    /// Names of all logical videos in the store.
    pub fn video_names(&self) -> Vec<String> {
        self.engine.lock().video_names()
    }

    /// Bytes used by a logical video across all physical representations.
    pub fn bytes_used(&self, name: &str) -> Result<u64, VssError> {
        self.engine.lock().bytes_used(name)
    }

    /// The storage budget of a logical video in bytes, if bounded.
    pub fn budget_bytes(&self, name: &str) -> Result<Option<u64>, VssError> {
        self.engine.lock().budget_bytes(name)
    }

    /// Fraction of the storage budget currently consumed.
    pub fn budget_fraction(&self, name: &str) -> Result<Option<f64>, VssError> {
        self.engine.lock().budget_fraction(name)
    }

    /// Runs compaction for a logical video, returning the number of merges.
    pub fn compact(&self, name: &str) -> Result<usize, VssError> {
        self.engine.lock().compact_video(name)
    }

    /// Runs one unit of background maintenance (deferred compression or
    /// compaction); returns `true` if any work was performed.
    pub fn run_maintenance(&self) -> Result<bool, VssError> {
        self.engine.lock().background_maintenance()
    }

    /// Runs a function with exclusive access to the engine (used by the
    /// benchmark harness for ablations that tweak configuration mid-run).
    pub fn with_engine<R>(&self, f: impl FnOnce(&mut Engine) -> R) -> R {
        f(&mut self.engine.lock())
    }

    /// Starts a background maintenance worker that periodically performs
    /// deferred compression and compaction while the store is otherwise
    /// idle. The worker stops when the returned guard is dropped.
    pub fn start_background_worker(&self, interval: Duration) -> BackgroundWorker {
        let (stop_tx, stop_rx) = bounded::<()>(1);
        let engine = Arc::clone(&self.engine);
        let handle = std::thread::spawn(move || loop {
            match stop_rx.recv_timeout(interval) {
                Ok(()) | Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    // Only run maintenance when no foreground request holds
                    // the engine (the paper performs this work "when no other
                    // requests are being executed").
                    if let Some(mut engine) = engine.try_lock() {
                        let _ = engine.background_maintenance();
                    }
                }
            }
        });
        BackgroundWorker { stop: Some(stop_tx), handle: Some(handle) }
    }
}

impl VideoStorage for Vss {
    fn label(&self) -> &'static str {
        "vss"
    }

    fn create(&mut self, name: &str, budget: Option<StorageBudget>) -> Result<(), VssError> {
        Vss::create(self, name, budget)
    }

    fn delete(&mut self, name: &str) -> Result<(), VssError> {
        Vss::delete(self, name)
    }

    fn write(
        &mut self,
        request: &WriteRequest,
        frames: &FrameSequence,
    ) -> Result<WriteReport, VssError> {
        Vss::write(self, request, frames)
    }

    fn append(&mut self, name: &str, frames: &FrameSequence) -> Result<WriteReport, VssError> {
        Vss::append(self, name, frames)
    }

    fn read(&mut self, request: &ReadRequest) -> Result<ReadResult, VssError> {
        Vss::read(self, request)
    }

    fn read_stream(&mut self, request: &ReadRequest) -> Result<ReadStream, VssError> {
        Vss::read_stream(self, request)
    }

    fn write_sink(
        &mut self,
        request: &WriteRequest,
        frame_rate: f64,
    ) -> Result<WriteSink<'_>, VssError> {
        Vss::write_sink(self, request, frame_rate)
    }

    fn metadata(&self, name: &str) -> Result<VideoMetadata, VssError> {
        Vss::metadata(self, name)
    }
}

/// Guard for the background maintenance worker; dropping it stops the thread.
pub struct BackgroundWorker {
    stop: Option<Sender<()>>,
    handle: Option<JoinHandle<()>>,
}

impl Drop for BackgroundWorker {
    fn drop(&mut self) {
        if let Some(stop) = self.stop.take() {
            let _ = stop.send(());
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vss_codec::Codec;
    use vss_frame::{pattern, PixelFormat};

    fn temp_store(tag: &str) -> (Vss, std::path::PathBuf) {
        let root = std::env::temp_dir().join(format!(
            "vss-handle-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        (Vss::open_at(&root).unwrap(), root)
    }

    fn sequence(frames: usize) -> FrameSequence {
        let frames: Vec<_> =
            (0..frames).map(|i| pattern::gradient(64, 48, PixelFormat::Yuv420, i as u64)).collect();
        FrameSequence::new(frames, 30.0).unwrap()
    }

    #[test]
    fn handle_round_trip_and_accounting() {
        let (vss, root) = temp_store("roundtrip");
        vss.write(&WriteRequest::new("v", Codec::H264), &sequence(60)).unwrap();
        assert_eq!(vss.video_names(), vec!["v".to_string()]);
        assert!(vss.bytes_used("v").unwrap() > 0);
        assert!(vss.budget_bytes("v").unwrap().unwrap() > vss.bytes_used("v").unwrap());
        let result = vss.read(&ReadRequest::new("v", 0.0, 1.0, Codec::Hevc)).unwrap();
        assert_eq!(result.frames.len(), 30);
        vss.delete("v").unwrap();
        assert!(vss.video_names().is_empty());
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn clones_share_state_across_threads() {
        let (vss, root) = temp_store("threads");
        vss.write(&WriteRequest::new("v", Codec::H264), &sequence(60)).unwrap();
        let reader = vss.clone();
        let writer = vss.clone();
        let read_thread = std::thread::spawn(move || {
            for _ in 0..3 {
                let r = reader.read(&ReadRequest::new("v", 0.0, 1.0, Codec::H264).uncacheable()).unwrap();
                assert_eq!(r.frames.len(), 30);
            }
        });
        let write_thread = std::thread::spawn(move || {
            writer.append("v", &sequence(30)).unwrap();
        });
        read_thread.join().unwrap();
        write_thread.join().unwrap();
        // The appended second is now readable.
        assert!(vss.read(&ReadRequest::new("v", 2.0, 3.0, Codec::H264).uncacheable()).is_ok());
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn background_worker_compresses_idle_store() {
        let (vss, root) = temp_store("background");
        vss.with_engine(|e| e.config.deferred_compression = false);
        vss.create("v", Some(StorageBudget::Bytes(50_000_000))).unwrap();
        vss.write(&WriteRequest::new("v", Codec::Raw(PixelFormat::Rgb8)), &sequence(9)).unwrap();
        vss.with_engine(|e| {
            e.config.deferred_compression = true;
        });
        let used = vss.bytes_used("v").unwrap();
        vss.with_engine(|e| {
            e.catalog.video_mut("v").unwrap().storage_budget_bytes = Some(used + 1);
        });
        {
            let _worker = vss.start_background_worker(Duration::from_millis(5));
            // Wait for the worker to make progress, bounded by a timeout.
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while vss.bytes_used("v").unwrap() >= used && std::time::Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        assert!(vss.bytes_used("v").unwrap() < used, "background worker should shrink raw pages");
        let _ = std::fs::remove_dir_all(root);
    }
}
