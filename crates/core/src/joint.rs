//! Joint physical video compression (paper Section 5.1, Algorithm 1).
//!
//! Pairs of cameras with overlapping fields of view capture largely redundant
//! pixels. VSS estimates the homography between a pair of GOPs, projects the
//! right camera's frames into the left camera's pixel space, and stores the
//! non-overlapping "left" region, the merged overlapping region, and the
//! non-overlapping "right" region as three separately encoded streams. Reads
//! invert the projection to recover both original frames.
//!
//! Two merge functions are supported: *unprojected* keeps the left camera's
//! pixels in the overlap (near-perfect recovery of the left view, lossier
//! right view) and *mean* averages both views (balanced, near-lossless both
//! ways). Every jointly compressed frame is verified by recovering it and
//! comparing against the original; pairs whose recovered quality falls below
//! the threshold re-estimate the homography once and otherwise abort, exactly
//! as Algorithm 1 prescribes. Near-identity homographies short-circuit to a
//! duplicate pointer.

use crate::config::JointConfig;
use crate::VssError;
use vss_codec::{codec_instance, Codec, CodecError, EncodedGop, EncoderConfig};
use vss_frame::{hconcat, quality, Frame, FrameSequence, PixelFormat, PsnrDb};
use vss_vision::{
    detect_keypoints, estimate_homography, match_descriptors, warp_perspective, Homography,
    KeypointParams, MatchParams, RansacParams,
};

/// How overlapping pixels from the two views are merged (paper Section 5.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeFunction {
    /// Keep the unprojected (left) frame's pixels.
    Unprojected,
    /// Average the left pixels with the projected right pixels.
    Mean,
}

/// Why joint compression of a GOP pair was not performed.
#[derive(Debug, Clone, PartialEq)]
pub enum JointAbort {
    /// No homography could be estimated between the first frames.
    NoHomography,
    /// The estimated geometry implies no horizontal overlap.
    NoOverlap,
    /// A recovered frame fell below the quality threshold even after
    /// re-estimating the homography.
    QualityTooLow {
        /// The recovered quality that failed the check.
        achieved: f64,
    },
    /// The two GOPs have different frame counts or shapes.
    ShapeMismatch,
}

impl std::fmt::Display for JointAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JointAbort::NoHomography => write!(f, "no homography found"),
            JointAbort::NoOverlap => write!(f, "no horizontal overlap"),
            JointAbort::QualityTooLow { achieved } => {
                write!(f, "recovered quality {achieved:.1} dB below threshold")
            }
            JointAbort::ShapeMismatch => write!(f, "frame sequences differ in shape"),
        }
    }
}

/// The outcome of attempting to jointly compress a pair of GOPs.
#[derive(Debug, Clone)]
pub enum JointOutcome {
    /// The pair was jointly compressed.
    Compressed(Box<JointArtifact>),
    /// The pair are near-exact duplicates; the second GOP can be replaced by
    /// a pointer to the first (the `||H − I|| ≤ ε` fast path).
    Duplicate,
    /// Joint compression was aborted; the GOPs stay separately compressed.
    Aborted(JointAbort),
}

/// A jointly compressed GOP pair: three encoded streams plus the geometry
/// needed to recover both original views.
#[derive(Debug, Clone)]
pub struct JointArtifact {
    /// Homography mapping left-view coordinates into right-view coordinates.
    pub homography: Homography,
    /// Whether the operands were swapped before compression (Algorithm 1
    /// reverses the transform when `H[0][2] < 0`).
    pub swapped: bool,
    /// Merge function applied to the overlap.
    pub merge: MergeFunction,
    /// Width/height of the original frames.
    pub width: u32,
    /// Height of the original frames.
    pub height: u32,
    /// First column of the left frame covered by the overlap region.
    pub overlap_start: u32,
    /// First column of the right frame *not* covered by the overlap region.
    pub right_start: u32,
    /// Encoded non-overlapping region of the left view.
    pub left: EncodedGop,
    /// Encoded merged overlap region (in left-view coordinates).
    pub overlap: EncodedGop,
    /// Encoded non-overlapping region of the right view.
    pub right: EncodedGop,
    /// Number of homography re-estimations performed (dynamic cameras).
    pub reestimations: usize,
}

impl JointArtifact {
    /// Total encoded size in bytes.
    pub fn byte_len(&self) -> usize {
        self.left.byte_len() + self.overlap.byte_len() + self.right.byte_len()
    }

    /// Number of frames in the jointly compressed GOP pair.
    pub fn frame_count(&self) -> usize {
        self.left.frame_count()
    }
}

/// Per-pair report of a joint compression attempt, used by the benchmark
/// harness to reproduce Figures 17–19 and Table 2.
#[derive(Debug, Clone, Default)]
pub struct JointTimings {
    /// Seconds spent detecting features.
    pub feature_detection: f64,
    /// Seconds spent estimating (and re-estimating) homographies.
    pub homography_estimation: f64,
    /// Seconds spent encoding the three output streams.
    pub compression: f64,
}

/// Estimates the homography between two frames via feature detection,
/// Lowe's-ratio matching and RANSAC (Algorithm 1's `homography(f, g)`).
pub fn frame_homography(
    left: &Frame,
    right: &Frame,
    config: &JointConfig,
    timings: &mut JointTimings,
) -> Option<Homography> {
    let started = std::time::Instant::now();
    let keypoint_params = KeypointParams::default();
    let descriptors_left = detect_keypoints(left, &keypoint_params);
    let descriptors_right = detect_keypoints(right, &keypoint_params);
    timings.feature_detection += started.elapsed().as_secs_f64();

    let started = std::time::Instant::now();
    let match_params = MatchParams {
        max_distance_sq: config.max_feature_distance_sq,
        ..MatchParams::default()
    };
    let matches = match_descriptors(&descriptors_left, &descriptors_right, &match_params);
    let result = if matches.len() < config.min_correspondences.max(4) {
        None
    } else {
        estimate_homography(
            &descriptors_left,
            &descriptors_right,
            &matches,
            &RansacParams { min_inliers: config.min_correspondences.max(4), ..RansacParams::default() },
        )
        .ok()
    };
    timings.homography_estimation += started.elapsed().as_secs_f64();
    result
}

/// Splits a frame pair into left / overlap / right regions given the
/// homography from left-view to right-view coordinates (Algorithm 1's
/// `partition`). Returns `None` when the implied overlap is empty.
pub fn partition_frames(
    left: &Frame,
    right: &Frame,
    homography: &Homography,
    merge: MergeFunction,
) -> Option<(Frame, Frame, Frame)> {
    let width = left.width();
    let height = left.height();
    let inverse = homography.inverse().ok()?;
    // Column of the left frame where the right frame's left edge lands.
    let overlap_start = inverse.apply(0.0, f64::from(height) / 2.0)?.0.round();
    // Column of the right frame where the left frame's right edge lands.
    let right_start = homography.apply(f64::from(width), f64::from(height) / 2.0)?.0.round();
    if !(0.0 < overlap_start && overlap_start < f64::from(width)
        && 0.0 < right_start
        && right_start <= f64::from(width))
    {
        return None;
    }
    let overlap_start = (overlap_start as u32).clamp(2, width - 2) & !1;
    let right_start = (right_start as u32).clamp(2, width) & !1;

    let left_region = crop_columns(left, 0, overlap_start);
    // Project the right frame into left-view coordinates and take the
    // overlapping columns.
    let projected_right = warp_perspective(right, &inverse, width, height).ok()?;
    let overlap_width = width - overlap_start;
    let mut overlap = Frame::black(overlap_width, height, PixelFormat::Rgb8).ok()?;
    for y in 0..height {
        for x in 0..overlap_width {
            let left_pixel = left.rgb_at(overlap_start + x, y);
            let right_pixel = projected_right.rgb_at(overlap_start + x, y);
            let merged = match merge {
                MergeFunction::Unprojected => left_pixel,
                MergeFunction::Mean => (
                    ((u16::from(left_pixel.0) + u16::from(right_pixel.0)) / 2) as u8,
                    ((u16::from(left_pixel.1) + u16::from(right_pixel.1)) / 2) as u8,
                    ((u16::from(left_pixel.2) + u16::from(right_pixel.2)) / 2) as u8,
                ),
            };
            overlap.set_rgb(x, y, merged);
        }
    }
    let right_region = crop_columns(right, right_start, right.width());
    Some((left_region, overlap, right_region))
}

/// Recovers the left and right frames from partitioned regions.
#[allow(clippy::too_many_arguments)]
pub fn recover_frames(
    left_region: &Frame,
    overlap: &Frame,
    right_region: &Frame,
    homography: &Homography,
    width: u32,
    height: u32,
    overlap_start: u32,
    right_start: u32,
) -> Result<(Frame, Frame), VssError> {
    // Left view: non-overlapping left columns followed by the overlap.
    let left = hconcat(left_region, overlap)?;

    // Right view: reproject the overlap into right-view coordinates, then
    // append the non-overlapping right columns.
    let mut right_overlap = Frame::black(right_start.max(2), height, PixelFormat::Rgb8)?;
    for y in 0..height {
        for x in 0..right_start {
            // Right-view pixel (x, y) corresponds to left-view coordinates
            // H⁻¹(x, y); the overlap image starts at column `overlap_start`.
            if let Some((lx, ly)) = homography.inverse()?.apply(f64::from(x), f64::from(y)) {
                let ox = lx - f64::from(overlap_start);
                if ox >= 0.0 && ox <= f64::from(overlap.width() - 1) && ly >= 0.0 && ly <= f64::from(height - 1)
                {
                    right_overlap.set_rgb(x, y, vss_vision::warp::sample_bilinear(overlap, ox, ly));
                    continue;
                }
            }
        }
    }
    let right = hconcat(&right_overlap, right_region)?;
    // Both views must come back at the original width (partition guarantees
    // the column arithmetic, but resolutions are clamped to even numbers).
    debug_assert_eq!(left.width(), width);
    Ok((left, right))
}

fn crop_columns(frame: &Frame, x0: u32, x1: u32) -> Frame {
    let roi = vss_frame::RegionOfInterest::new(x0, 0, x1.max(x0 + 2), frame.height())
        .expect("non-empty column range");
    vss_frame::crop(&frame.convert(PixelFormat::Rgb8).expect("rgb conversion"), &roi)
        .expect("crop within bounds")
}

/// Jointly compresses two frame sequences captured by overlapping cameras
/// (Algorithm 1). `reestimate_every` forces periodic homography
/// re-estimation, modelling dynamic cameras; `None` re-estimates only when
/// quality verification fails.
pub fn joint_compress_sequences(
    left: &FrameSequence,
    right: &FrameSequence,
    merge: MergeFunction,
    config: &JointConfig,
    encoder: &EncoderConfig,
    reestimate_every: Option<usize>,
    timings: &mut JointTimings,
) -> Result<JointOutcome, VssError> {
    joint_compress_inner(left, right, merge, config, encoder, reestimate_every, timings, true)
}

#[allow(clippy::too_many_arguments)]
fn joint_compress_inner(
    left: &FrameSequence,
    right: &FrameSequence,
    merge: MergeFunction,
    config: &JointConfig,
    encoder: &EncoderConfig,
    reestimate_every: Option<usize>,
    timings: &mut JointTimings,
    allow_swap: bool,
) -> Result<JointOutcome, VssError> {
    if left.len() != right.len() || left.is_empty() || left.resolution() != right.resolution() {
        return Ok(JointOutcome::Aborted(JointAbort::ShapeMismatch));
    }
    let left_rgb: Vec<Frame> = convert_all(left)?;
    let right_rgb: Vec<Frame> = convert_all(right)?;

    let Some(mut homography) = frame_homography(&left_rgb[0], &right_rgb[0], config, timings) else {
        return Ok(JointOutcome::Aborted(JointAbort::NoHomography));
    };
    // Exact-duplicate fast path.
    if homography.distance_from_identity() <= config.duplicate_epsilon {
        return Ok(JointOutcome::Duplicate);
    }

    let width = left_rgb[0].width();
    let height = left_rgb[0].height();
    let first_partition = partition_frames(&left_rgb[0], &right_rgb[0], &homography, merge);
    let Some((first_left, first_overlap, first_right)) = first_partition else {
        // The overlap is oriented the other way (Algorithm 1 reverses the
        // transform when the shift points leftward): retry once with the
        // operands swapped and mark the artifact accordingly.
        if allow_swap {
            let swapped = joint_compress_inner(
                right,
                left,
                merge,
                config,
                encoder,
                reestimate_every,
                timings,
                false,
            )?;
            return Ok(match swapped {
                JointOutcome::Compressed(mut artifact) => {
                    artifact.swapped = true;
                    JointOutcome::Compressed(artifact)
                }
                other => other,
            });
        }
        return Ok(JointOutcome::Aborted(JointAbort::NoOverlap));
    };
    let overlap_start = width - first_overlap.width();
    let right_start = width - first_right.width();

    let mut left_parts = vec![first_left];
    let mut overlap_parts = vec![first_overlap];
    let mut right_parts = vec![first_right];
    let mut reestimations = 0usize;
    // The most recent homography that passed verification; used as a
    // fallback when a re-estimated transform turns out to be worse.
    let mut last_good = homography;

    for index in 1..left_rgb.len() {
        if let Some(period) = reestimate_every {
            if period > 0 && index % period == 0 {
                if let Some(updated) = frame_homography(&left_rgb[index], &right_rgb[index], config, timings)
                {
                    homography = updated;
                    reestimations += 1;
                }
            }
        }
        let mut attempt = 0;
        loop {
            let parts =
                partition_with_fixed_columns(&left_rgb[index], &right_rgb[index], &homography, merge, overlap_start, right_start);
            let verified = parts.as_ref().map(|(l, o, r)| {
                verify_recovery(
                    &left_rgb[index],
                    &right_rgb[index],
                    l,
                    o,
                    r,
                    &homography,
                    width,
                    height,
                    overlap_start,
                    right_start,
                    config.recovery_threshold,
                )
            });
            match (parts, verified) {
                (Some((l, o, r)), Some(Ok(()))) => {
                    left_parts.push(l);
                    overlap_parts.push(o);
                    right_parts.push(r);
                    last_good = homography;
                    break;
                }
                (_, verdict) if attempt == 0 => {
                    // Re-estimate the homography once, then retry this frame.
                    attempt += 1;
                    match frame_homography(&left_rgb[index], &right_rgb[index], config, timings) {
                        Some(h) => {
                            homography = h;
                            reestimations += 1;
                        }
                        None => {
                            let achieved = match verdict {
                                Some(Err(db)) => db,
                                _ => 0.0,
                            };
                            return Ok(JointOutcome::Aborted(JointAbort::QualityTooLow { achieved }));
                        }
                    }
                }
                (_, _) if attempt == 1 => {
                    // The re-estimate was no better; fall back to the last
                    // homography that passed verification before giving up.
                    attempt += 1;
                    homography = last_good;
                }
                (_, verdict) => {
                    let achieved = match verdict {
                        Some(Err(db)) => db,
                        _ => 0.0,
                    };
                    return Ok(JointOutcome::Aborted(JointAbort::QualityTooLow { achieved }));
                }
            }
        }
    }

    // Encode the three streams.
    let started = std::time::Instant::now();
    let encode = |frames: Vec<Frame>| -> Result<EncodedGop, CodecError> {
        let sequence = FrameSequence::new(frames, left.frame_rate())?;
        codec_instance(Codec::H264).encode(&sequence, encoder)
    };
    let artifact = JointArtifact {
        homography,
        swapped: false,
        merge,
        width,
        height,
        overlap_start,
        right_start,
        left: encode(left_parts)?,
        overlap: encode(overlap_parts)?,
        right: encode(right_parts)?,
        reestimations,
    };
    timings.compression += started.elapsed().as_secs_f64();
    Ok(JointOutcome::Compressed(Box::new(artifact)))
}

/// Recovers both original frame sequences from a joint artifact.
pub fn recover_sequences(artifact: &JointArtifact) -> Result<(FrameSequence, FrameSequence), VssError> {
    let codec = codec_instance(Codec::H264);
    let left_parts = codec.decode(&artifact.left)?;
    let overlap_parts = codec.decode(&artifact.overlap)?;
    let right_parts = codec.decode(&artifact.right)?;
    let mut left_frames = Vec::with_capacity(left_parts.len());
    let mut right_frames = Vec::with_capacity(left_parts.len());
    for i in 0..left_parts.len() {
        let (l, r) = recover_frames(
            &left_parts.frames()[i].convert(PixelFormat::Rgb8)?,
            &overlap_parts.frames()[i].convert(PixelFormat::Rgb8)?,
            &right_parts.frames()[i].convert(PixelFormat::Rgb8)?,
            &artifact.homography,
            artifact.width,
            artifact.height,
            artifact.overlap_start,
            artifact.right_start,
        )?;
        left_frames.push(l);
        right_frames.push(r);
    }
    let left = FrameSequence::new(left_frames, artifact.left.frame_rate())?;
    let right = FrameSequence::new(right_frames, artifact.right.frame_rate())?;
    if artifact.swapped {
        Ok((right, left))
    } else {
        Ok((left, right))
    }
}

fn convert_all(sequence: &FrameSequence) -> Result<Vec<Frame>, VssError> {
    sequence.frames().iter().map(|f| f.convert(PixelFormat::Rgb8).map_err(VssError::from)).collect()
}

fn partition_with_fixed_columns(
    left: &Frame,
    right: &Frame,
    homography: &Homography,
    merge: MergeFunction,
    overlap_start: u32,
    right_start: u32,
) -> Option<(Frame, Frame, Frame)> {
    let width = left.width();
    let height = left.height();
    let inverse = homography.inverse().ok()?;
    let left_region = crop_columns(left, 0, overlap_start);
    let projected_right = warp_perspective(right, &inverse, width, height).ok()?;
    let overlap_width = width - overlap_start;
    let mut overlap = Frame::black(overlap_width, height, PixelFormat::Rgb8).ok()?;
    for y in 0..height {
        for x in 0..overlap_width {
            let left_pixel = left.rgb_at(overlap_start + x, y);
            let right_pixel = projected_right.rgb_at(overlap_start + x, y);
            let merged = match merge {
                MergeFunction::Unprojected => left_pixel,
                MergeFunction::Mean => (
                    ((u16::from(left_pixel.0) + u16::from(right_pixel.0)) / 2) as u8,
                    ((u16::from(left_pixel.1) + u16::from(right_pixel.1)) / 2) as u8,
                    ((u16::from(left_pixel.2) + u16::from(right_pixel.2)) / 2) as u8,
                ),
            };
            overlap.set_rgb(x, y, merged);
        }
    }
    let right_region = crop_columns(right, right_start, width);
    Some((left_region, overlap, right_region))
}

/// Verifies Algorithm 1's quality condition by recovering both frames and
/// comparing them to the originals; returns the failing PSNR on error.
#[allow(clippy::too_many_arguments)]
fn verify_recovery(
    original_left: &Frame,
    original_right: &Frame,
    left_region: &Frame,
    overlap: &Frame,
    right_region: &Frame,
    homography: &Homography,
    width: u32,
    height: u32,
    overlap_start: u32,
    right_start: u32,
    threshold: PsnrDb,
) -> Result<(), f64> {
    let Ok((recovered_left, recovered_right)) = recover_frames(
        left_region,
        overlap,
        right_region,
        homography,
        width,
        height,
        overlap_start,
        right_start,
    ) else {
        return Err(0.0);
    };
    let left_psnr = quality::psnr(original_left, &recovered_left).map_err(|_| 0.0)?;
    let right_psnr = quality::psnr(original_right, &recovered_right).map_err(|_| 0.0)?;
    let worst = left_psnr.db().min(right_psnr.db());
    if worst < threshold.db() {
        Err(worst)
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vss_frame::pattern;

    /// Renders a simple "road scene" viewed by two cameras whose fields of
    /// view overlap horizontally by `overlap_fraction`.
    fn stereo_pair(frames: usize, overlap_fraction: f64) -> (FrameSequence, FrameSequence) {
        let width = 128u32;
        let height = 96u32;
        let world_width = (2.0 * f64::from(width) - overlap_fraction * f64::from(width)) as i64;
        let shift = (f64::from(width) * (1.0 - overlap_fraction)) as i64;
        let mut left = Vec::new();
        let mut right = Vec::new();
        for t in 0..frames {
            let mut world =
                Frame::black(world_width as u32, height, PixelFormat::Rgb8).unwrap();
            // Sky, road and a few moving "vehicles".
            pattern::fill_rect(&mut world, 0, 0, world_width as u32, height / 3, (110, 160, 230));
            pattern::fill_rect(&mut world, 0, (height / 3) as i64, world_width as u32, height, (70, 70, 75));
            for lane in 0..3i64 {
                let x = (t as i64 * 3 + lane * 60) % world_width;
                let colors = [(200, 40, 40), (40, 180, 60), (220, 200, 60)];
                pattern::fill_rect(
                    &mut world,
                    x,
                    (height / 2) as i64 + lane * 12,
                    24,
                    10,
                    colors[lane as usize],
                );
            }
            let roi_left = vss_frame::RegionOfInterest::new(0, 0, width, height).unwrap();
            let roi_right =
                vss_frame::RegionOfInterest::new(shift as u32, 0, shift as u32 + width, height).unwrap();
            left.push(vss_frame::crop(&world, &roi_left).unwrap());
            right.push(vss_frame::crop(&world, &roi_right).unwrap());
        }
        (FrameSequence::new(left, 30.0).unwrap(), FrameSequence::new(right, 30.0).unwrap())
    }

    fn default_setup() -> (JointConfig, EncoderConfig) {
        // The synthetic scenes are small; require fewer correspondences and
        // tolerate the warp's interpolation loss.
        let config = JointConfig {
            min_correspondences: 6,
            quality_threshold: PsnrDb(26.0),
            recovery_threshold: PsnrDb(22.0),
            ..JointConfig::default()
        };
        (config, EncoderConfig::with_quality(90))
    }

    #[test]
    fn overlapping_pair_compresses_and_recovers() {
        let (left, right) = stereo_pair(4, 0.5);
        let (config, encoder) = default_setup();
        let mut timings = JointTimings::default();
        let outcome = joint_compress_sequences(
            &left,
            &right,
            MergeFunction::Unprojected,
            &config,
            &encoder,
            None,
            &mut timings,
        )
        .unwrap();
        let JointOutcome::Compressed(artifact) = outcome else {
            panic!("expected compression, got {outcome:?}");
        };
        assert_eq!(artifact.frame_count(), 4);
        assert!(timings.feature_detection > 0.0);
        assert!(timings.compression > 0.0);
        let (recovered_left, recovered_right) = recover_sequences(&artifact).unwrap();
        let left_psnr = quality::sequence_psnr(left.frames(), recovered_left.frames()).unwrap();
        let right_psnr = quality::sequence_psnr(right.frames(), recovered_right.frames()).unwrap();
        // Unprojected merge: left view recovers near-perfectly, right view
        // near-losslessly (paper Table 2's qualitative split).
        assert!(left_psnr.db() > 35.0, "left view should be high quality, got {left_psnr}");
        assert!(right_psnr.db() > 20.0, "right view should be watchable, got {right_psnr}");
        assert!(left_psnr.db() > right_psnr.db());
    }

    #[test]
    fn joint_compression_saves_space_versus_separate_encoding() {
        let (left, right) = stereo_pair(4, 0.6);
        let (config, encoder) = default_setup();
        let mut timings = JointTimings::default();
        let outcome = joint_compress_sequences(
            &left,
            &right,
            MergeFunction::Mean,
            &config,
            &encoder,
            None,
            &mut timings,
        )
        .unwrap();
        let JointOutcome::Compressed(artifact) = outcome else { panic!("expected compression") };
        let separate: usize = [&left, &right]
            .iter()
            .map(|seq| {
                codec_instance(Codec::H264).encode(seq, &encoder).unwrap().byte_len()
            })
            .sum();
        assert!(
            artifact.byte_len() < separate,
            "joint ({}) should be smaller than separate ({separate})",
            artifact.byte_len()
        );
    }

    #[test]
    fn identical_sequences_short_circuit_to_duplicate() {
        let (left, _) = stereo_pair(3, 0.5);
        let (config, encoder) = default_setup();
        let mut timings = JointTimings::default();
        let outcome = joint_compress_sequences(
            &left,
            &left,
            MergeFunction::Unprojected,
            &config,
            &encoder,
            None,
            &mut timings,
        )
        .unwrap();
        assert!(matches!(outcome, JointOutcome::Duplicate), "{outcome:?}");
    }

    #[test]
    fn unrelated_content_aborts() {
        let (left, _) = stereo_pair(3, 0.5);
        let noise: Vec<Frame> =
            (0..3).map(|i| pattern::noise(128, 96, PixelFormat::Rgb8, 100 + i)).collect();
        let noise = FrameSequence::new(noise, 30.0).unwrap();
        let (config, encoder) = default_setup();
        let mut timings = JointTimings::default();
        let outcome = joint_compress_sequences(
            &left,
            &noise,
            MergeFunction::Unprojected,
            &config,
            &encoder,
            None,
            &mut timings,
        )
        .unwrap();
        assert!(matches!(outcome, JointOutcome::Aborted(_)), "{outcome:?}");
    }

    #[test]
    fn shape_mismatch_aborts() {
        let (left, right) = stereo_pair(3, 0.5);
        let shorter = FrameSequence::new(right.frames()[..2].to_vec(), 30.0).unwrap();
        let (config, encoder) = default_setup();
        let mut timings = JointTimings::default();
        let outcome = joint_compress_sequences(
            &left,
            &shorter,
            MergeFunction::Unprojected,
            &config,
            &encoder,
            None,
            &mut timings,
        )
        .unwrap();
        assert!(matches!(outcome, JointOutcome::Aborted(JointAbort::ShapeMismatch)));
    }

    #[test]
    fn swapped_operands_are_handled() {
        let (left, right) = stereo_pair(3, 0.5);
        let (config, encoder) = default_setup();
        let mut timings = JointTimings::default();
        // Passing (right, left) means the homography's horizontal shift is
        // negative; Algorithm 1 reverses the transform.
        let outcome = joint_compress_sequences(
            &right,
            &left,
            MergeFunction::Unprojected,
            &config,
            &encoder,
            None,
            &mut timings,
        )
        .unwrap();
        let JointOutcome::Compressed(artifact) = outcome else { panic!("expected compression") };
        assert!(artifact.swapped);
        let (recovered_first, _recovered_second) = recover_sequences(&artifact).unwrap();
        // The first returned sequence corresponds to the first operand (right camera).
        let psnr = quality::sequence_psnr(right.frames(), recovered_first.frames()).unwrap();
        assert!(psnr.db() > 20.0, "swapped recovery should still work, got {psnr}");
    }

    #[test]
    fn dynamic_reestimation_is_counted() {
        let (left, right) = stereo_pair(6, 0.5);
        let (config, encoder) = default_setup();
        let mut timings = JointTimings::default();
        let outcome = joint_compress_sequences(
            &left,
            &right,
            MergeFunction::Mean,
            &config,
            &encoder,
            Some(2),
            &mut timings,
        )
        .unwrap();
        let JointOutcome::Compressed(artifact) = outcome else {
            panic!("expected compression, got {outcome:?}")
        };
        assert!(artifact.reestimations >= 2);
        assert!(timings.homography_estimation > 0.0);
    }
}
