//! Mapping catalog state to planner candidates.
//!
//! A physical video whose GOPs have been partially evicted no longer covers a
//! single contiguous interval; each maximal run of temporally contiguous GOPs
//! becomes one candidate fragment for the read planner.

use crate::quality::QualityModel;
use vss_catalog::{LogicalVideoRecord, PhysicalVideoId, PhysicalVideoRecord};
use vss_frame::PsnrDb;
use vss_solver::FragmentCandidate;

const TIME_EPSILON: f64 = 1e-6;

/// A contiguous run of GOPs within one physical video, addressable by the
/// planner through the corresponding [`FragmentCandidate`]'s id.
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentRun {
    /// The physical video the run belongs to.
    pub physical_id: PhysicalVideoId,
    /// GOP indices (into the physical video) forming the run, in order.
    pub gop_indices: Vec<u64>,
    /// Start time of the run in seconds.
    pub start: f64,
    /// End time of the run in seconds.
    pub end: f64,
}

/// The planner candidates derived from a logical video's current state,
/// together with the run metadata needed to execute a chosen plan.
#[derive(Debug, Clone, Default)]
pub struct CandidateSet {
    /// Candidates to hand to the planner; `candidates[i].id == i`.
    pub candidates: Vec<FragmentCandidate>,
    /// Run metadata, parallel to `candidates`.
    pub runs: Vec<FragmentRun>,
}

impl CandidateSet {
    /// The run backing a planner fragment id.
    pub fn run(&self, fragment_id: u64) -> &FragmentRun {
        &self.runs[fragment_id as usize]
    }
}

/// Splits a physical video's GOPs into maximal contiguous runs.
pub fn contiguous_runs(physical: &PhysicalVideoRecord) -> Vec<FragmentRun> {
    let mut runs: Vec<FragmentRun> = Vec::new();
    for gop in &physical.gops {
        match runs.last_mut() {
            Some(run) if (gop.start_time - run.end).abs() < TIME_EPSILON => {
                run.gop_indices.push(gop.index);
                run.end = gop.end_time;
            }
            _ => runs.push(FragmentRun {
                physical_id: physical.id,
                gop_indices: vec![gop.index],
                start: gop.start_time,
                end: gop.end_time,
            }),
        }
    }
    runs
}

/// Builds the candidate set for a read with the given quality threshold.
pub fn build_candidates(
    video: &LogicalVideoRecord,
    quality_model: &QualityModel,
    threshold: PsnrDb,
) -> CandidateSet {
    let mut set = CandidateSet::default();
    for physical in &video.physical {
        let Some(codec) = physical.codec() else { continue };
        let quality_ok = quality_model.acceptable(physical, threshold);
        // One map for all runs of this physical video: every run lookup
        // below is O(1) instead of a linear scan over `physical.gops`.
        let gop_map = physical.gop_index_map();
        for run in contiguous_runs(physical) {
            let gop_frames = run
                .gop_indices
                .iter()
                .filter_map(|&i| gop_map.get(&i))
                .map(|g| g.frame_count)
                .max()
                .unwrap_or(1);
            let id = set.candidates.len() as u64;
            set.candidates.push(FragmentCandidate {
                id,
                start: run.start,
                end: run.end,
                resolution: physical.resolution(),
                codec,
                frame_rate: physical.frame_rate,
                gop_frames,
                quality_ok,
            });
            set.runs.push(run);
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use vss_catalog::GopRecord;

    fn gop(index: u64, start: f64, end: f64) -> GopRecord {
        GopRecord {
            index,
            start_time: start,
            end_time: end,
            frame_count: 30,
            byte_len: 100,
            lossless_level: None,
            last_access: vss_catalog::AtomicClock::new(0),
            duplicate_of: None,
        }
    }

    fn physical(id: u64, gops: Vec<GopRecord>, is_original: bool) -> PhysicalVideoRecord {
        PhysicalVideoRecord {
            id,
            width: 320,
            height: 180,
            frame_rate: 30.0,
            codec: "h264".into(),
            is_original,
            mse_bound: 0.0,
            gops,
        }
    }

    #[test]
    fn contiguous_gops_form_one_run() {
        let p = physical(1, vec![gop(0, 0.0, 1.0), gop(1, 1.0, 2.0), gop(2, 2.0, 3.0)], true);
        let runs = contiguous_runs(&p);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].gop_indices, vec![0, 1, 2]);
        assert_eq!(runs[0].start, 0.0);
        assert_eq!(runs[0].end, 3.0);
    }

    #[test]
    fn evicted_gop_splits_runs() {
        // GOP 1 was evicted, leaving [0,1) and [2,3).
        let p = physical(1, vec![gop(0, 0.0, 1.0), gop(2, 2.0, 3.0)], false);
        let runs = contiguous_runs(&p);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].gop_indices, vec![0]);
        assert_eq!(runs[1].gop_indices, vec![2]);
    }

    #[test]
    fn empty_physical_video_produces_no_runs() {
        let p = physical(1, vec![], false);
        assert!(contiguous_runs(&p).is_empty());
    }

    #[test]
    fn candidate_set_maps_ids_to_runs() {
        let mut video = LogicalVideoRecord::new("v");
        video.physical.push(physical(1, vec![gop(0, 0.0, 1.0), gop(1, 1.0, 2.0)], true));
        video.physical.push(physical(2, vec![gop(0, 0.0, 1.0), gop(5, 5.0, 6.0)], false));
        let model = QualityModel::new();
        let set = build_candidates(&video, &model, PsnrDb(40.0));
        assert_eq!(set.candidates.len(), 3);
        assert_eq!(set.runs.len(), 3);
        for (i, c) in set.candidates.iter().enumerate() {
            assert_eq!(c.id, i as u64);
            let run = set.run(c.id);
            assert_eq!(run.start, c.start);
            assert_eq!(run.end, c.end);
        }
        assert_eq!(set.run(1).physical_id, 2);
    }

    #[test]
    fn unknown_codecs_are_skipped_and_low_quality_flagged() {
        let mut video = LogicalVideoRecord::new("v");
        let mut bad_codec = physical(1, vec![gop(0, 0.0, 1.0)], false);
        bad_codec.codec = "vp9".into();
        video.physical.push(bad_codec);
        let mut low_quality = physical(2, vec![gop(0, 0.0, 1.0)], false);
        low_quality.mse_bound = 1e4;
        video.physical.push(low_quality);
        let model = QualityModel::new();
        let set = build_candidates(&video, &model, PsnrDb(40.0));
        assert_eq!(set.candidates.len(), 1, "unknown codec must be skipped");
        assert!(!set.candidates[0].quality_ok);
    }
}
