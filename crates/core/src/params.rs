//! The VSS API parameter types (paper Figure 1).
//!
//! Every read and write is described by three parameter groups:
//!
//! * **Temporal** (`T`) — a start/end time interval and a frame rate.
//! * **Spatial** (`S`) — a resolution and an optional region of interest.
//! * **Physical** (`P`) — a frame layout, compression codec and quality.

use vss_codec::Codec;
use vss_frame::{PsnrDb, RegionOfInterest, Resolution};

/// Which planning algorithm a read should use (the greedy variant exists for
/// the Figure 10 baseline comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlannerKind {
    /// The exact minimum-cost planner (default).
    #[default]
    Optimal,
    /// The dependency-naïve greedy baseline.
    Greedy,
}

/// A half-open temporal interval `[start, end)` in seconds, with an optional
/// frame-rate override.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemporalRange {
    /// Start time in seconds (inclusive).
    pub start: f64,
    /// End time in seconds (exclusive).
    pub end: f64,
    /// Requested frame rate; `None` keeps the source frame rate.
    pub frame_rate: Option<f64>,
}

impl TemporalRange {
    /// Creates a range covering `[start, end)` at the source frame rate.
    pub fn new(start: f64, end: f64) -> Self {
        Self { start, end, frame_rate: None }
    }

    /// Sets an explicit output frame rate.
    pub fn at_frame_rate(mut self, fps: f64) -> Self {
        self.frame_rate = Some(fps);
        self
    }

    /// Duration of the range in seconds (zero if inverted).
    pub fn duration(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }
}

/// Spatial parameters: output resolution and optional region of interest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpatialParameters {
    /// Requested output resolution; `None` keeps the source resolution.
    pub resolution: Option<Resolution>,
    /// Optional region of interest, in output-resolution coordinates.
    pub region: Option<RegionOfInterest>,
}

impl SpatialParameters {
    /// Keep the source resolution, no region of interest.
    pub fn source() -> Self {
        Self { resolution: None, region: None }
    }

    /// Request a specific output resolution.
    pub fn at_resolution(resolution: Resolution) -> Self {
        Self { resolution: Some(resolution), region: None }
    }

    /// Adds a region of interest.
    pub fn with_region(mut self, region: RegionOfInterest) -> Self {
        self.region = Some(region);
        self
    }
}

/// Physical parameters: frame layout / codec and quality threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhysicalParameters {
    /// Requested codec (which for raw codecs also fixes the frame layout).
    pub codec: Codec,
    /// Minimum acceptable quality relative to the originally written video.
    /// `None` uses the system default (40 dB — "lossless" per the paper).
    pub quality_threshold: Option<PsnrDb>,
    /// Encoder quality (0–100) used if the result must be (re)compressed.
    /// `None` uses the system default.
    pub encoder_quality: Option<u8>,
}

impl PhysicalParameters {
    /// Requests the given codec with default thresholds.
    pub fn codec(codec: Codec) -> Self {
        Self { codec, quality_threshold: None, encoder_quality: None }
    }

    /// Sets the minimum acceptable quality.
    pub fn with_quality_threshold(mut self, threshold: PsnrDb) -> Self {
        self.quality_threshold = Some(threshold);
        self
    }

    /// Sets the encoder quality for compressed outputs.
    pub fn with_encoder_quality(mut self, quality: u8) -> Self {
        self.encoder_quality = Some(quality);
        self
    }
}

/// A `read(name, S, T, P)` operation.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadRequest {
    /// Logical video name.
    pub name: String,
    /// Temporal parameters.
    pub temporal: TemporalRange,
    /// Spatial parameters.
    pub spatial: SpatialParameters,
    /// Physical parameters.
    pub physical: PhysicalParameters,
    /// Whether VSS may admit the result into its cache of materialized views
    /// (the default). Disabling is useful for benchmarking baselines.
    pub cacheable: bool,
    /// Which planning algorithm answers the read (default: optimal).
    pub planner: PlannerKind,
}

impl ReadRequest {
    /// A read of `[start, end)` seconds in the given codec, source resolution
    /// and frame rate, cacheable, planned by the optimal planner.
    pub fn new(name: impl Into<String>, start: f64, end: f64, codec: Codec) -> Self {
        Self {
            name: name.into(),
            temporal: TemporalRange::new(start, end),
            spatial: SpatialParameters::source(),
            physical: PhysicalParameters::codec(codec),
            cacheable: true,
            planner: PlannerKind::default(),
        }
    }

    /// Sets the output resolution.
    pub fn resolution(mut self, resolution: Resolution) -> Self {
        self.spatial.resolution = Some(resolution);
        self
    }

    /// Sets the output resolution (alias of [`resolution`](Self::resolution)).
    pub fn at_resolution(self, resolution: Resolution) -> Self {
        self.resolution(resolution)
    }

    /// Sets the region of interest to crop the output to.
    pub fn crop(mut self, region: RegionOfInterest) -> Self {
        self.spatial.region = Some(region);
        self
    }

    /// Sets the region of interest (alias of [`crop`](Self::crop)).
    pub fn with_region(self, region: RegionOfInterest) -> Self {
        self.crop(region)
    }

    /// Sets the output frame rate.
    pub fn fps(mut self, fps: f64) -> Self {
        self.temporal.frame_rate = Some(fps);
        self
    }

    /// Sets the output frame rate (alias of [`fps`](Self::fps)).
    pub fn at_frame_rate(self, fps: f64) -> Self {
        self.fps(fps)
    }

    /// Sets the minimum acceptable output quality.
    pub fn quality_threshold(mut self, threshold: PsnrDb) -> Self {
        self.physical.quality_threshold = Some(threshold);
        self
    }

    /// Sets the encoder quality used when the result must be (re)compressed.
    pub fn encoder_quality(mut self, quality: u8) -> Self {
        self.physical.encoder_quality = Some(quality);
        self
    }

    /// Marks the read as non-cacheable.
    pub fn uncacheable(mut self) -> Self {
        self.cacheable = false;
        self
    }

    /// Selects the planning algorithm.
    pub fn planner(mut self, planner: PlannerKind) -> Self {
        self.planner = planner;
        self
    }
}

/// A `write(name, S, T, P, data)` operation. The frame data itself is passed
/// alongside the request.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteRequest {
    /// Logical video name.
    pub name: String,
    /// Codec to persist the written data in.
    pub codec: Codec,
    /// Encoder quality (0–100) for compressed writes; `None` = default.
    pub encoder_quality: Option<u8>,
    /// Start time in seconds of the written data within the logical video.
    pub start_time: f64,
}

impl WriteRequest {
    /// Writes starting at time zero in the given codec.
    pub fn new(name: impl Into<String>, codec: Codec) -> Self {
        Self { name: name.into(), codec, encoder_quality: None, start_time: 0.0 }
    }

    /// Sets the encoder quality.
    pub fn encoder_quality(mut self, quality: u8) -> Self {
        self.encoder_quality = Some(quality);
        self
    }

    /// Sets the encoder quality (alias of
    /// [`encoder_quality`](Self::encoder_quality)).
    pub fn with_encoder_quality(self, quality: u8) -> Self {
        self.encoder_quality(quality)
    }

    /// Sets the start time of the written data.
    pub fn starting_at(mut self, start_time: f64) -> Self {
        self.start_time = start_time;
        self
    }
}

/// The storage budget assigned to a logical video (paper Section 4): either a
/// multiple of the initially written physical video's size or a fixed byte
/// ceiling. The prototype default is 10× the original.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StorageBudget {
    /// Budget is `multiple ×` the size of the originally written video.
    MultipleOfOriginal(f64),
    /// Fixed ceiling in bytes.
    Bytes(u64),
    /// No limit (used by experiments that explicitly assume infinite budget).
    Unlimited,
}

impl Default for StorageBudget {
    fn default() -> Self {
        StorageBudget::MultipleOfOriginal(10.0)
    }
}

impl StorageBudget {
    /// Resolves the budget to bytes given the original video's size.
    pub fn resolve(&self, original_bytes: u64) -> Option<u64> {
        match self {
            StorageBudget::MultipleOfOriginal(multiple) => {
                Some((original_bytes as f64 * multiple).round() as u64)
            }
            StorageBudget::Bytes(bytes) => Some(*bytes),
            StorageBudget::Unlimited => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vss_frame::PixelFormat;

    #[test]
    fn temporal_range_builders() {
        let t = TemporalRange::new(10.0, 25.0).at_frame_rate(15.0);
        assert_eq!(t.duration(), 15.0);
        assert_eq!(t.frame_rate, Some(15.0));
        assert_eq!(TemporalRange::new(5.0, 3.0).duration(), 0.0);
    }

    #[test]
    fn read_request_builders_compose() {
        let roi = RegionOfInterest::new(0, 0, 100, 100).unwrap();
        let r = ReadRequest::new("traffic", 0.0, 60.0, Codec::H264)
            .at_resolution(Resolution::R1K)
            .with_region(roi)
            .at_frame_rate(15.0)
            .uncacheable();
        assert_eq!(r.name, "traffic");
        assert_eq!(r.spatial.resolution, Some(Resolution::R1K));
        assert_eq!(r.spatial.region, Some(roi));
        assert_eq!(r.temporal.frame_rate, Some(15.0));
        assert!(!r.cacheable);
        assert_eq!(r.planner, PlannerKind::Optimal);
    }

    #[test]
    fn read_request_short_builders_match_legacy_names() {
        let roi = RegionOfInterest::new(2, 2, 10, 10).unwrap();
        let short = ReadRequest::new("v", 0.0, 1.0, Codec::Hevc)
            .resolution(Resolution::new(64, 48))
            .crop(roi)
            .fps(10.0)
            .quality_threshold(PsnrDb(30.0))
            .encoder_quality(70)
            .planner(PlannerKind::Greedy);
        let legacy = ReadRequest::new("v", 0.0, 1.0, Codec::Hevc)
            .at_resolution(Resolution::new(64, 48))
            .with_region(roi)
            .at_frame_rate(10.0)
            .planner(PlannerKind::Greedy);
        assert_eq!(short.spatial, legacy.spatial);
        assert_eq!(short.temporal, legacy.temporal);
        assert_eq!(short.planner, PlannerKind::Greedy);
        assert_eq!(short.physical.quality_threshold, Some(PsnrDb(30.0)));
        assert_eq!(short.physical.encoder_quality, Some(70));
    }

    #[test]
    fn write_request_builders() {
        let w = WriteRequest::new("v", Codec::Raw(PixelFormat::Rgb8))
            .with_encoder_quality(70)
            .starting_at(12.0);
        assert_eq!(w.encoder_quality, Some(70));
        assert_eq!(w.start_time, 12.0);
    }

    #[test]
    fn storage_budget_resolution() {
        assert_eq!(StorageBudget::default().resolve(100), Some(1000));
        assert_eq!(StorageBudget::MultipleOfOriginal(2.5).resolve(100), Some(250));
        assert_eq!(StorageBudget::Bytes(42).resolve(1_000_000), Some(42));
        assert_eq!(StorageBudget::Unlimited.resolve(100), None);
    }

    #[test]
    fn physical_parameters_builders() {
        let p = PhysicalParameters::codec(Codec::Hevc)
            .with_quality_threshold(PsnrDb(30.0))
            .with_encoder_quality(60);
        assert_eq!(p.quality_threshold, Some(PsnrDb(30.0)));
        assert_eq!(p.encoder_quality, Some(60));
    }
}
