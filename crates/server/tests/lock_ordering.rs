//! Cross-shard lock-ordering test.
//!
//! Joint compression of a video pair is the one operation that must hold two
//! shard locks at once. The protocol (see `vss-server`'s crate docs) acquires
//! them in ascending shard index order regardless of argument order, so two
//! clients jointly compressing the same pair as `(a, b)` and `(b, a)`
//! concurrently must never deadlock — with naive argument-order locking this
//! test hangs. Both orders must also agree on the outcome.
//!
//! The joint path takes *shared* guards, but ordering is still load-bearing:
//! with a write-preferring rwlock, two unordered two-lock readers plus a
//! single-lock writer can cycle (reader 1 holds shard A and waits on shard B
//! behind a pending writer; the writer waits on reader 2's shard-B read
//! guard; reader 2 waits on shard A). The writer thread below keeps
//! exclusive lock traffic flowing on both shards throughout the run to make
//! exactly that interleaving reachable.

use crossbeam::channel::bounded;
use std::mem::discriminant;
use std::time::Duration;
use vss_codec::Codec;
use vss_core::{MergeFunction, VssConfig, WriteRequest};
use vss_frame::{pattern, FrameSequence, PixelFormat};
use vss_server::VssServer;

const ITERATIONS: usize = 6;
const WATCHDOG: Duration = Duration::from_secs(120);

fn temp_root(tag: &str) -> std::path::PathBuf {
    let root =
        std::env::temp_dir().join(format!("vss-server-lockorder-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn sequence(seed: u64) -> FrameSequence {
    let frames: Vec<_> =
        (0..6).map(|i| pattern::gradient(64, 48, PixelFormat::Rgb8, seed + i as u64)).collect();
    FrameSequence::new(frames, 30.0).unwrap()
}

/// Finds two video names routed to different shards (panics if 64 candidates
/// all collide, which the routing-spread unit test rules out).
fn names_on_distinct_shards(server: &VssServer) -> (String, String) {
    let first = "pair-0".to_string();
    for candidate in 1..64 {
        let name = format!("pair-{candidate}");
        if server.shard_of(&name) != server.shard_of(&first) {
            return (first, name);
        }
    }
    panic!("no pair of names on distinct shards among 64 candidates");
}

/// Finds two video names routed to the *same* shard.
fn names_on_same_shard(server: &VssServer) -> (String, String) {
    let first = "same-0".to_string();
    for candidate in 1..64 {
        let name = format!("same-{candidate}");
        if server.shard_of(&name) == server.shard_of(&first) {
            return (first, name);
        }
    }
    panic!("no pair of names on the same shard among 64 candidates");
}

#[test]
fn joint_compression_in_both_orders_never_deadlocks() {
    let root = temp_root("both-orders");
    let server = VssServer::open_sharded(VssConfig::new(&root), 4).unwrap();
    let (a, b) = names_on_distinct_shards(&server);
    let session = server.session();
    session.write(&WriteRequest::new(&a, Codec::H264), &sequence(0)).unwrap();
    session.write(&WriteRequest::new(&b, Codec::H264), &sequence(1)).unwrap();

    let (done_tx, done_rx) = bounded::<()>(2);
    let (stop_writer_tx, stop_writer_rx) = bounded::<()>(1);
    // Single-lock writer: keeps exclusive lock traffic flowing on both
    // shards while the two joint-compression orders race. Appends are capped
    // so the videos (which every joint iteration decodes in full) stay small.
    let writer = {
        let server = server.clone();
        let (a, b) = (a.clone(), b.clone());
        std::thread::spawn(move || {
            let session = server.session();
            let mut turn = 0usize;
            while stop_writer_rx.recv_timeout(Duration::from_millis(1)).is_err() {
                if turn < 40 {
                    let target = if turn.is_multiple_of(2) { &a } else { &b };
                    session.append(target, &sequence(10 + turn as u64)).unwrap();
                }
                turn += 1;
            }
        })
    };
    let mut handles = Vec::new();
    for (left, right) in [(a.clone(), b.clone()), (b.clone(), a.clone())] {
        let server = server.clone();
        let done = done_tx.clone();
        handles.push(std::thread::spawn(move || {
            let session = server.session();
            for _ in 0..ITERATIONS {
                // The store mutates under the writer, so the *outcome* may
                // legitimately vary between iterations; what must hold is
                // that every call completes (ordered acquisition, no cycle).
                session
                    .joint_compress(&left, &right, MergeFunction::Mean)
                    .expect("joint compression call failed");
            }
            done.send(()).unwrap();
        }));
    }
    drop(done_tx);

    // The deadlock check: both threads must finish within the watchdog.
    done_rx
        .recv_timeout(WATCHDOG)
        .expect("joint compression deadlocked across shards (order 1)");
    done_rx
        .recv_timeout(WATCHDOG)
        .expect("joint compression deadlocked across shards (order 2)");
    stop_writer_tx.send(()).unwrap();
    writer.join().expect("writer thread panicked");
    for handle in handles {
        handle.join().unwrap();
    }
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn same_shard_pairs_lock_once_and_self_pairs_are_rejected() {
    let root = temp_root("same-shard");
    let server = VssServer::open_sharded(VssConfig::new(&root), 4).unwrap();
    let (a, b) = names_on_same_shard(&server);
    let session = server.session();
    session.write(&WriteRequest::new(&a, Codec::H264), &sequence(0)).unwrap();
    session.write(&WriteRequest::new(&b, Codec::H264), &sequence(1)).unwrap();
    // Would deadlock on a double-acquire of the shard lock if the same-shard
    // case were not collapsed to a single acquisition.
    let forward = session.joint_compress(&a, &b, MergeFunction::Mean).unwrap();
    let backward = session.joint_compress(&b, &a, MergeFunction::Mean).unwrap();
    assert_eq!(discriminant(&forward), discriminant(&backward));
    assert!(session.joint_compress(&a, &a, MergeFunction::Mean).is_err());
    let _ = std::fs::remove_dir_all(root);
}
