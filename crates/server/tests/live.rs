//! Live-subscription integration tests at the session layer: tailing
//! byte-identity, late-joiner seam exactness, forced lag → catch-up →
//! re-seam, retention gaps and subscriber-drop cleanup.

use std::time::Duration;
use vss_codec::Codec;
use vss_core::{ReadRequest, VssConfig, WriteRequest};
use vss_frame::{pattern, FrameSequence, PixelFormat};
use vss_server::{ServerConfig, SubEvent, SubscribeFrom, VssServer};

fn temp_root(tag: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!(
        "vss-live-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn sequence(frames: usize, seed: u64) -> FrameSequence {
    let frames: Vec<_> = (0..frames)
        .map(|i| pattern::gradient(64, 48, PixelFormat::Yuv420, seed + i as u64))
        .collect();
    FrameSequence::new(frames, 30.0).unwrap()
}

fn open(tag: &str, config: ServerConfig) -> (VssServer, std::path::PathBuf) {
    let root = temp_root(tag);
    let server = VssServer::open_configured(VssConfig::new(&root), 2, config).unwrap();
    (server, root)
}

/// Drains `n` GOP events (panicking on gaps/end), returning their sequence
/// numbers and concatenated container bytes.
fn drain_gops(sub: &mut vss_server::Subscription, n: usize) -> (Vec<u64>, Vec<u8>) {
    let mut seqs = Vec::new();
    let mut bytes = Vec::new();
    while seqs.len() < n {
        match sub.next_timeout(Duration::from_secs(20)).unwrap() {
            Some(SubEvent::Gop(gop)) => {
                seqs.push(gop.seq);
                bytes.extend_from_slice(&gop.gop.to_bytes());
            }
            Some(other) => panic!("expected a GOP, got {other:?}"),
            None => panic!("timed out draining GOP {} of {n}", seqs.len()),
        }
    }
    (seqs, bytes)
}

/// Concatenated container bytes of a full same-codec streaming read — the
/// byte-identity reference every subscriber must match.
fn full_read_bytes(server: &VssServer, name: &str) -> Vec<u8> {
    let session = server.session();
    let (start, end) = session.with_engine(name, |e| e.video_time_range(name)).unwrap();
    let stream = session
        .read_stream(&ReadRequest::new(name, start, end, Codec::H264).uncacheable())
        .unwrap();
    let mut bytes = Vec::new();
    for chunk in stream {
        let chunk = chunk.unwrap();
        bytes.extend_from_slice(&chunk.encoded_gop.expect("passthrough read").to_bytes());
    }
    bytes
}

#[test]
fn tailing_subscription_is_byte_identical_to_a_full_read() {
    let (server, root) = open("tail", ServerConfig::default());
    let session = server.session();
    let mut sub = session.subscribe("cam", SubscribeFrom::Start);
    // The video does not exist yet when the subscription opens; the first
    // write creates it and the subscription picks it up from sequence 0.
    session.write(&WriteRequest::new("cam", Codec::H264), &sequence(30, 0)).unwrap();
    for batch in 1..4u64 {
        session.append("cam", &sequence(30, batch * 1000)).unwrap();
    }
    let (seqs, bytes) = drain_gops(&mut sub, 4);
    assert_eq!(seqs, vec![0, 1, 2, 3]);
    assert_eq!(bytes, full_read_bytes(&server, "cam"), "drained bytes must equal a full read");
    drop(sub);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn late_joiner_catches_up_then_seams_exactly() {
    let (server, root) = open("late", ServerConfig::default());
    let session = server.session();
    session.write(&WriteRequest::new("cam", Codec::H264), &sequence(90, 0)).unwrap();
    // Join late: three GOPs already persisted.
    let mut sub = session.subscribe("cam", SubscribeFrom::Start);
    let (backlog, _) = drain_gops(&mut sub, 3);
    assert_eq!(backlog, vec![0, 1, 2]);
    assert!(sub.catchup_rounds() >= 1, "the backlog must come from catch-up reads");
    // Idle at the head: the subscription seams onto the live queue.
    assert!(sub.next_timeout(Duration::from_millis(50)).unwrap().is_none());
    for batch in 0..3u64 {
        session.append("cam", &sequence(30, 5000 + batch * 1000)).unwrap();
    }
    let (tail, _) = drain_gops(&mut sub, 3);
    assert_eq!(tail, vec![3, 4, 5], "seam must neither duplicate nor skip a GOP");
    let (_, bytes) = {
        let mut replay = session.subscribe("cam", SubscribeFrom::Start);
        drain_gops(&mut replay, 6)
    };
    assert_eq!(bytes, full_read_bytes(&server, "cam"));
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn slow_subscriber_lags_catches_up_and_reseams() {
    // A two-GOP queue forces the lag policy as soon as the subscriber
    // sleeps through a burst.
    let (server, root) =
        open("lag", ServerConfig { live_queue_capacity: 2, ..ServerConfig::default() });
    let session = server.session();
    session.write(&WriteRequest::new("cam", Codec::H264), &sequence(30, 0)).unwrap();
    let mut sub = session.subscribe("cam", SubscribeFrom::Start);
    let (first, _) = drain_gops(&mut sub, 1);
    assert_eq!(first, vec![0]);
    assert!(sub.next_timeout(Duration::from_millis(50)).unwrap().is_none());
    // Burst far past the queue capacity while the subscriber is idle.
    for batch in 0..10u64 {
        session.append("cam", &sequence(30, 1000 + batch * 1000)).unwrap();
    }
    let (seqs, _) = drain_gops(&mut sub, 10);
    assert_eq!(seqs, (1..=10).collect::<Vec<u64>>(), "no GOP duplicated or skipped across the lag");
    assert!(sub.lag_transitions() >= 1, "the burst must have overflowed the live queue");
    // The writer was never stalled: everything it wrote is persisted.
    let mut replay = session.subscribe("cam", SubscribeFrom::Start);
    let (_, bytes) = drain_gops(&mut replay, 11);
    assert_eq!(bytes, full_read_bytes(&server, "cam"));
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn retention_trim_surfaces_as_a_gap_event() {
    let (server, root) = open("retention", ServerConfig::default());
    let session = server.session();
    // Six one-second GOPs, then retain only the newest ~2.5 seconds.
    session.write(&WriteRequest::new("cam", Codec::H264), &sequence(180, 0)).unwrap();
    server.set_retention("cam", Some(Duration::from_millis(2500)));
    assert_eq!(server.retention_window("cam"), Some(Duration::from_millis(2500)));
    let removed = server.apply_retention().unwrap();
    assert!(removed >= 3, "expected at least three GOPs trimmed, got {removed}");
    let mut sub = session.subscribe("cam", SubscribeFrom::Start);
    match sub.next_timeout(Duration::from_secs(20)).unwrap() {
        Some(SubEvent::Gap { from_seq, to_seq }) => {
            assert_eq!(from_seq, 0);
            assert_eq!(to_seq, removed as u64);
        }
        other => panic!("expected a gap over the trimmed prefix, got {other:?}"),
    }
    let (seqs, bytes) = drain_gops(&mut sub, 6 - removed);
    assert_eq!(seqs, (removed as u64..6).collect::<Vec<u64>>());
    assert_eq!(bytes, full_read_bytes(&server, "cam"), "retained tail must match a full read");
    // Reads of the trimmed range fail loudly rather than returning silence.
    assert!(matches!(
        session.read(&ReadRequest::new("cam", 0.0, 1.0, Codec::H264).uncacheable()),
        Err(vss_core::VssError::OutOfRange { .. })
    ));
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn maintenance_workers_apply_retention_in_the_background() {
    let (server, root) = open("retention-bg", ServerConfig::default());
    let session = server.session();
    session.write(&WriteRequest::new("cam", Codec::H264), &sequence(180, 0)).unwrap();
    let before = session.bytes_used("cam").unwrap();
    server.set_retention("cam", Some(Duration::from_millis(1500)));
    {
        let _scheduler = server.start_maintenance(Duration::from_millis(5));
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while session.bytes_used("cam").unwrap() >= before
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    assert!(
        session.bytes_used("cam").unwrap() < before,
        "background retention should trim aged GOPs"
    );
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn deleting_the_video_ends_subscriptions_and_drops_leak_nothing() {
    let (server, root) = open("cleanup", ServerConfig::default());
    let session = server.session();
    session.write(&WriteRequest::new("cam", Codec::H264), &sequence(30, 0)).unwrap();
    let mut sub = session.subscribe("cam", SubscribeFrom::Start);
    let other = session.subscribe("cam", SubscribeFrom::Live);
    assert_eq!(server.hub().channel_count(), 1);
    assert_eq!(server.hub().subscriber_count(), 2);
    drop(other);
    assert_eq!(server.hub().subscriber_count(), 1, "dropping one subscriber leaves the other");
    let (seqs, _) = drain_gops(&mut sub, 1);
    assert_eq!(seqs, vec![0]);
    session.delete("cam").unwrap();
    assert!(matches!(sub.next_timeout(Duration::from_secs(20)).unwrap(), Some(SubEvent::End)));
    drop(sub);
    assert_eq!(server.hub().channel_count(), 0, "no channel survives its last subscriber");
    assert_eq!(server.hub().subscriber_count(), 0);
    // Writing again after everyone unsubscribed must not stall or publish
    // into stale state.
    session.write(&WriteRequest::new("cam", Codec::H264), &sequence(30, 9000)).unwrap();
    assert_eq!(server.hub().channel_count(), 0);
    let _ = std::fs::remove_dir_all(root);
}
