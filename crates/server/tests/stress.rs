//! Concurrency stress test for the sharded server.
//!
//! `THREADS` client threads issue a mix of reads, streaming reads (drained
//! and early-dropped), writes/appends, streaming sink ingest and
//! create/delete churn across many logical videos while the per-shard
//! maintenance scheduler runs underneath — with **readahead enabled**, so
//! every stream decodes on prefetch workers and every sink encodes on an
//! overlapped worker while shard locks churn. The test asserts:
//!
//! * **no deadlock** — every thread finishes within a generous watchdog
//!   timeout (a lock-ordering bug would hang here, not fail an assertion);
//! * **byte-identical reads** — every verification read's frames (and, for
//!   compressed requests, encoded GOP bytes) exactly equal the same read
//!   executed on a monolithic sequential (`parallelism = 1`) engine holding
//!   the same content.
//!
//! Verification reads are non-cacheable and target videos that receive no
//! cacheable traffic, so their plans are independent of interleaving; the
//! cache-churn videos exercise admission/eviction concurrently without
//! affecting the comparison.

use crossbeam::channel::bounded;
use std::time::Duration;
use vss_codec::Codec;
use vss_core::{ReadRequest, Vss, VssConfig, WriteRequest};
use vss_frame::{pattern, FrameSequence, PixelFormat};
use vss_server::VssServer;

const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 12;
/// Streams prefetch-decode and sinks encode up to this many GOPs ahead.
const READAHEAD: usize = 2;
const VERIFY_VIDEOS: usize = 3;
const CHURN_VIDEOS: usize = 2;
const WATCHDOG: Duration = Duration::from_secs(120);

fn temp_root(tag: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir()
        .join(format!("vss-server-stress-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn sequence(seed: u64, frames: usize) -> FrameSequence {
    let frames: Vec<_> = (0..frames)
        .map(|i| pattern::gradient(48, 36, PixelFormat::Yuv420, seed * 1000 + i as u64))
        .collect();
    FrameSequence::new(frames, 30.0).unwrap()
}

#[test]
fn mixed_concurrent_workload_is_deadlock_free_and_byte_identical() {
    let server_root = temp_root("server");
    let reference_root = temp_root("reference");
    let server =
        VssServer::open_sharded(VssConfig::new(&server_root).with_readahead(READAHEAD), 4).unwrap();
    // The sequential ground truth: the monolithic engine, one worker thread,
    // no readahead — the configuration every pipelined result must match.
    let reference = Vss::open(VssConfig::new(&reference_root).with_parallelism(1)).unwrap();

    for video in 0..VERIFY_VIDEOS {
        let name = format!("verify-{video}");
        let frames = sequence(video as u64, 60);
        server.session().write(&WriteRequest::new(&name, Codec::H264), &frames).unwrap();
        reference.write(&WriteRequest::new(&name, Codec::H264), &frames).unwrap();
    }
    for video in 0..CHURN_VIDEOS {
        let name = format!("churn-{video}");
        server
            .session()
            .write(&WriteRequest::new(&name, Codec::H264), &sequence(100 + video as u64, 60))
            .unwrap();
    }

    // Maintenance workers sweep shards throughout the stress run.
    let _scheduler = server.start_maintenance(Duration::from_millis(2));

    let (done_tx, done_rx) = bounded::<usize>(THREADS);
    let mut handles = Vec::new();
    for thread in 0..THREADS {
        let server = server.clone();
        let reference = reference.clone();
        let done = done_tx.clone();
        handles.push(std::thread::spawn(move || {
            let session = server.session();
            for op in 0..OPS_PER_THREAD {
                match (thread + op) % 6 {
                    // Verification read: non-cacheable, compared byte-for-byte
                    // against the sequential engine.
                    0 => {
                        let video = format!("verify-{}", (thread + op) % VERIFY_VIDEOS);
                        let start = f64::from(((thread * 7 + op) % 3) as u32) * 0.5;
                        let codec = if op % 2 == 0 {
                            Codec::Raw(PixelFormat::Yuv420)
                        } else {
                            Codec::H264
                        };
                        let request =
                            ReadRequest::new(&video, start, start + 0.5, codec).uncacheable();
                        let concurrent = session.read(&request).unwrap();
                        let sequential = reference.read(&request).unwrap();
                        assert_eq!(
                            concurrent.frames.frames(),
                            sequential.frames.frames(),
                            "decoded frames diverged from the sequential engine \
                             (thread {thread}, op {op}, {video})"
                        );
                        let concurrent_gops: Option<Vec<Vec<u8>>> = concurrent
                            .encoded
                            .as_ref()
                            .map(|gops| gops.iter().map(|g| g.to_bytes()).collect());
                        let sequential_gops: Option<Vec<Vec<u8>>> = sequential
                            .encoded
                            .as_ref()
                            .map(|gops| gops.iter().map(|g| g.to_bytes()).collect());
                        assert_eq!(
                            concurrent_gops, sequential_gops,
                            "encoded GOPs diverged from the sequential engine"
                        );
                    }
                    // Streaming verification read: drained chunk-by-chunk on
                    // readahead workers, still byte-identical to the
                    // sequential engine's materialized read.
                    1 => {
                        let video = format!("verify-{}", (thread + op) % VERIFY_VIDEOS);
                        let start = f64::from(((thread * 5 + op) % 3) as u32) * 0.5;
                        let request =
                            ReadRequest::new(&video, start, start + 1.0, Codec::Hevc)
                                .uncacheable();
                        let streamed =
                            session.read_stream(&request).unwrap().drain().unwrap();
                        let sequential = reference.read(&request).unwrap();
                        assert_eq!(
                            streamed.frames.frames(),
                            sequential.frames.frames(),
                            "streamed frames diverged from the sequential engine \
                             (thread {thread}, op {op}, {video})"
                        );
                        let streamed_gops: Vec<Vec<u8>> = streamed
                            .encoded
                            .iter()
                            .flatten()
                            .map(|g| g.to_bytes())
                            .collect();
                        let sequential_gops: Vec<Vec<u8>> = sequential
                            .encoded
                            .iter()
                            .flatten()
                            .map(|g| g.to_bytes())
                            .collect();
                        assert_eq!(
                            streamed_gops, sequential_gops,
                            "streamed GOPs diverged from the sequential engine"
                        );
                    }
                    // Cache churn: cacheable transcoding reads that admit,
                    // evict and deferred-compress fragments concurrently.
                    2 => {
                        let video = format!("churn-{}", (thread + op) % CHURN_VIDEOS);
                        let start = f64::from(((thread + op * 3) % 2) as u32) * 0.5;
                        session
                            .read(&ReadRequest::new(&video, start, start + 1.0, Codec::Hevc))
                            .unwrap();
                    }
                    // Streaming ingest into a thread-private video: the first
                    // write goes through an overlapped WriteSink (encode
                    // worker in flight while shard locks churn), later ones
                    // append.
                    3 => {
                        let video = format!("private-{thread}");
                        if session.bytes_used(&video).is_err() {
                            let frames = sequence(200 + thread as u64, 30);
                            let mut sink = session
                                .write_sink(&WriteRequest::new(&video, Codec::H264), 30.0)
                                .unwrap();
                            for frame in frames.frames() {
                                sink.push_frame(frame.clone()).unwrap();
                            }
                            sink.finish().unwrap();
                        } else {
                            session.append(&video, &sequence(300 + thread as u64, 30)).unwrap();
                        }
                    }
                    // Early drop: abandon a stream with readahead workers in
                    // flight — must not wedge the shard or leak threads.
                    4 => {
                        let video = format!("verify-{}", (thread + op) % VERIFY_VIDEOS);
                        let mut stream = session
                            .read_stream(
                                &ReadRequest::new(&video, 0.0, 2.0, Codec::Hevc).uncacheable(),
                            )
                            .unwrap();
                        let _ = stream.next();
                        drop(stream);
                    }
                    // Catalog churn: create + delete a transient video.
                    _ => {
                        let video = format!("tmp-{thread}-{op}");
                        session.create(&video, None).unwrap();
                        session.delete(&video).unwrap();
                    }
                }
            }
            done.send(thread).unwrap();
        }));
    }
    drop(done_tx);

    // Watchdog: a deadlock shows up as a timeout here rather than a hang.
    for _ in 0..THREADS {
        done_rx
            .recv_timeout(WATCHDOG)
            .expect("a client thread failed to finish: deadlock or panic in the server");
    }
    for handle in handles {
        handle.join().expect("client thread panicked");
    }

    // Every created video survived; transient ones are gone.
    let names = server.session().video_names();
    assert_eq!(names.len(), VERIFY_VIDEOS + CHURN_VIDEOS + THREADS);
    assert!(names.iter().all(|n| !n.starts_with("tmp-")));
    let stats = server.stats();
    assert!(stats.total_read_ops() > 0);
    assert!(stats.total_write_ops() > 0);
    assert!(
        stats.shards.iter().filter(|s| s.videos > 0).count() > 1,
        "the workload should span multiple shards; got {stats:?}"
    );

    let _ = std::fs::remove_dir_all(server_root);
    let _ = std::fs::remove_dir_all(reference_root);
}
