//! Admission control and graceful shutdown of the sharded server.
//!
//! Extends the PR 4 early-drop guarantees to server shutdown: a shutdown
//! that overlaps an in-flight `write_sink` must wait for the sink (even when
//! the session that opened it was dropped first), refuse new sessions with
//! `VssError::Overloaded`, and — when the sink is aborted instead of
//! finished — leave **no partial GOP on disk**.

use crossbeam::channel::bounded;
use std::time::Duration;
use vss_codec::Codec;
use vss_core::{ReadRequest, VssConfig, VssError, WriteRequest};
use vss_frame::{pattern, FrameSequence, PixelFormat};
use vss_server::{ServerConfig, VssServer};

fn temp_root(tag: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!(
        "vss-server-shutdown-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn sequence(frames: usize, seed: u64) -> FrameSequence {
    let frames: Vec<_> = (0..frames)
        .map(|i| pattern::gradient(48, 36, PixelFormat::Yuv420, seed + i as u64))
        .collect();
    FrameSequence::new(frames, 30.0).unwrap()
}

#[test]
fn admission_limit_sheds_and_queues_sessions() {
    let root = temp_root("admission");
    let server = VssServer::open_configured(
        VssConfig::new(&root),
        2,
        ServerConfig { max_concurrent_sessions: 2, ..ServerConfig::default() },
    )
    .unwrap();
    assert_eq!(server.server_config().max_concurrent_sessions, 2);

    let first = server.try_session().unwrap();
    let second = server.try_session().unwrap();
    assert_eq!(server.active_sessions(), 2);

    // Third session: shed immediately (zero admission queue).
    assert!(matches!(server.try_session(), Err(VssError::Overloaded(_))));
    assert_eq!(server.rejected_sessions(), 1);

    // Dropping a session frees its slot; the trusted in-process path always
    // admits but is still counted.
    drop(second);
    let third = server.try_session().unwrap();
    let trusted = server.session();
    assert_eq!(server.active_sessions(), 3);
    assert!(matches!(server.try_session(), Err(VssError::Overloaded(_))));
    drop((first, third, trusted));
    assert_eq!(server.active_sessions(), 0);
    assert!(server.try_session().is_ok());
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn admission_queue_window_admits_after_a_release() {
    let root = temp_root("queue");
    let server = VssServer::open_configured(
        VssConfig::new(&root),
        2,
        ServerConfig {
            max_concurrent_sessions: 1,
            admission_queue: Duration::from_secs(10),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let holder = server.try_session().unwrap();
    let (admitted_tx, admitted_rx) = bounded::<bool>(1);
    let waiter = {
        let server = server.clone();
        std::thread::spawn(move || {
            admitted_tx.send(server.try_session().is_ok()).unwrap();
        })
    };
    std::thread::sleep(Duration::from_millis(50));
    drop(holder); // frees the only slot; the queued waiter must admit
    assert!(admitted_rx.recv_timeout(Duration::from_secs(10)).unwrap());
    waiter.join().unwrap();
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn in_flight_byte_gate_sheds_new_sessions() {
    let root = temp_root("bytes");
    let server = VssServer::open_configured(
        VssConfig::new(&root),
        2,
        ServerConfig { max_in_flight_bytes: 1024, ..ServerConfig::default() },
    )
    .unwrap();
    let guard = server.track_in_flight(4096);
    assert_eq!(server.in_flight_bytes(), 4096);
    assert!(matches!(server.try_session(), Err(VssError::Overloaded(_))));
    drop(guard);
    assert_eq!(server.in_flight_bytes(), 0);
    assert!(server.try_session().is_ok());
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn shutdown_waits_for_in_flight_sinks_and_leaves_no_partial_gop() {
    let root = temp_root("drain");
    let server =
        VssServer::open_sharded(VssConfig::new(&root).with_readahead(2), 2).unwrap();
    let scheduler = server.start_maintenance(Duration::from_millis(5));
    let gop_size = 30usize;

    // A client opens a sink, pushes 2 full GOPs + a partial, *drops its
    // session*, then waits for a signal before finishing the ingest — the
    // sink alone must keep the shutdown waiting.
    let (ready_tx, ready_rx) = bounded::<()>(1);
    let (release_tx, release_rx) = bounded::<()>(1);
    let writer = {
        let server = server.clone();
        std::thread::spawn(move || {
            let session = server.try_session().unwrap();
            let mut sink =
                session.write_sink(&WriteRequest::new("cam", Codec::H264), 30.0).unwrap();
            drop(session); // the sink holds its own activity permit
            for frame in sequence(2 * 30 + 10, 7).frames() {
                sink.push_frame(frame.clone()).unwrap();
            }
            ready_tx.send(()).unwrap();
            release_rx.recv().unwrap();
            sink.finish().unwrap()
        })
    };
    ready_rx.recv().unwrap();

    // Shutdown begins: new sessions are refused while the sink is live.
    server.begin_shutdown();
    assert!(server.is_shutting_down());
    assert!(matches!(server.try_session(), Err(VssError::Overloaded(_))));
    assert!(
        !server.shutdown(Duration::from_millis(100)),
        "shutdown must keep waiting while an incremental write is in flight"
    );

    // Let the writer finish: the drain completes and the full clip (2 GOPs +
    // the final partial flush) is on disk.
    release_tx.send(()).unwrap();
    let report = writer.join().unwrap();
    assert_eq!(report.frames_written, 2 * gop_size + 10);
    assert!(server.shutdown(Duration::from_secs(30)), "drained after the sink finished");

    drop(scheduler); // joins the per-shard maintenance workers
    let session = server.session(); // trusted escape hatch still works
    let (start, end) = session.metadata("cam").unwrap().time_range.unwrap();
    let full = session
        .read(&ReadRequest::new("cam", start, end, Codec::Raw(PixelFormat::Yuv420)).uncacheable())
        .unwrap();
    assert_eq!(full.frames.len(), 2 * gop_size + 10);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn shutdown_overlapping_an_aborted_sink_leaves_only_full_gops() {
    let root = temp_root("abort");
    let server =
        VssServer::open_sharded(VssConfig::new(&root).with_readahead(1), 2).unwrap();
    let gop_size = 30usize;

    // Push 3 full GOPs plus a partial, then *abort* (drop) the sink while a
    // shutdown is pending in another thread.
    let (pushed_tx, pushed_rx) = bounded::<()>(1);
    let (abort_tx, abort_rx) = bounded::<()>(1);
    let writer = {
        let server = server.clone();
        std::thread::spawn(move || {
            let session = server.try_session().unwrap();
            let mut sink =
                session.write_sink(&WriteRequest::new("aborted", Codec::H264), 30.0).unwrap();
            for frame in sequence(3 * 30 + 12, 11).frames() {
                sink.push_frame(frame.clone()).unwrap();
            }
            pushed_tx.send(()).unwrap();
            abort_rx.recv().unwrap();
            drop(sink); // abort mid-clip: in-flight GOPs are discarded
        })
    };
    pushed_rx.recv().unwrap();
    let shutdown = {
        let server = server.clone();
        std::thread::spawn(move || server.shutdown(Duration::from_secs(30)))
    };
    std::thread::sleep(Duration::from_millis(20));
    abort_tx.send(()).unwrap();
    writer.join().unwrap();
    assert!(shutdown.join().unwrap(), "shutdown drains once the aborted sink is dropped");

    // Whatever prefix was persisted is whole GOPs only.
    let session = server.session();
    if let Ok(metadata) = session.metadata("aborted") {
        let (start, end) = metadata.time_range.unwrap();
        let persisted = session
            .read(
                &ReadRequest::new("aborted", start, end, Codec::Raw(PixelFormat::Yuv420))
                    .uncacheable(),
            )
            .unwrap();
        assert_eq!(
            persisted.frames.len() % gop_size,
            0,
            "shutdown overlapping an aborted sink left a partial GOP"
        );
        assert!(persisted.frames.len() <= 3 * gop_size);
    }
    let _ = std::fs::remove_dir_all(root);
}
