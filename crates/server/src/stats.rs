//! Per-shard operation statistics.
//!
//! Every shard keeps a set of monotone atomic counters that its lock wrappers
//! and operation wrappers bump as requests flow through. Counters are plain
//! atomics read without any lock; snapshotting additionally takes each
//! shard's read lock briefly (for the live video count) through a *quiet*
//! acquisition that records no lock-wait — observers never show up in the
//! contention metrics they report.
//!
//! Lock-wait time is kept as a full [`vss_telemetry::Histogram`] per shard
//! (not just a running total), so a snapshot exposes the wait *distribution*
//! — p50/p90/p99 — alongside the summed total the scaling experiments diff.
//!
//! Every recording is double-written into the process-global labeled series
//! `server.shard.*{shard=N}`, so `vss_telemetry::snapshot()`, the admin
//! plane and `vss-top` can answer *which shard* without holding any server
//! handle. The owned counters stay exact per server; the labeled mirrors
//! merge all servers in the process (one server per process in production).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use vss_core::{ReadStats, WriteReport};
use vss_telemetry::{Counter, Histogram, HistogramSummary};

/// Process-global labeled mirrors of one shard's counters: the
/// `server.shard.*{shard=N}` series that `snapshot()` / the admin plane /
/// `vss-top` read. The owned atomics below remain the source of truth for
/// [`ShardStatsSnapshot`] (they are exact per *server*, while the global
/// series merge every server in the process), so both views coexist.
#[derive(Debug)]
struct LabeledShard {
    lock_wait: &'static Histogram,
    read_ops: &'static Counter,
    cache_hit_reads: &'static Counter,
    write_ops: &'static Counter,
    bytes_read: &'static Counter,
    bytes_written: &'static Counter,
}

impl LabeledShard {
    fn new(shard: usize) -> Self {
        let index = shard.to_string();
        let labels: &[(&str, &str)] = &[("shard", index.as_str())];
        Self {
            lock_wait: vss_telemetry::histogram_with("server.shard.lock_wait_ns", labels),
            read_ops: vss_telemetry::counter_with("server.shard.read_ops", labels),
            cache_hit_reads: vss_telemetry::counter_with("server.shard.cache_hit_reads", labels),
            write_ops: vss_telemetry::counter_with("server.shard.write_ops", labels),
            bytes_read: vss_telemetry::counter_with("server.shard.bytes_read", labels),
            bytes_written: vss_telemetry::counter_with("server.shard.bytes_written", labels),
        }
    }
}

/// Monotone counters for one shard. All methods take `&self`.
#[derive(Debug)]
pub(crate) struct ShardStats {
    /// Distribution of per-acquisition waits for this shard's engine lock,
    /// in nanoseconds (both shared and exclusive acquisitions). Owned by the
    /// shard — never registered globally — so snapshotting one server can
    /// never mix another store's contention into these numbers.
    lock_wait: Histogram,
    /// Completed read operations.
    read_ops: AtomicU64,
    /// Reads whose plan used at least one cached (non-original) fragment.
    cache_hit_reads: AtomicU64,
    /// Completed write/append operations.
    write_ops: AtomicU64,
    /// Bytes read from disk by reads.
    bytes_read: AtomicU64,
    /// Bytes written to disk by writes/appends.
    bytes_written: AtomicU64,
    /// `server.shard.*{shard=N}` global mirrors (see [`LabeledShard`]).
    labeled: LabeledShard,
}

impl ShardStats {
    pub(crate) fn new(shard: usize) -> Self {
        Self {
            lock_wait: Histogram::new(),
            read_ops: AtomicU64::new(0),
            cache_hit_reads: AtomicU64::new(0),
            write_ops: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            labeled: LabeledShard::new(shard),
        }
    }

    pub(crate) fn record_lock_wait(&self, waited: Duration) {
        self.lock_wait.record_duration(waited);
        self.labeled.lock_wait.record_duration(waited);
    }

    pub(crate) fn record_read(&self, stats: &ReadStats) {
        self.read_ops.fetch_add(1, Ordering::Relaxed);
        self.labeled.read_ops.incr();
        self.bytes_read.fetch_add(stats.bytes_read, Ordering::Relaxed);
        self.labeled.bytes_read.add(stats.bytes_read);
        if stats.cached_fragments_used > 0 {
            self.cache_hit_reads.fetch_add(1, Ordering::Relaxed);
            self.labeled.cache_hit_reads.incr();
        }
    }

    /// Accounts a streaming read at open time. The plan (and therefore the
    /// cache-hit signal) is known when the snapshot is taken; the bytes flow
    /// lock-free afterwards and are not attributed back to the shard.
    pub(crate) fn record_stream_open(&self, stats: &ReadStats) {
        self.read_ops.fetch_add(1, Ordering::Relaxed);
        self.labeled.read_ops.incr();
        if stats.cached_fragments_used > 0 {
            self.cache_hit_reads.fetch_add(1, Ordering::Relaxed);
            self.labeled.cache_hit_reads.incr();
        }
    }

    pub(crate) fn record_write(&self, report: &WriteReport) {
        self.write_ops.fetch_add(1, Ordering::Relaxed);
        self.labeled.write_ops.incr();
        self.bytes_written.fetch_add(report.bytes_written, Ordering::Relaxed);
        self.labeled.bytes_written.add(report.bytes_written);
    }

    pub(crate) fn snapshot(&self, shard: usize, videos: usize) -> ShardStatsSnapshot {
        let lock_wait = self.lock_wait.summary();
        ShardStatsSnapshot {
            shard,
            videos,
            // The histogram's exact sum preserves the historical total-wait
            // metric (windowed diffs in the scaling experiments rely on it).
            lock_wait: Duration::from_nanos(lock_wait.sum),
            lock_wait_histogram: lock_wait,
            read_ops: self.read_ops.load(Ordering::Relaxed),
            cache_hit_reads: self.cache_hit_reads.load(Ordering::Relaxed),
            write_ops: self.write_ops.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one shard's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStatsSnapshot {
    /// Shard index.
    pub shard: usize,
    /// Logical videos currently owned by the shard.
    pub videos: usize,
    /// Total time clients spent waiting for this shard's lock.
    pub lock_wait: Duration,
    /// Per-acquisition lock-wait distribution in nanoseconds: count, exact
    /// sum/max, and p50/p90/p99 upper-bound estimates.
    pub lock_wait_histogram: HistogramSummary,
    /// Completed read operations.
    pub read_ops: u64,
    /// Reads whose plan used at least one cached (non-original) fragment.
    pub cache_hit_reads: u64,
    /// Completed write/append operations.
    pub write_ops: u64,
    /// Bytes read from disk.
    pub bytes_read: u64,
    /// Bytes written to disk.
    pub bytes_written: u64,
}

impl ShardStatsSnapshot {
    /// Fraction of reads served (at least partly) from cached fragments.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.read_ops == 0 {
            0.0
        } else {
            self.cache_hit_reads as f64 / self.read_ops as f64
        }
    }
}

/// Statistics for every shard of a server, plus whole-server aggregates.
#[derive(Debug, Clone)]
pub struct ServerStats {
    /// One snapshot per shard, in shard order.
    pub shards: Vec<ShardStatsSnapshot>,
}

impl ServerStats {
    /// Total reads across all shards.
    pub fn total_read_ops(&self) -> u64 {
        self.shards.iter().map(|s| s.read_ops).sum()
    }

    /// Total writes/appends across all shards.
    pub fn total_write_ops(&self) -> u64 {
        self.shards.iter().map(|s| s.write_ops).sum()
    }

    /// Total cache-hit reads across all shards (reads whose plan used at
    /// least one cached fragment). Useful for windowed hit rates: diff two
    /// snapshots' totals.
    pub fn total_cache_hit_reads(&self) -> u64 {
        self.shards.iter().map(|s| s.cache_hit_reads).sum()
    }

    /// Total bytes read across all shards.
    pub fn total_bytes_read(&self) -> u64 {
        self.shards.iter().map(|s| s.bytes_read).sum()
    }

    /// Total bytes written across all shards.
    pub fn total_bytes_written(&self) -> u64 {
        self.shards.iter().map(|s| s.bytes_written).sum()
    }

    /// Summed lock-wait time across all shards.
    pub fn total_lock_wait(&self) -> Duration {
        self.shards.iter().map(|s| s.lock_wait).sum()
    }

    /// Worst per-shard p99 per-acquisition lock wait (upper-bound estimate).
    pub fn lock_wait_p99(&self) -> Duration {
        Duration::from_nanos(
            self.shards.iter().map(|s| s.lock_wait_histogram.p99).max().unwrap_or(0),
        )
    }

    /// Whole-server cache hit rate.
    pub fn cache_hit_rate(&self) -> f64 {
        let reads = self.total_read_ops();
        if reads == 0 {
            0.0
        } else {
            self.shards.iter().map(|s| s.cache_hit_reads).sum::<u64>() as f64 / reads as f64
        }
    }
}
