//! # vss-server
//!
//! The multi-client service layer of the VSS reproduction: a **sharded
//! concurrent engine** plus a cheap-to-clone, `Send + Sync` server handle
//! with per-client sessions — the subsystem behind the paper's Figure 21
//! experiment (many concurrent application clients sharing one storage
//! manager).
//!
//! The original [`vss_core::Vss`] handle wraps the whole engine in a single
//! mutex, so clients operating on *unrelated* videos serialize on one lock.
//! [`VssServer`] instead owns a [`ShardedEngine`]: logical videos are
//! assigned to one of `N` shards by a stable hash of their name, and each
//! shard keeps its slice of the catalog, its GOP cache/recency state and its
//! deferred-compression queue behind its own reader-writer lock:
//!
//! * clients on videos in **different shards** proceed fully in parallel;
//! * **non-cacheable reads** on the same shard share its read lock (the
//!   engine's recency clocks are atomic, so even read-only traffic needs no
//!   exclusive access);
//! * writes, cacheable reads (which may admit a new materialized view) and
//!   maintenance take the owning shard's write lock only.
//!
//! Sharding never changes results: for any shard count, every operation's
//! output is byte-identical to the monolithic sequential engine, because a
//! logical video's entire state lives in exactly one shard and the per-video
//! code paths are the same ones `Vss` uses.
//!
//! # Lock ordering
//!
//! The protocol lives with [`ShardedEngine`] (see its module docs): ordinary
//! operations hold exactly one shard lock; the rare cross-shard operations
//! (joint compression of a camera pair) acquire locks in ascending shard
//! index order; whole-server aggregation (names, statistics, maintenance
//! sweeps) visits one shard at a time. Deadlock-freedom is exercised by the
//! `lock_ordering` integration test, which runs joint compression over the
//! same pair in both argument orders concurrently.
//!
//! # Background maintenance
//!
//! [`VssServer::start_maintenance`] spawns one worker per shard. Each worker
//! periodically tries its shard's lock without blocking and runs deferred
//! compression / compaction only when the shard is otherwise idle — shards
//! are swept independently instead of stop-the-world.
//!
//! # Sessions, admission control and shutdown
//!
//! [`VssServer::session`] hands out lightweight [`Session`] handles (one per
//! client thread, or per logical request stream). Sessions borrow nothing:
//! they are owned values over an `Arc`'d server and implement every
//! read/write/create operation with `&self`.
//!
//! Untrusted entry points (the `vss-net` TCP front-end) admit sessions
//! through [`VssServer::try_session`] instead, which enforces the
//! [`ServerConfig`] limits — maximum concurrent sessions and maximum bytes
//! in flight through streaming transfers — queueing up to
//! [`ServerConfig::admission_queue`] before shedding the session with
//! [`VssError::Overloaded`]. One admitted session serves one *client*: on
//! the multiplexed protocol (v3) all of a connection's concurrent streams
//! share its single session (the `Session` is `&self` throughout, so the
//! per-stream workers operate on one `Arc`'d handle), and a client counts
//! against `max_concurrent_sessions` exactly once however many streams it
//! runs. [`VssServer::shutdown`] drains the server
//! gracefully: new sessions are refused while existing sessions *and
//! in-flight incremental writes* run to completion, so a shutdown never cuts
//! a [`Session::write_sink`] off mid-GOP.
//!
//! ```no_run
//! use vss_core::{ReadRequest, VssConfig, WriteRequest};
//! use vss_server::VssServer;
//! # fn frames() -> vss_frame::FrameSequence { unimplemented!() }
//!
//! let server = VssServer::open(VssConfig::new("/tmp/store")).unwrap();
//! let writer = server.session();
//! writer.write(&WriteRequest::new("cam-3", vss_codec::Codec::H264), &frames()).unwrap();
//! let reader = server.session();
//! std::thread::spawn(move || {
//!     reader.read(&ReadRequest::new("cam-3", 0.0, 1.0, vss_codec::Codec::H264)).unwrap();
//! });
//! ```

#![warn(missing_docs)]

mod shard;
mod stats;

pub use shard::{ShardedEngine, DEFAULT_SHARD_COUNT};
pub use stats::{ServerStats, ShardStatsSnapshot};
pub use vss_live::{LiveGop, LiveHub, SubEvent, SubscribeFrom, Subscription};

use crossbeam::channel::{bounded, RecvTimeoutError, Sender};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use vss_core::{
    Engine, GopWriteBackend, IncrementalWrite, JointOutcome, MergeFunction, PlannerKind,
    ReadRequest, ReadResult, ReadStream, StorageBudget, VideoMetadata, VideoStorage, VssConfig,
    VssError, WriteRequest, WriteReport, WriteSink,
};
use vss_frame::FrameSequence;
use vss_live::CatchupSource;

/// Cached `&'static` handles into the process-global telemetry registry —
/// looked up once, recorded through plain atomics on the hot paths.
mod metrics {
    use std::sync::OnceLock;
    use vss_telemetry::{Counter, Gauge};

    /// `server.admission.active`: live sessions + in-flight incremental
    /// writes (everything holding an activity permit).
    pub(crate) fn active() -> &'static Gauge {
        static G: OnceLock<&'static Gauge> = OnceLock::new();
        G.get_or_init(|| vss_telemetry::gauge("server.admission.active"))
    }

    /// `server.admission.queue_depth`: callers currently queued in
    /// `try_session` waiting for a slot.
    pub(crate) fn queue_depth() -> &'static Gauge {
        static G: OnceLock<&'static Gauge> = OnceLock::new();
        G.get_or_init(|| vss_telemetry::gauge("server.admission.queue_depth"))
    }

    /// `server.admission.shed_total`: sessions refused with `Overloaded`.
    pub(crate) fn shed_total() -> &'static Counter {
        static C: OnceLock<&'static Counter> = OnceLock::new();
        C.get_or_init(|| vss_telemetry::counter("server.admission.shed_total"))
    }

    /// `server.admission.shed{code=...}`: sheds broken out by why —
    /// `shutdown` (server refusing new work) vs `overloaded` (limits hit
    /// after the admission queue timed out). The shed path is cold, so the
    /// per-call interning lookup is fine.
    pub(crate) fn shed(code: &str) -> &'static Counter {
        vss_telemetry::counter_with("server.admission.shed", &[("code", code)])
    }

    /// `server.admission.in_flight_bytes`: bytes currently in flight through
    /// streaming transfers (mirrors the atomic the admission gate reads).
    pub(crate) fn in_flight_bytes() -> &'static Gauge {
        static G: OnceLock<&'static Gauge> = OnceLock::new();
        G.get_or_init(|| vss_telemetry::gauge("server.admission.in_flight_bytes"))
    }
}

/// Admission-control knobs of a [`VssServer`] (all default to "unlimited"):
/// how many sessions may be active at once, how many bytes may be in flight
/// through streaming transfers, and how long a new session may queue for a
/// slot before it is shed with [`VssError::Overloaded`].
///
/// Only [`VssServer::try_session`] enforces these limits;
/// [`VssServer::session`] is the trusted in-process escape hatch that always
/// admits (but is still counted, so shutdown drains it too). The `vss-net`
/// network front-end admits every TCP connection through `try_session`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Maximum concurrently active sessions (plus in-flight incremental
    /// writes, which count as activity even after their session is dropped).
    /// `0` = unlimited.
    pub max_concurrent_sessions: usize,
    /// Maximum bytes in flight through streaming transfers (tracked by
    /// [`VssServer::track_in_flight`]) before new sessions are refused.
    /// `0` = unlimited.
    pub max_in_flight_bytes: u64,
    /// How long [`VssServer::try_session`] queues for a free slot before
    /// shedding with [`VssError::Overloaded`]. [`Duration::ZERO`] sheds
    /// immediately.
    pub admission_queue: Duration,
    /// Bound on each live subscriber's in-memory GOP queue before the hub's
    /// lag policy drops it back to catch-up reads (see
    /// [`Session::subscribe`]). `0` =
    /// [`vss_live::DEFAULT_QUEUE_CAPACITY`]; tests force lag with tiny
    /// capacities.
    pub live_queue_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_concurrent_sessions: 0,
            max_in_flight_bytes: 0,
            admission_queue: Duration::ZERO,
            live_queue_capacity: 0,
        }
    }
}

/// A shared, thread-safe VSS server handle. Cheap to clone; all clones (and
/// all [`Session`]s) share the same sharded engine.
#[derive(Clone)]
pub struct VssServer {
    inner: Arc<ServerInner>,
}

struct ServerInner {
    engine: ShardedEngine,
    /// The live-fanout hub, installed as every shard engine's publisher at
    /// open: GOPs persisted anywhere in the store fan out to subscribers.
    hub: Arc<LiveHub>,
    /// Per-video retention windows (`trim-before` feeds). Applied by the
    /// maintenance workers (non-blocking) and by
    /// [`VssServer::apply_retention`] (deterministic).
    retention: Mutex<HashMap<String, Duration>>,
    next_session: AtomicU64,
    server_config: ServerConfig,
    /// Count of active sessions + in-flight incremental writes, guarded by a
    /// mutex so admission waiters can block on `admission_signal`.
    admission: Mutex<usize>,
    admission_signal: Condvar,
    in_flight_bytes: AtomicU64,
    rejected_sessions: AtomicU64,
    shutting_down: AtomicBool,
}

/// RAII counter of one unit of server activity (a session or an in-flight
/// incremental write); dropping it releases the slot and wakes admission
/// waiters and [`VssServer::shutdown`].
struct ActivityPermit {
    inner: Arc<ServerInner>,
}

impl ActivityPermit {
    fn acquire(inner: &Arc<ServerInner>) -> Self {
        *inner.admission.lock().expect("admission lock") += 1;
        Self::claimed(Arc::clone(inner))
    }

    /// Wraps a slot already counted under the admission lock.
    fn claimed(inner: Arc<ServerInner>) -> Self {
        metrics::active().add(1);
        Self { inner }
    }
}

impl Drop for ActivityPermit {
    fn drop(&mut self) {
        metrics::active().sub(1);
        let mut active = self.inner.admission.lock().expect("admission lock");
        *active = active.saturating_sub(1);
        self.inner.admission_signal.notify_all();
    }
}

/// RAII record of bytes currently in flight through a streaming transfer
/// (one GOP chunk on its way to or from a socket, one slab of append frames
/// buffered server-side). Obtained from [`VssServer::track_in_flight`];
/// dropping it subtracts the bytes and wakes admission waiters.
pub struct InFlightBytes {
    inner: Arc<ServerInner>,
    bytes: u64,
}

impl Drop for InFlightBytes {
    fn drop(&mut self) {
        metrics::in_flight_bytes().sub(self.bytes as i64);
        self.inner.in_flight_bytes.fetch_sub(self.bytes, Ordering::SeqCst);
        // Waiters may be blocked on the byte gate; nudge them.
        let _guard = self.inner.admission.lock().expect("admission lock");
        self.inner.admission_signal.notify_all();
    }
}

impl VssServer {
    /// Opens (or creates) a sharded store with the default shard count.
    pub fn open(config: VssConfig) -> Result<Self, VssError> {
        Self::open_sharded(config, 0)
    }

    /// Opens (or creates) a sharded store with an explicit shard count
    /// (`0` = [`DEFAULT_SHARD_COUNT`]). Reopening an existing store keeps
    /// the shard count it was created with.
    pub fn open_sharded(config: VssConfig, shards: usize) -> Result<Self, VssError> {
        Self::open_configured(config, shards, ServerConfig::default())
    }

    /// [`open_sharded`](Self::open_sharded) with explicit admission-control
    /// limits.
    pub fn open_configured(
        config: VssConfig,
        shards: usize,
        server_config: ServerConfig,
    ) -> Result<Self, VssError> {
        let capacity = if server_config.live_queue_capacity == 0 {
            vss_live::DEFAULT_QUEUE_CAPACITY
        } else {
            server_config.live_queue_capacity
        };
        let hub = LiveHub::new(capacity);
        let engine = ShardedEngine::open(config, shards)?;
        // Every shard publishes to the same hub, so a subscription follows
        // its video wherever the name routes.
        engine.set_publisher(Some(hub.clone()));
        Ok(Self {
            inner: Arc::new(ServerInner {
                engine,
                hub,
                retention: Mutex::new(HashMap::new()),
                next_session: AtomicU64::new(0),
                server_config,
                admission: Mutex::new(0),
                admission_signal: Condvar::new(),
                in_flight_bytes: AtomicU64::new(0),
                rejected_sessions: AtomicU64::new(0),
                shutting_down: AtomicBool::new(false),
            }),
        })
    }

    /// Opens a server rooted at a directory with default configuration.
    pub fn open_at(root: impl Into<std::path::PathBuf>) -> Result<Self, VssError> {
        Self::open(VssConfig::new(root))
    }

    /// Creates a new client session, bypassing admission limits (the trusted
    /// in-process escape hatch — experiments, maintenance tooling, tests).
    /// The session is still counted as activity, so
    /// [`shutdown`](Self::shutdown) waits for it. Untrusted multi-process
    /// entry points (the `vss-net` front-end) must use
    /// [`try_session`](Self::try_session) instead.
    pub fn session(&self) -> Session {
        Session {
            id: self.inner.next_session.fetch_add(1, Ordering::Relaxed),
            _permit: ActivityPermit::acquire(&self.inner),
            server: self.clone(),
        }
    }

    /// Creates a new client session subject to the configured
    /// [`ServerConfig`] admission limits.
    ///
    /// When the server is at its session or in-flight-byte limit, the call
    /// queues for up to [`ServerConfig::admission_queue`] (immediately with
    /// the zero default) and then sheds the session with
    /// [`VssError::Overloaded`]. A shutting-down server refuses new sessions
    /// outright.
    pub fn try_session(&self) -> Result<Session, VssError> {
        let config = &self.inner.server_config;
        let deadline = Instant::now() + config.admission_queue;
        // Observability of the gate itself: how deep the admission queue is
        // right now, and how many sessions it has shed in total.
        let mut queued = false;
        let unqueue = |queued: bool| {
            if queued {
                metrics::queue_depth().sub(1);
            }
        };
        let mut active = self.inner.admission.lock().expect("admission lock");
        loop {
            if self.inner.shutting_down.load(Ordering::SeqCst) {
                unqueue(queued);
                metrics::shed_total().incr();
                metrics::shed("shutdown").incr();
                self.inner.rejected_sessions.fetch_add(1, Ordering::Relaxed);
                return Err(VssError::Overloaded("server is shutting down".into()));
            }
            let sessions_ok = config.max_concurrent_sessions == 0
                || *active < config.max_concurrent_sessions;
            let in_flight = self.inner.in_flight_bytes.load(Ordering::SeqCst);
            let bytes_ok =
                config.max_in_flight_bytes == 0 || in_flight < config.max_in_flight_bytes;
            if sessions_ok && bytes_ok {
                unqueue(queued);
                *active += 1;
                drop(active);
                return Ok(Session {
                    id: self.inner.next_session.fetch_add(1, Ordering::Relaxed),
                    // The slot was already claimed under the lock above.
                    _permit: ActivityPermit::claimed(Arc::clone(&self.inner)),
                    server: self.clone(),
                });
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                unqueue(queued);
                metrics::shed_total().incr();
                metrics::shed("overloaded").incr();
                self.inner.rejected_sessions.fetch_add(1, Ordering::Relaxed);
                return Err(VssError::Overloaded(format!(
                    "admission limits reached: {active} active session(s) (limit {}), \
                     {in_flight} in-flight byte(s) (limit {})",
                    config.max_concurrent_sessions, config.max_in_flight_bytes
                )));
            }
            if !queued {
                metrics::queue_depth().add(1);
                queued = true;
            }
            let (guard, _timeout) = self
                .inner
                .admission_signal
                .wait_timeout(active, remaining)
                .expect("admission lock");
            active = guard;
        }
    }

    /// The admission-control configuration this server was opened with.
    pub fn server_config(&self) -> ServerConfig {
        self.inner.server_config
    }

    /// Sessions (plus in-flight incremental writes) currently active.
    pub fn active_sessions(&self) -> usize {
        *self.inner.admission.lock().expect("admission lock")
    }

    /// Bytes currently in flight through streaming transfers.
    pub fn in_flight_bytes(&self) -> u64 {
        self.inner.in_flight_bytes.load(Ordering::SeqCst)
    }

    /// Sessions shed by admission control since the server was opened.
    pub fn rejected_sessions(&self) -> u64 {
        self.inner.rejected_sessions.load(Ordering::Relaxed)
    }

    /// Records `bytes` as in flight through a streaming transfer until the
    /// returned guard is dropped. The total feeds the
    /// [`ServerConfig::max_in_flight_bytes`] admission gate.
    pub fn track_in_flight(&self, bytes: u64) -> InFlightBytes {
        metrics::in_flight_bytes().add(bytes as i64);
        self.inner.in_flight_bytes.fetch_add(bytes, Ordering::SeqCst);
        InFlightBytes { inner: Arc::clone(&self.inner), bytes }
    }

    /// True once [`begin_shutdown`](Self::begin_shutdown) or
    /// [`shutdown`](Self::shutdown) has been called.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutting_down.load(Ordering::SeqCst)
    }

    /// Starts a graceful shutdown without waiting: new
    /// [`try_session`](Self::try_session) calls are refused with
    /// [`VssError::Overloaded`] from this point on, while existing sessions
    /// (and in-flight incremental writes) keep running.
    pub fn begin_shutdown(&self) {
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        let _guard = self.inner.admission.lock().expect("admission lock");
        self.inner.admission_signal.notify_all();
    }

    /// Gracefully shuts the server down: refuses new sessions (like
    /// [`begin_shutdown`](Self::begin_shutdown)) and then waits up to
    /// `timeout` for every active session **and every in-flight incremental
    /// write** to finish — a [`Session::write_sink`] counts as activity even
    /// after its session is dropped, so a drain that returns `true`
    /// guarantees no write was cut off mid-GOP (the sink layer additionally
    /// guarantees that an *aborted* sink leaves only fully persisted GOPs).
    ///
    /// Returns `true` once the server is drained, `false` on timeout (the
    /// shutdown flag stays set either way). The caller must have dropped its
    /// own sessions first, and should drop any [`MaintenanceScheduler`]
    /// separately — its guard joins the per-shard workers.
    pub fn shutdown(&self, timeout: Duration) -> bool {
        self.begin_shutdown();
        let deadline = Instant::now() + timeout;
        let mut active = self.inner.admission.lock().expect("admission lock");
        while *active > 0 {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return false;
            }
            let (guard, _timeout) = self
                .inner
                .admission_signal
                .wait_timeout(active, remaining)
                .expect("admission lock");
            active = guard;
        }
        true
    }

    /// The underlying sharded engine (for experiments and tests).
    pub fn engine(&self) -> &ShardedEngine {
        &self.inner.engine
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.engine.shard_count()
    }

    /// The shard owning a logical video name.
    pub fn shard_of(&self, name: &str) -> usize {
        self.inner.engine.shard_of(name)
    }

    /// Point-in-time per-shard statistics.
    pub fn stats(&self) -> ServerStats {
        ServerStats { shards: self.inner.engine.shard_stats() }
    }

    /// The server's live-fanout hub (for observability: channel and
    /// subscriber counts). Subscriptions are opened through
    /// [`Session::subscribe`], not directly on the hub.
    pub fn hub(&self) -> &Arc<LiveHub> {
        &self.inner.hub
    }

    /// Sets (or, with `None`, clears) a time-windowed retention policy for
    /// one video: background maintenance keeps trimming whole original-
    /// timeline GOPs older than `window` behind the newest written data
    /// (see [`vss_core::Engine::trim_before`] for the trim contract — reads
    /// of trimmed ranges fail with [`VssError::OutOfRange`], and live
    /// subscriptions catching up across a trim observe a gap event). The
    /// freed bytes feed the existing deferred-compression/compaction
    /// machinery on its next sweep.
    pub fn set_retention(&self, name: &str, window: Option<Duration>) {
        let mut retention = self.inner.retention.lock().expect("retention lock");
        match window {
            Some(window) => {
                retention.insert(name.to_string(), window);
            }
            None => {
                retention.remove(name);
            }
        }
    }

    /// The retention window configured for a video, if any.
    pub fn retention_window(&self, name: &str) -> Option<Duration> {
        self.inner.retention.lock().expect("retention lock").get(name).copied()
    }

    /// Applies every configured retention window right now, blocking on each
    /// owning shard's lock in turn (the deterministic counterpart of the
    /// maintenance workers' opportunistic sweeps; tests and operational
    /// tooling call this). Returns the total number of GOPs trimmed.
    pub fn apply_retention(&self) -> Result<usize, VssError> {
        let targets: Vec<(String, Duration)> = {
            let retention = self.inner.retention.lock().expect("retention lock");
            retention.iter().map(|(n, w)| (n.clone(), *w)).collect()
        };
        let mut removed = 0;
        for (name, window) in targets {
            removed += self.inner.engine.with_engine(&name, |engine| {
                match retention_cutoff(engine, &name, window) {
                    Some(cutoff) => {
                        engine.trim_before(&name, cutoff).map(|report| report.gops_removed)
                    }
                    None => Ok(0),
                }
            })?;
        }
        Ok(removed)
    }

    /// Starts the background maintenance scheduler: one worker per shard,
    /// each periodically sweeping its shard (deferred compression, eviction
    /// follow-up, compaction) when the shard is otherwise idle. Workers stop
    /// when the returned guard is dropped.
    pub fn start_maintenance(&self, interval: Duration) -> MaintenanceScheduler {
        let workers = (0..self.shard_count())
            .map(|index| {
                let (stop, stop_rx) = bounded::<()>(1);
                let inner = Arc::clone(&self.inner);
                let handle = std::thread::spawn(move || loop {
                    match stop_rx.recv_timeout(interval) {
                        Ok(()) | Err(RecvTimeoutError::Disconnected) => break,
                        Err(RecvTimeoutError::Timeout) => {
                            // Skip the shard when a foreground request holds
                            // its lock (the paper performs this work "when no
                            // other requests are being executed").
                            let _ = inner.engine.try_maintain_shard(index);
                            // Retention trims ride the same idle-only policy.
                            inner.sweep_retention(index);
                        }
                    }
                });
                MaintenanceWorker { stop: Some(stop), handle: Some(handle) }
            })
            .collect();
        MaintenanceScheduler { workers }
    }
}

impl ServerInner {
    /// One opportunistic retention pass over the videos owned by shard
    /// `shard_index`: skips (rather than waits for) a busy shard, exactly
    /// like deferred compression, so retention never stalls a client.
    fn sweep_retention(&self, shard_index: usize) {
        let targets: Vec<(String, Duration)> = {
            let retention = self.retention.lock().expect("retention lock");
            retention
                .iter()
                .filter(|(name, _)| self.engine.shard_of(name) == shard_index)
                .map(|(n, w)| (n.clone(), *w))
                .collect()
        };
        for (name, window) in targets {
            let _ = self.engine.try_with_engine(&name, |engine| {
                if let Some(cutoff) = retention_cutoff(engine, &name, window) {
                    let _ = engine.trim_before(&name, cutoff);
                }
            });
        }
    }
}

/// The trim cutoff a retention window implies for a video right now, or
/// `None` when the video has no written data or everything is younger than
/// the window.
fn retention_cutoff(engine: &Engine, name: &str, window: Duration) -> Option<f64> {
    let (start, end) = engine.video_time_range(name).ok()?;
    let cutoff = end - window.as_secs_f64();
    (cutoff > start).then_some(cutoff)
}

/// A per-client handle to a [`VssServer`]. All operations take `&self`; the
/// session routes each call to the shard owning the target video. Dropping
/// the session releases its admission slot (see [`VssServer::try_session`]).
pub struct Session {
    server: VssServer,
    id: u64,
    /// Holds the session's admission slot; released on drop.
    _permit: ActivityPermit,
}

impl Session {
    /// The session's server-unique id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The server this session belongs to.
    pub fn server(&self) -> &VssServer {
        &self.server
    }

    fn engine(&self) -> &ShardedEngine {
        &self.server.inner.engine
    }

    /// Creates a logical video, optionally with an explicit storage budget.
    pub fn create(&self, name: &str, budget: Option<StorageBudget>) -> Result<(), VssError> {
        self.engine().create_video(name, budget)
    }

    /// Deletes a logical video and all of its data.
    pub fn delete(&self, name: &str) -> Result<(), VssError> {
        self.engine().delete_video(name)
    }

    /// Writes a frame sequence to a logical video (creating it if needed).
    pub fn write(&self, request: &WriteRequest, frames: &FrameSequence) -> Result<WriteReport, VssError> {
        self.engine().write(request, frames)
    }

    /// Appends frames to a logical video's original representation.
    pub fn append(&self, name: &str, frames: &FrameSequence) -> Result<WriteReport, VssError> {
        self.engine().append(name, frames)
    }

    /// Executes a read planned by `request.planner` (optimal by default).
    pub fn read(&self, request: &ReadRequest) -> Result<ReadResult, VssError> {
        self.engine().read(request)
    }

    /// Executes a read with an explicit planner choice.
    pub fn read_with_planner(
        &self,
        request: &ReadRequest,
        planner: PlannerKind,
    ) -> Result<ReadResult, VssError> {
        self.engine().read_with_planner(request, planner)
    }

    /// Opens a GOP-at-a-time streaming read: the plan is snapshotted under
    /// the owning shard's **read** lock and the lock is released before this
    /// returns — decoding runs lock-free, concurrently with every other
    /// client of the shard (the shard lock is never held across GOP file
    /// reads). Draining the stream is byte-identical to
    /// [`read`](Self::read); streaming reads never admit to the cache.
    ///
    /// With [`VssConfig::readahead`] `> 0` the returned stream decodes GOPs
    /// ahead of the consumer on a bounded worker pool; the workers read only
    /// the snapshot's GOP files and never touch a shard lock, and dropping
    /// the stream mid-flight cancels and joins them without blocking any
    /// other client of the shard.
    pub fn read_stream(&self, request: &ReadRequest) -> Result<ReadStream, VssError> {
        self.engine().read_stream(request)
    }

    /// Opens an incremental write: each GOP is encoded and persisted under
    /// the owning shard's write lock **per GOP**, so a slow producer never
    /// holds the shard across its whole ingest. With
    /// [`VssConfig::readahead`] `> 0`, encoding runs on a worker thread that
    /// holds **no** shard lock — the lock is taken only for each in-order
    /// persist on the caller's thread, so the encode of GOP *n + 1* overlaps
    /// the locked file write of GOP *n*. The resulting store is
    /// byte-identical to a batch [`write`](Self::write) of the same frames
    /// at every readahead setting; aborting the sink (dropping it mid-clip)
    /// joins the worker and leaves only fully persisted GOPs behind.
    pub fn write_sink(
        &self,
        request: &WriteRequest,
        frame_rate: f64,
    ) -> Result<WriteSink<'static>, VssError> {
        let (gop_size, encoder, write) = self.engine().begin_sink(request, frame_rate)?;
        struct SessionSinkBackend {
            server: VssServer,
            write: IncrementalWrite,
            /// An in-flight sink is server activity in its own right: it must
            /// keep [`VssServer::shutdown`] waiting even if the session that
            /// opened it is dropped first, so no write is cut off mid-GOP.
            _permit: ActivityPermit,
        }
        impl GopWriteBackend for SessionSinkBackend {
            fn flush_gop(&mut self, frames: &[vss_frame::Frame]) -> Result<(), VssError> {
                self.server.inner.engine.push_sink_gop(&mut self.write, frames)
            }
            fn flush_encoded(
                &mut self,
                frames: &[vss_frame::Frame],
                gop: vss_codec::EncodedGop,
            ) -> Result<(), VssError> {
                self.server.inner.engine.push_sink_encoded(&mut self.write, frames, &gop)
            }
            fn finish(&mut self) -> Result<WriteReport, VssError> {
                self.server.inner.engine.finish_sink(&mut self.write)
            }
        }
        Ok(WriteSink::overlapped(
            Box::new(SessionSinkBackend {
                write,
                _permit: ActivityPermit::acquire(&self.server.inner),
                server: self.server.clone(),
            }),
            frame_rate,
            gop_size,
            encoder,
        ))
    }

    /// Opens a tailing live subscription on a video: every original-timeline
    /// GOP persisted from now on (by any client's [`write`](Self::write),
    /// [`append`](Self::append) or [`write_sink`](Self::write_sink)) is
    /// delivered already-encoded, with zero re-encodes. Starting from
    /// [`SubscribeFrom::Start`] or [`SubscribeFrom::Seq`] first replays the
    /// persisted backlog through cursor-based catch-up reads (the
    /// `read_stream` plan machinery, run lock-free outside the shard lock)
    /// and then seams onto the live feed exactly — no GOP duplicated or
    /// skipped. A subscriber that falls behind its bounded queue is
    /// transparently switched back to catch-up and re-seamed; the ingesting
    /// writer is never stalled. The video does not need to exist yet.
    ///
    /// Dropping the [`Subscription`] unsubscribes immediately (see
    /// [`vss_live`]); dropping the session does not end subscriptions it
    /// opened.
    pub fn subscribe(&self, name: &str, from: SubscribeFrom) -> Subscription {
        self.server.hub().subscribe(
            name,
            from,
            Box::new(SessionCatchupSource { server: self.server.clone() }),
        )
    }

    /// Storage accounting for one logical video.
    pub fn metadata(&self, name: &str) -> Result<VideoMetadata, VssError> {
        self.engine().metadata(name)
    }

    /// Names of all logical videos in the store.
    pub fn video_names(&self) -> Vec<String> {
        self.engine().video_names()
    }

    /// Bytes used by a logical video across all physical representations.
    pub fn bytes_used(&self, name: &str) -> Result<u64, VssError> {
        self.engine().bytes_used(name)
    }

    /// The storage budget of a logical video in bytes, if bounded.
    pub fn budget_bytes(&self, name: &str) -> Result<Option<u64>, VssError> {
        self.engine().budget_bytes(name)
    }

    /// Fraction of the storage budget currently consumed.
    pub fn budget_fraction(&self, name: &str) -> Result<Option<f64>, VssError> {
        self.engine().budget_fraction(name)
    }

    /// Runs compaction for a logical video, returning the number of merges.
    pub fn compact(&self, name: &str) -> Result<usize, VssError> {
        self.engine().compact(name)
    }

    /// Jointly compresses the overlapping portion of two videos (cross-shard
    /// operation; see the crate docs for the lock-ordering protocol).
    pub fn joint_compress(
        &self,
        left: &str,
        right: &str,
        merge: MergeFunction,
    ) -> Result<JointOutcome, VssError> {
        self.engine().joint_compress(left, right, merge)
    }

    /// Runs a function with exclusive access to the engine shard owning
    /// `name` (experiment/ablation escape hatch, mirroring
    /// [`vss_core::Vss::with_engine`]).
    pub fn with_engine<R>(&self, name: &str, f: impl FnOnce(&mut Engine) -> R) -> R {
        self.engine().with_engine(name, f)
    }
}

/// A session speaks the same unified contract as every other store, so the
/// workload driver and benchmark harness can swap the sharded server in for
/// the monolithic engine or a baseline without code changes.
impl VideoStorage for Session {
    fn label(&self) -> &'static str {
        "vss-server"
    }

    fn create(&mut self, name: &str, budget: Option<StorageBudget>) -> Result<(), VssError> {
        Session::create(self, name, budget)
    }

    fn delete(&mut self, name: &str) -> Result<(), VssError> {
        Session::delete(self, name)
    }

    fn write(
        &mut self,
        request: &WriteRequest,
        frames: &FrameSequence,
    ) -> Result<WriteReport, VssError> {
        Session::write(self, request, frames)
    }

    fn append(&mut self, name: &str, frames: &FrameSequence) -> Result<WriteReport, VssError> {
        Session::append(self, name, frames)
    }

    fn read(&mut self, request: &ReadRequest) -> Result<ReadResult, VssError> {
        Session::read(self, request)
    }

    fn read_stream(&mut self, request: &ReadRequest) -> Result<ReadStream, VssError> {
        Session::read_stream(self, request)
    }

    fn write_sink(
        &mut self,
        request: &WriteRequest,
        frame_rate: f64,
    ) -> Result<WriteSink<'_>, VssError> {
        Session::write_sink(self, request, frame_rate)
    }

    fn metadata(&self, name: &str) -> Result<VideoMetadata, VssError> {
        Session::metadata(self, name)
    }
}

/// The server-side [`CatchupSource`]: turns a cursor-based catch-up request
/// into (1) a manifest snapshot of the persisted original-timeline GOPs
/// under the owning shard's *read* lock, then (2) a `read_stream` over
/// exactly those GOPs — the same plan machinery ordinary reads use, decoding
/// lock-free. For a compressed original the stream passes the stored GOP
/// containers through byte-identically; for an uncompressed original the
/// chunks are re-packed with the (deterministic, lossless) raw container
/// writer, which reproduces the writer's bytes exactly.
struct SessionCatchupSource {
    server: VssServer,
}

impl CatchupSource for SessionCatchupSource {
    fn read_from(
        &mut self,
        name: &str,
        from_seq: u64,
        max_gops: usize,
    ) -> Result<Vec<LiveGop>, VssError> {
        let manifest = self
            .server
            .inner
            .engine
            .with_engine_read(name, |engine| engine.original_gop_spans(name, from_seq, max_gops));
        let manifest = match manifest {
            Ok(Some(manifest)) if !manifest.spans.is_empty() => manifest,
            // No video / no data / nothing at the cursor yet: the
            // subscription waits (or seams onto the live feed).
            Ok(_) | Err(VssError::VideoNotFound(_)) => return Ok(Vec::new()),
            Err(error) => return Err(error),
        };
        let (first, last) = (manifest.spans[0], manifest.spans[manifest.spans.len() - 1]);
        let request =
            ReadRequest::new(name, first.start_time, last.end_time, manifest.codec).uncacheable();
        let mut stream = self.server.inner.engine.read_stream(&request)?;
        let mut out = Vec::with_capacity(manifest.spans.len());
        for span in &manifest.spans {
            let chunk = stream.next().ok_or_else(|| {
                VssError::Unsatisfiable(format!(
                    "catch-up stream of '{name}' ended before sequence {}",
                    span.seq
                ))
            })??;
            let gop = match chunk.encoded_gop {
                Some(gop) => gop,
                None => vss_codec::codec_instance(manifest.codec)
                    .encode_slice(
                        chunk.frames.frames(),
                        manifest.frame_rate,
                        &vss_codec::EncoderConfig { quality: 0, gop_size: span.frame_count.max(1) },
                    )
                    .map_err(|e| {
                        VssError::Unsatisfiable(format!("catch-up raw re-pack failed: {e}"))
                    })?,
            };
            out.push(LiveGop {
                seq: span.seq,
                start_time: span.start_time,
                end_time: span.end_time,
                frame_count: span.frame_count,
                frame_rate: manifest.frame_rate,
                gop: Arc::new(gop),
            });
        }
        Ok(out)
    }
}

struct MaintenanceWorker {
    stop: Option<Sender<()>>,
    handle: Option<JoinHandle<()>>,
}

impl Drop for MaintenanceWorker {
    fn drop(&mut self) {
        if let Some(stop) = self.stop.take() {
            let _ = stop.send(());
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Guard for the per-shard background maintenance workers; dropping it stops
/// and joins every worker.
pub struct MaintenanceScheduler {
    workers: Vec<MaintenanceWorker>,
}

impl MaintenanceScheduler {
    /// Number of maintenance workers (one per shard).
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vss_codec::Codec;
    use vss_frame::{pattern, PixelFormat};

    fn temp_root(tag: &str) -> std::path::PathBuf {
        let root = std::env::temp_dir().join(format!(
            "vss-server-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    fn sequence(frames: usize, seed: u64) -> FrameSequence {
        let frames: Vec<_> = (0..frames)
            .map(|i| pattern::gradient(64, 48, PixelFormat::Yuv420, seed + i as u64))
            .collect();
        FrameSequence::new(frames, 30.0).unwrap()
    }

    /// Two names guaranteed to live on different shards of `server`.
    fn names_on_distinct_shards(server: &VssServer) -> (String, String) {
        let first = "cam-0".to_string();
        for i in 1..64 {
            let candidate = format!("cam-{i}");
            if server.shard_of(&candidate) != server.shard_of(&first) {
                return (first, candidate);
            }
        }
        panic!("no distinct shard found across 64 names");
    }

    #[test]
    fn session_round_trip_and_accounting() {
        let root = temp_root("roundtrip");
        let server = VssServer::open_sharded(VssConfig::new(&root), 4).unwrap();
        assert_eq!(server.shard_count(), 4);
        let writer = server.session();
        let reader = server.session();
        assert_ne!(writer.id(), reader.id());
        writer.write(&WriteRequest::new("v", Codec::H264), &sequence(60, 0)).unwrap();
        assert_eq!(reader.video_names(), vec!["v".to_string()]);
        assert!(reader.bytes_used("v").unwrap() > 0);
        assert!(reader.budget_bytes("v").unwrap().unwrap() > reader.bytes_used("v").unwrap());
        let result = reader.read(&ReadRequest::new("v", 0.0, 1.0, Codec::Hevc)).unwrap();
        assert_eq!(result.frames.len(), 30);
        writer.delete("v").unwrap();
        assert!(reader.video_names().is_empty());
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn reopen_preserves_shard_count_and_data() {
        let root = temp_root("reopen");
        {
            let server = VssServer::open_sharded(VssConfig::new(&root), 3).unwrap();
            let session = server.session();
            for i in 0..6 {
                session
                    .write(&WriteRequest::new(format!("cam-{i}"), Codec::H264), &sequence(30, i))
                    .unwrap();
            }
        }
        // A different requested count is ignored: routing is on-disk layout.
        let server = VssServer::open_sharded(VssConfig::new(&root), 9).unwrap();
        assert_eq!(server.shard_count(), 3);
        let session = server.session();
        assert_eq!(session.video_names().len(), 6);
        for i in 0..6 {
            let read = session
                .read(&ReadRequest::new(format!("cam-{i}"), 0.0, 1.0, Codec::H264).uncacheable())
                .unwrap();
            assert_eq!(read.frames.len(), 30);
        }
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn clients_on_distinct_videos_take_distinct_locks() {
        let root = temp_root("distinct");
        let server = VssServer::open_sharded(VssConfig::new(&root), 4).unwrap();
        let (a, b) = names_on_distinct_shards(&server);
        let session = server.session();
        session.write(&WriteRequest::new(&a, Codec::H264), &sequence(30, 1)).unwrap();
        session.write(&WriteRequest::new(&b, Codec::H264), &sequence(30, 2)).unwrap();

        // Hold `a`'s shard lock exclusively; a read of `b` must still finish.
        let (entered_tx, entered_rx) = bounded::<()>(1);
        let (release_tx, release_rx) = bounded::<()>(1);
        let holder = {
            let server = server.clone();
            let a = a.clone();
            std::thread::spawn(move || {
                server.engine().with_engine(&a, |_engine| {
                    entered_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                });
            })
        };
        entered_rx.recv().unwrap();
        let (done_tx, done_rx) = bounded::<usize>(1);
        let b_reader = {
            let server = server.clone();
            let b = b.clone();
            std::thread::spawn(move || {
                let session = server.session();
                let frames = session
                    .read(&ReadRequest::new(&b, 0.0, 1.0, Codec::H264).uncacheable())
                    .unwrap()
                    .frames
                    .len();
                done_tx.send(frames).unwrap();
            })
        };
        let frames = done_rx
            .recv_timeout(Duration::from_secs(30))
            .expect("read of another shard's video must not block on a held shard lock");
        assert_eq!(frames, 30);
        release_tx.send(()).unwrap();
        holder.join().unwrap();
        b_reader.join().unwrap();
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn stats_track_ops_lock_wait_and_hit_rate() {
        let root = temp_root("stats");
        let server = VssServer::open_sharded(VssConfig::new(&root), 2).unwrap();
        let session = server.session();
        session.write(&WriteRequest::new("v", Codec::H264), &sequence(60, 3)).unwrap();
        // Cold read transcodes from the original and admits a fragment...
        session.read(&ReadRequest::new("v", 0.0, 2.0, Codec::Hevc)).unwrap();
        // ...which the warm read then hits.
        session.read(&ReadRequest::new("v", 0.0, 1.0, Codec::Hevc)).unwrap();
        let stats = server.stats();
        assert_eq!(stats.shards.len(), 2);
        assert_eq!(stats.total_write_ops(), 1);
        assert_eq!(stats.total_read_ops(), 2);
        assert!(stats.total_bytes_written() > 0);
        assert!(stats.total_bytes_read() > 0);
        let owner = &stats.shards[server.shard_of("v")];
        assert_eq!(owner.videos, 1);
        assert_eq!(owner.cache_hit_reads, 1);
        assert!((owner.cache_hit_rate() - 0.5).abs() < 1e-9);
        assert!((stats.cache_hit_rate() - 0.5).abs() < 1e-9);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn lock_wait_histogram_exposes_distribution() {
        let root = temp_root("lockhist");
        let server = VssServer::open_sharded(VssConfig::new(&root), 2).unwrap();
        let session = server.session();
        session.write(&WriteRequest::new("v", Codec::H264), &sequence(30, 11)).unwrap();
        session.read(&ReadRequest::new("v", 0.0, 1.0, Codec::H264).uncacheable()).unwrap();
        let stats = server.stats();
        let owner = &stats.shards[server.shard_of("v")];
        let histogram = owner.lock_wait_histogram;
        // Every client acquisition (write: create-if-needed + write; read:
        // shared) records a sample — the distribution, not just a total.
        assert!(histogram.count >= 2, "expected >= 2 lock acquisitions, got {histogram:?}");
        assert!(histogram.p99 >= histogram.p50);
        assert!(histogram.max as u128 <= owner.lock_wait.as_nanos());
        assert_eq!(owner.lock_wait.as_nanos(), histogram.sum as u128);
        assert!(stats.lock_wait_p99() >= Duration::from_nanos(histogram.p99));
        let _ = std::fs::remove_dir_all(root);
    }

    /// Regression test for the "quiet acquisition" property: snapshotting
    /// statistics while a shard is locked must not perturb the lock-wait
    /// metrics the snapshot reports — the observer's own (long) wait behind
    /// the held lock may not show up as a sample.
    #[test]
    fn stats_snapshot_is_quiet_under_contention() {
        let root = temp_root("quiet");
        let server = VssServer::open_sharded(VssConfig::new(&root), 2).unwrap();
        let session = server.session();
        session.write(&WriteRequest::new("v", Codec::H264), &sequence(30, 12)).unwrap();
        let before = server.stats();
        let baseline = before.shards[server.shard_of("v")].lock_wait_histogram;

        // Hold `v`'s shard lock exclusively while an observer snapshots.
        let (entered_tx, entered_rx) = bounded::<()>(1);
        let holder = {
            let server = server.clone();
            std::thread::spawn(move || {
                server.engine().with_engine("v", |_engine| {
                    entered_tx.send(()).unwrap();
                    // Long enough that an accounted observer wait would be
                    // clearly visible in count and sum.
                    std::thread::sleep(Duration::from_millis(100));
                });
            })
        };
        entered_rx.recv().unwrap();
        let during = server.stats(); // blocks ~100ms behind the holder
        holder.join().unwrap();
        let after = during.shards[server.shard_of("v")].lock_wait_histogram;
        // Exactly one new sample — the holder's own (accounted) exclusive
        // acquisition. The observer's ~100ms wait behind the held lock must
        // not appear: neither as a sample nor in the summed wait.
        assert_eq!(
            after.count,
            baseline.count + 1,
            "quiet snapshot acquisition recorded lock-wait samples of its own"
        );
        assert!(
            after.sum - baseline.sum < Duration::from_millis(50).as_nanos() as u64,
            "observer wait leaked into the lock-wait total: {baseline:?} -> {after:?}"
        );
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn maintenance_scheduler_sweeps_idle_shards() {
        let root = temp_root("maintenance");
        let server = VssServer::open_sharded(VssConfig::new(&root), 2).unwrap();
        let session = server.session();
        session.with_engine("v", |engine| engine.config.deferred_compression = false);
        session.create("v", Some(StorageBudget::Bytes(50_000_000))).unwrap();
        let raw: Vec<_> =
            (0..9).map(|i| pattern::gradient(64, 48, PixelFormat::Rgb8, i as u64)).collect();
        let raw = FrameSequence::new(raw, 30.0).unwrap();
        session.write(&WriteRequest::new("v", Codec::Raw(PixelFormat::Rgb8)), &raw).unwrap();
        session.with_engine("v", |engine| engine.config.deferred_compression = true);
        let used = session.bytes_used("v").unwrap();
        // Tighten the budget so deferred compression activates.
        session.with_engine("v", |engine| {
            engine.set_storage_budget_bytes("v", Some(used + 1)).unwrap();
        });
        {
            let scheduler = server.start_maintenance(Duration::from_millis(5));
            assert_eq!(scheduler.worker_count(), 2);
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while session.bytes_used("v").unwrap() >= used && std::time::Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        assert!(
            session.bytes_used("v").unwrap() < used,
            "per-shard maintenance worker should shrink raw pages"
        );
        let _ = std::fs::remove_dir_all(root);
    }
}
