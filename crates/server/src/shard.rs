//! The sharded concurrent engine.
//!
//! [`ShardedEngine`] splits the storage manager's state into `N` independent
//! shards, each owning a disjoint slice of the catalog (every logical video
//! is assigned to exactly one shard by a stable hash of its name), that
//! shard's GOP cache/recency state and its deferred-compression queue —
//! all behind the shard's own reader-writer lock. Clients operating on
//! videos in different shards never contend; read-only operations on the
//! same shard share a read lock.
//!
//! # Lock-ordering protocol
//!
//! 1. **Single-shard rule.** Every ordinary operation (create, delete,
//!    write, append, read, maintenance) touches exactly one logical video
//!    and therefore acquires exactly one shard lock. Holding a shard lock
//!    while calling back into the engine for a *different* video is
//!    forbidden.
//! 2. **Cross-shard rule.** The rare operations that need two shards at
//!    once (joint compression of a physically-proximate video pair) acquire
//!    the two locks in **ascending shard index** order, locking once when
//!    both videos share a shard. Because every multi-lock caller uses the
//!    same total order, cross-shard operations cannot deadlock regardless
//!    of the argument order.
//! 3. **Aggregation rule.** Whole-server operations (listing video names,
//!    statistics, maintenance sweeps) visit shards one at a time and never
//!    hold more than one lock; they observe a point-in-time-per-shard view
//!    rather than a global snapshot, which is exactly the consistency the
//!    paper's statistics need.
//!
//! On disk, each shard is a fully self-contained store rooted at
//! `<root>/shard-NN/` (its own `catalog.json` and GOP files), and the shard
//! count is pinned in `<root>/server.json` so reopening a store routes every
//! existing video to the shard that owns its files.

use crate::stats::{ShardStats, ShardStatsSnapshot};
use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::path::{Path, PathBuf};
use std::time::Instant;
use vss_core::{
    joint_compress_sequences, Engine, JointOutcome, JointTimings, MergeFunction, PlannerKind,
    ReadRequest, ReadResult, ReadStream, StorageBudget, VssConfig, VssError, WriteRequest,
    WriteReport,
};
use vss_frame::{FrameSequence, PixelFormat};

/// Default shard count when `0` is requested. Shards stripe locks rather
/// than CPUs, so the default is a fixed fan-out (not the core count): wide
/// enough that a handful of concurrent clients rarely collide, small enough
/// that whole-server sweeps stay cheap.
pub const DEFAULT_SHARD_COUNT: usize = 8;

const MANIFEST_FILE: &str = "server.json";

#[derive(serde::Serialize, serde::Deserialize)]
struct ServerManifest {
    shards: usize,
}

/// One shard: an [`Engine`] behind a reader-writer lock, plus its counters.
pub(crate) struct Shard {
    engine: RwLock<Engine>,
    stats: ShardStats,
    /// The shard index as a string — the `shard_lock` span target and the
    /// `{shard=N}` label value, rendered once at construction.
    label: String,
}

impl Shard {
    /// Shared acquisition, recording the time spent waiting. The wait is a
    /// `server`-layer span, so a traced request shows its shard-lock stage
    /// between the net worker and the engine operation.
    pub(crate) fn read(&self) -> RwLockReadGuard<'_, Engine> {
        let _span = vss_telemetry::span("server", "shard_lock", self.label.as_str());
        let started = Instant::now();
        let guard = self.engine.read();
        self.stats.record_lock_wait(started.elapsed());
        guard
    }

    /// Exclusive acquisition, recording the time spent waiting.
    pub(crate) fn write(&self) -> RwLockWriteGuard<'_, Engine> {
        let _span = vss_telemetry::span("server", "shard_lock", self.label.as_str());
        let started = Instant::now();
        let guard = self.engine.write();
        self.stats.record_lock_wait(started.elapsed());
        guard
    }

    /// Shared acquisition *without* lock-wait accounting (statistics
    /// observers use this so polling never counts as client contention).
    pub(crate) fn read_quiet(&self) -> RwLockReadGuard<'_, Engine> {
        self.engine.read()
    }

    /// Non-blocking exclusive acquisition (used by maintenance workers so a
    /// busy shard is skipped rather than stalled on).
    pub(crate) fn try_write(&self) -> Option<RwLockWriteGuard<'_, Engine>> {
        self.engine.try_write()
    }
}

/// A stable, dependency-free hash for shard routing (FNV-1a, 64-bit). The
/// assignment of videos to shards is part of the on-disk layout, so this
/// must never change for existing stores.
fn route_hash(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The sharded storage-manager engine. All operations take `&self`; the
/// type is `Send + Sync` and designed to be shared across client threads.
pub struct ShardedEngine {
    root: PathBuf,
    shards: Vec<Shard>,
}

impl ShardedEngine {
    /// Opens (or creates) a sharded store rooted at the configuration's
    /// directory. `shards = 0` selects [`DEFAULT_SHARD_COUNT`]. Reopening an
    /// existing store always uses the shard count it was created with (the
    /// requested count is ignored), because video→shard routing determines
    /// where each video's files live.
    pub fn open(config: VssConfig, shards: usize) -> Result<Self, VssError> {
        let root = config.root.clone();
        std::fs::create_dir_all(&root).map_err(vss_catalog_io)?;
        let shard_count = match Self::load_manifest(&root)? {
            Some(existing) => existing,
            None => {
                let count = if shards == 0 { DEFAULT_SHARD_COUNT } else { shards };
                let manifest = ServerManifest { shards: count };
                let text = serde_json::to_string_pretty(&manifest)
                    .map_err(|e| VssError::Unsatisfiable(format!("manifest encode: {e}")))?;
                // The manifest pins the shard count for the store's lifetime
                // (routing depends on it), so its write must survive a crash:
                // temp-then-rename with file and directory fsyncs.
                vss_catalog::durable::write_atomic(&root.join(MANIFEST_FILE), text.as_bytes())
                    .map_err(vss_catalog_io)?;
                count
            }
        };
        let mut shard_list = Vec::with_capacity(shard_count);
        for index in 0..shard_count {
            let mut shard_config = config.clone();
            shard_config.root = root.join(format!("shard-{index:02}"));
            shard_list.push(Shard {
                engine: RwLock::new(Engine::open(shard_config)?),
                stats: ShardStats::new(index),
                label: index.to_string(),
            });
        }
        Ok(Self { root, shards: shard_list })
    }

    fn load_manifest(root: &Path) -> Result<Option<usize>, VssError> {
        let path = root.join(MANIFEST_FILE);
        if !path.exists() {
            return Ok(None);
        }
        let text = std::fs::read_to_string(&path).map_err(vss_catalog_io)?;
        let manifest: ServerManifest = serde_json::from_str(&text)
            .map_err(|e| VssError::Unsatisfiable(format!("corrupt server manifest: {e}")))?;
        if manifest.shards == 0 {
            return Err(VssError::Unsatisfiable("server manifest declares zero shards".into()));
        }
        Ok(Some(manifest.shards))
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of shards (fixed at store creation).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard that owns a logical video name.
    pub fn shard_of(&self, name: &str) -> usize {
        (route_hash(name) % self.shards.len() as u64) as usize
    }

    fn shard(&self, name: &str) -> &Shard {
        &self.shards[self.shard_of(name)]
    }

    // --- routed single-shard operations ------------------------------------

    /// Creates a logical video, optionally with an explicit storage budget.
    pub fn create_video(&self, name: &str, budget: Option<StorageBudget>) -> Result<(), VssError> {
        self.shard(name).write().create_video(name, budget)
    }

    /// Deletes a logical video and all of its data.
    pub fn delete_video(&self, name: &str) -> Result<(), VssError> {
        self.shard(name).write().delete_video(name)
    }

    /// Writes a frame sequence to a logical video (creating it if needed).
    pub fn write(&self, request: &WriteRequest, frames: &FrameSequence) -> Result<WriteReport, VssError> {
        let shard = self.shard(&request.name);
        let report = shard.write().write(request, frames)?;
        shard.stats.record_write(&report);
        Ok(report)
    }

    /// Appends frames to a logical video's original representation.
    pub fn append(&self, name: &str, frames: &FrameSequence) -> Result<WriteReport, VssError> {
        let shard = self.shard(name);
        let report = shard.write().append(name, frames)?;
        shard.stats.record_write(&report);
        Ok(report)
    }

    /// Executes a read planned by `request.planner` (optimal by default).
    pub fn read(&self, request: &ReadRequest) -> Result<ReadResult, VssError> {
        self.read_with_planner(request, request.planner)
    }

    /// Executes a read with an explicit planner choice.
    ///
    /// Cacheable reads may admit their result as a new materialized view, so
    /// they take the shard's exclusive lock; non-cacheable reads go through
    /// [`Engine::read_shared`] under the shard's *shared* lock and run
    /// concurrently with other readers of the same shard. Both paths return
    /// byte-identical results for the same request and store state.
    pub fn read_with_planner(
        &self,
        request: &ReadRequest,
        planner: PlannerKind,
    ) -> Result<ReadResult, VssError> {
        let shard = self.shard(&request.name);
        let result = if request.cacheable {
            shard.write().read_with_planner(request, planner)?
        } else {
            shard.read().read_shared(request, planner)?
        };
        shard.stats.record_read(&result.stats);
        Ok(result)
    }

    /// Opens a GOP-at-a-time streaming read.
    ///
    /// The plan is snapshotted under the owning shard's **shared** lock —
    /// range validation, candidate collection, planning, recency bookkeeping
    /// and resolving every planned GOP to its on-disk file — and the lock is
    /// released before this method returns. The stream then decodes
    /// completely lock-free: the shard lock is never held across GOP file
    /// reads, so an arbitrarily slow streaming consumer cannot starve other
    /// clients of the shard. Streaming reads never admit results to the
    /// cache (use [`read`](Self::read) for cache-admitting reads).
    ///
    /// The drained stream is byte-identical to [`read`](Self::read) of the
    /// same request against the same store state.
    pub fn read_stream(&self, request: &ReadRequest) -> Result<ReadStream, VssError> {
        let shard = self.shard(&request.name);
        let stream = shard.read().read_stream(request)?;
        // The shard lock is released here; account the read at open time
        // (bytes flow lock-free afterwards and are reported in the stream's
        // own stats).
        shard.stats.record_stream_open(&stream.stats());
        Ok(stream)
    }

    /// Begins an incremental write: captures the GOP-size boundary, the
    /// encode parameters (for the overlapped-encode worker) and the write
    /// state under the shard lock, releasing it between GOPs.
    pub(crate) fn begin_sink(
        &self,
        request: &WriteRequest,
        frame_rate: f64,
    ) -> Result<(usize, vss_core::SinkEncoder, vss_core::IncrementalWrite), VssError> {
        let shard = self.shard(&request.name);
        let engine = shard.read();
        Ok((
            engine.write_gop_size(request.codec),
            engine.sink_encoder(request),
            engine.begin_incremental_write(request, frame_rate)?,
        ))
    }

    /// Persists one GOP of an incremental write under the owning shard's
    /// exclusive lock (held per GOP, not for the whole ingest).
    pub(crate) fn push_sink_gop(
        &self,
        write: &mut vss_core::IncrementalWrite,
        frames: &[vss_frame::Frame],
    ) -> Result<(), VssError> {
        let shard = self.shard(write.name());
        shard.write().push_incremental_gop(write, frames)
    }

    /// Persists one pre-encoded GOP of an incremental write (the overlapped
    /// sink path: the GOP was encoded off-thread, **without** any shard
    /// lock; only this persist call takes the owning shard's write lock).
    pub(crate) fn push_sink_encoded(
        &self,
        write: &mut vss_core::IncrementalWrite,
        frames: &[vss_frame::Frame],
        gop: &vss_codec::EncodedGop,
    ) -> Result<(), VssError> {
        let shard = self.shard(write.name());
        shard.write().push_incremental_encoded(write, frames, gop)
    }

    /// Completes an incremental write and accounts it in the shard's stats.
    pub(crate) fn finish_sink(
        &self,
        write: &mut vss_core::IncrementalWrite,
    ) -> Result<WriteReport, VssError> {
        let shard = self.shard(write.name());
        let report = shard.write().finish_incremental_write(write)?;
        shard.stats.record_write(&report);
        Ok(report)
    }

    /// Storage accounting for one logical video.
    pub fn metadata(&self, name: &str) -> Result<vss_core::VideoMetadata, VssError> {
        self.shard(name).read().metadata(name)
    }

    /// Time range `[start, end)` in seconds covered by a logical video.
    pub fn video_time_range(&self, name: &str) -> Result<(f64, f64), VssError> {
        self.shard(name).read().video_time_range(name)
    }

    /// Names of all logical videos across all shards, sorted. Visits shards
    /// one at a time (aggregation rule: never holds two locks).
    pub fn video_names(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.shards.iter().flat_map(|shard| shard.read().video_names()).collect();
        names.sort();
        names
    }

    /// Bytes used by a logical video across all physical representations.
    pub fn bytes_used(&self, name: &str) -> Result<u64, VssError> {
        self.shard(name).read().bytes_used(name)
    }

    /// The storage budget of a logical video in bytes, if bounded.
    pub fn budget_bytes(&self, name: &str) -> Result<Option<u64>, VssError> {
        self.shard(name).read().budget_bytes(name)
    }

    /// Fraction of the storage budget currently consumed.
    pub fn budget_fraction(&self, name: &str) -> Result<Option<f64>, VssError> {
        self.shard(name).read().budget_fraction(name)
    }

    /// Runs compaction for a logical video, returning the number of merges.
    pub fn compact(&self, name: &str) -> Result<usize, VssError> {
        self.shard(name).write().compact_video(name)
    }

    /// Runs a function with exclusive access to the engine shard owning
    /// `name` (used by experiments to tweak configuration mid-run).
    pub fn with_engine<R>(&self, name: &str, f: impl FnOnce(&mut Engine) -> R) -> R {
        f(&mut self.shard(name).write())
    }

    /// Runs a function with shared access to the engine shard owning `name`
    /// (used by live catch-up readers to snapshot the persisted timeline
    /// without blocking other readers of the shard).
    pub fn with_engine_read<R>(&self, name: &str, f: impl FnOnce(&Engine) -> R) -> R {
        f(&self.shard(name).read())
    }

    /// Non-blocking [`with_engine`](Self::with_engine): returns `None`
    /// without running `f` when a foreground request holds the owning
    /// shard's lock (used by background retention sweeps, which — like
    /// deferred compression — must never stall a client).
    pub fn try_with_engine<R>(&self, name: &str, f: impl FnOnce(&mut Engine) -> R) -> Option<R> {
        self.shard(name).try_write().map(|mut engine| f(&mut engine))
    }

    /// Installs (or clears) a live-fanout publisher on **every** shard's
    /// engine, so original-timeline GOPs persisted anywhere in the store are
    /// published to the same hub (see [`vss_core::GopPublisher`]).
    pub fn set_publisher(&self, publisher: Option<std::sync::Arc<dyn vss_core::GopPublisher>>) {
        for shard in &self.shards {
            shard.write().set_publisher(publisher.clone());
        }
    }

    // --- maintenance --------------------------------------------------------

    /// Runs one unit of background maintenance (deferred compression or
    /// compaction) on one shard, blocking for its lock. Returns `true` if
    /// any work was performed.
    pub fn maintain_shard(&self, index: usize) -> Result<bool, VssError> {
        self.shards[index].write().background_maintenance()
    }

    /// Non-blocking variant used by the background scheduler: skips the
    /// shard (returning `None`) when a foreground request holds its lock,
    /// matching the paper's "when no other requests are being executed".
    pub fn try_maintain_shard(&self, index: usize) -> Result<Option<bool>, VssError> {
        match self.shards[index].try_write() {
            Some(mut engine) => engine.background_maintenance().map(Some),
            None => Ok(None),
        }
    }

    /// One maintenance pass over every shard (shards are swept one at a
    /// time, each under its own lock — never stop-the-world). Returns `true`
    /// if any shard performed work.
    pub fn maintenance_sweep(&self) -> Result<bool, VssError> {
        let mut worked = false;
        for index in 0..self.shards.len() {
            worked |= self.maintain_shard(index)?;
        }
        Ok(worked)
    }

    // --- cross-shard operations ---------------------------------------------

    /// Jointly compresses the temporally overlapping portion of two logical
    /// videos (the paper's physically-proximate camera-pair optimization,
    /// Section 5.1), returning the outcome.
    ///
    /// This is the canonical cross-shard operation: it acquires both owning
    /// shards' locks **in ascending shard index order** (one lock when the
    /// videos share a shard). The computation only reads, so *shared* guards
    /// suffice — concurrent readers of either shard are not blocked for the
    /// duration of the (CPU-heavy) compression. The ordering is still
    /// load-bearing even for read locks: with a write-preferring lock, two
    /// unordered two-lock readers plus one single-lock writer can cycle
    /// (reader A holds shard 1 / waits shard 2 behind a pending writer whose
    /// own wait is on reader B, who waits on shard 1). A future persistence
    /// step that rewrites GOPs as joint artifacts must take the same
    /// ascending-order acquisition with exclusive guards.
    pub fn joint_compress(
        &self,
        left: &str,
        right: &str,
        merge: MergeFunction,
    ) -> Result<JointOutcome, VssError> {
        if left == right {
            return Err(VssError::Unsatisfiable(
                "joint compression needs two distinct videos".into(),
            ));
        }
        let left_shard = self.shard_of(left);
        let right_shard = self.shard_of(right);
        if left_shard == right_shard {
            let guard = self.shards[left_shard].read();
            return Self::joint_compress_locked(&guard, &guard, left, right, merge);
        }
        // Lock-ordering protocol, cross-shard rule: ascending shard index.
        let (low, high) = (left_shard.min(right_shard), left_shard.max(right_shard));
        let low_guard = self.shards[low].read();
        let high_guard = self.shards[high].read();
        let (left_engine, right_engine): (&Engine, &Engine) = if left_shard < right_shard {
            (&low_guard, &high_guard)
        } else {
            (&high_guard, &low_guard)
        };
        Self::joint_compress_locked(left_engine, right_engine, left, right, merge)
    }

    fn joint_compress_locked(
        left_engine: &Engine,
        right_engine: &Engine,
        left: &str,
        right: &str,
        merge: MergeFunction,
    ) -> Result<JointOutcome, VssError> {
        let (left_start, left_end) = left_engine.video_time_range(left)?;
        let (right_start, right_end) = right_engine.video_time_range(right)?;
        let start = left_start.max(right_start);
        let end = left_end.min(right_end);
        if end <= start + 1e-9 {
            return Err(VssError::Unsatisfiable(format!(
                "'{left}' and '{right}' do not overlap in time"
            )));
        }
        let raw = vss_codec::Codec::Raw(PixelFormat::Rgb8);
        let left_frames = left_engine
            .read_shared(&ReadRequest::new(left, start, end, raw).uncacheable(), PlannerKind::Optimal)?
            .frames;
        let right_frames = right_engine
            .read_shared(&ReadRequest::new(right, start, end, raw).uncacheable(), PlannerKind::Optimal)?
            .frames;
        let encoder = vss_codec::EncoderConfig {
            quality: left_engine.config.default_encoder_quality,
            gop_size: left_engine.config.gop_size,
        };
        let mut timings = JointTimings::default();
        joint_compress_sequences(
            &left_frames,
            &right_frames,
            merge,
            &left_engine.config.joint,
            &encoder,
            None,
            &mut timings,
        )
    }

    // --- statistics ---------------------------------------------------------

    /// Point-in-time statistics for every shard (aggregation rule: one lock
    /// at a time, read locks only). Uses *quiet* lock acquisition: an
    /// observer waiting behind a busy shard must not inflate the lock-wait
    /// metric it is about to report as client contention.
    pub fn shard_stats(&self) -> Vec<ShardStatsSnapshot> {
        self.shards
            .iter()
            .enumerate()
            .map(|(index, shard)| {
                let videos = shard.read_quiet().video_names().len();
                shard.stats.snapshot(index, videos)
            })
            .collect()
    }
}

/// Wraps a manifest I/O error into the engine's error type.
fn vss_catalog_io(error: std::io::Error) -> VssError {
    VssError::Catalog(error.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable() {
        // The hash is part of the on-disk contract; pin a few values.
        assert_eq!(route_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(route_hash("a"), route_hash("a"));
        assert_ne!(route_hash("a"), route_hash("b"));
    }

    #[test]
    fn shard_assignment_spreads_names() {
        let names: Vec<String> = (0..64).map(|i| format!("camera-{i}")).collect();
        let shards = 8u64;
        let mut seen = std::collections::BTreeSet::new();
        for name in &names {
            seen.insert(route_hash(name) % shards);
        }
        assert!(seen.len() >= 4, "64 names should land on several of 8 shards, got {seen:?}");
    }
}
