//! Property-based corruption suite for the write-ahead catalog journal.
//!
//! Each case builds a real store with a seeded sequence of structural
//! mutations, snapshotting `(journal length, visible state)` after every
//! committed record. Then the journal file is mangled — truncated at an
//! arbitrary byte offset, bit-flipped, extended with garbage, or fed a
//! duplicated (stale) record — and the store is reopened. The contract under
//! test:
//!
//! * recovery **never panics**: every open returns a catalog or a typed
//!   [`CatalogError`];
//! * a recovered catalog's state is always a **committed prefix** of the
//!   original mutation history (corruption can cost the torn suffix, never
//!   reorder or invent state);
//! * a second open finds nothing left to repair (repairs are checkpointed).

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use vss_catalog::{Catalog, CatalogError};

const WAL_MAGIC_LEN: u64 = 8;

fn temp_root(tag: &str, case: u64) -> PathBuf {
    let root = std::env::temp_dir().join(format!(
        "vss-wal-props-{tag}-{case}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// A catalog's externally visible structural state.
type Snapshot = Vec<(String, Option<u64>)>;

fn snapshot(catalog: &Catalog) -> Snapshot {
    let mut names = catalog.video_names();
    names.sort();
    names
        .into_iter()
        .map(|name| {
            let budget = catalog.video(&name).expect("listed video").storage_budget_bytes;
            (name, budget)
        })
        .collect()
}

/// Builds a store by applying `ops` (each op word seeds one structural
/// mutation; invalid ones are skipped), returning the snapshot history as
/// `(journal_bytes after the commit, state)` pairs — index 0 is the fresh
/// store. The checkpoint threshold is maxed out so every mutation stays in
/// the journal.
fn build_store(root: &Path, ops: &[u64]) -> Vec<(u64, Snapshot)> {
    let mut catalog = Catalog::open(root).expect("open fresh store");
    catalog.set_checkpoint_threshold(u64::MAX);
    let mut history = vec![(catalog.journal_bytes(), snapshot(&catalog))];
    for op in ops {
        let name = format!("v{}", op % 5);
        let applied = match (op >> 8) % 3 {
            0 if !catalog.contains_video(&name) => catalog.create_video(&name).is_ok(),
            1 if catalog.contains_video(&name) => catalog.delete_video(&name).is_ok(),
            2 if catalog.contains_video(&name) => {
                catalog.set_storage_budget(&name, Some(op >> 16)).is_ok()
            }
            _ => false,
        };
        if applied {
            history.push((catalog.journal_bytes(), snapshot(&catalog)));
        }
    }
    history
}

fn wal_path(root: &Path) -> PathBuf {
    root.join("catalog.wal")
}

/// Reopens the store and asserts the recovery contract. Returns the
/// recovered snapshot (or `None` for a typed corruption error, which the
/// contract also allows for non-prefix damage like a mangled magic).
fn reopen_checked(root: &Path, context: &str) -> Result<Option<Snapshot>, TestCaseError> {
    match Catalog::open(root) {
        Ok(catalog) => {
            let state = snapshot(&catalog);
            drop(catalog);
            // Whatever the first open repaired must have been checkpointed.
            let second = Catalog::open(root)
                .map_err(|e| TestCaseError::fail(format!("{context}: second open failed: {e:?}")))?;
            prop_assert!(
                !second.recovery_report().repaired_anything(),
                "{context}: second open still repairing: {:?}",
                second.recovery_report()
            );
            prop_assert_eq!(
                snapshot(&second),
                state.clone(),
                "{context}: recovered state must be stable across opens"
            );
            Ok(Some(state))
        }
        Err(CatalogError::Corrupt(_)) | Err(CatalogError::Io(_)) => Ok(None),
        Err(other) => Err(TestCaseError::fail(format!(
            "{context}: expected Corrupt/Io, got {other:?}"
        ))),
    }
}

fn assert_is_committed_prefix(
    state: &Snapshot,
    history: &[(u64, Snapshot)],
    context: &str,
) -> Result<(), TestCaseError> {
    prop_assert!(
        history.iter().any(|(_, past)| past == state),
        "{context}: recovered state {state:?} is not any committed prefix of {history:?}"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Truncating the journal at *any* byte offset loses at most the torn
    /// suffix: the store reopens to exactly the last state whose commits fit
    /// inside the kept prefix.
    #[test]
    fn torn_tail_at_any_offset_recovers_the_longest_committed_prefix(
        ops in proptest::collection::vec(any::<u64>(), 1..24),
        cut_word in any::<u64>(),
    ) {
        let root = temp_root("torn", cut_word ^ ops.len() as u64);
        let history = build_store(&root, &ops);
        let wal = wal_path(&root);
        let full = std::fs::metadata(&wal).expect("wal exists").len();
        // Cut anywhere from mid-magic to one byte short of the full file.
        let cut = WAL_MAGIC_LEN.saturating_sub(4) + cut_word % full.max(1);
        let cut = cut.min(full.saturating_sub(1));
        let file = std::fs::OpenOptions::new().write(true).open(&wal).expect("open wal");
        file.set_len(cut).expect("truncate wal");
        drop(file);

        match reopen_checked(&root, "torn tail")? {
            Some(state) => {
                // The recovered state is precisely the newest snapshot whose
                // journal fit entirely within the cut.
                let expected = history
                    .iter()
                    .rev()
                    .find(|(bytes, _)| *bytes <= cut)
                    .map(|(_, s)| s.clone())
                    .unwrap_or_default();
                prop_assert_eq!(state, expected, "cut at {} of {}", cut, full);
            }
            // Cutting into the 8-byte magic may surface as typed corruption.
            None => prop_assert!(
                cut < WAL_MAGIC_LEN,
                "cut at {} of {} must only error inside the magic",
                cut,
                full
            ),
        }
        let _ = std::fs::remove_dir_all(root);
    }

    /// Flipping any single bit of the journal never panics and never invents
    /// state: the store either reopens to a committed prefix of the history
    /// or surfaces a typed corruption error.
    #[test]
    fn single_bit_flips_never_panic_and_keep_a_committed_prefix(
        ops in proptest::collection::vec(any::<u64>(), 1..24),
        flip_word in any::<u64>(),
    ) {
        let root = temp_root("flip", flip_word ^ ops.len() as u64);
        let history = build_store(&root, &ops);
        let wal = wal_path(&root);
        let mut bytes = std::fs::read(&wal).expect("read wal");
        let offset = (flip_word % bytes.len() as u64) as usize;
        bytes[offset] ^= 1 << ((flip_word >> 32) % 8);
        std::fs::write(&wal, &bytes).expect("write flipped wal");

        if let Some(state) = reopen_checked(&root, "bit flip")? {
            assert_is_committed_prefix(&state, &history, "bit flip")?;
        }
        let _ = std::fs::remove_dir_all(root);
    }

    /// Random garbage appended after valid records is discarded as a torn
    /// tail: every committed record survives.
    #[test]
    fn appended_garbage_is_discarded_without_losing_committed_records(
        ops in proptest::collection::vec(any::<u64>(), 1..24),
        garbage in proptest::collection::vec(any::<u8>(), 1..256),
    ) {
        let root = temp_root("garbage", garbage.len() as u64 ^ ops.len() as u64);
        let history = build_store(&root, &ops);
        let wal = wal_path(&root);
        let mut bytes = std::fs::read(&wal).expect("read wal");
        bytes.extend_from_slice(&garbage);
        std::fs::write(&wal, &bytes).expect("append garbage");

        if let Some(state) = reopen_checked(&root, "appended garbage")? {
            // Garbage can only cost itself; with astronomically unlikely CRC
            // collisions aside, the full history survives. Committed-prefix
            // is the hard guarantee.
            assert_is_committed_prefix(&state, &history, "appended garbage")?;
            prop_assert_eq!(
                state,
                history.last().expect("non-empty history").1.clone(),
                "garbage after the last record must not cost committed records"
            );
        } else {
            return Err(TestCaseError::fail("appended garbage must never fail the open"));
        }
        let _ = std::fs::remove_dir_all(root);
    }

    /// Re-appending the bytes of an earlier record (a duplicate with a stale
    /// sequence number, as a crashed-and-restarted writer could produce) is
    /// skipped on replay rather than double-applied.
    #[test]
    fn duplicated_stale_records_are_skipped_on_replay(
        ops in proptest::collection::vec(any::<u64>(), 2..24),
        pick in any::<u64>(),
    ) {
        let root = temp_root("stale", pick ^ ops.len() as u64);
        let history = build_store(&root, &ops);
        prop_assume!(history.len() > 1); // need at least one committed record
        let wal = wal_path(&root);
        let mut bytes = std::fs::read(&wal).expect("read wal");
        // Record i occupies [history[i].0, history[i+1].0); duplicate one.
        let victim = (pick % (history.len() as u64 - 1)) as usize;
        let (start, end) = (history[victim].0 as usize, history[victim + 1].0 as usize);
        let record = bytes[start..end].to_vec();
        bytes.extend_from_slice(&record);
        std::fs::write(&wal, &bytes).expect("append duplicate");

        match reopen_checked(&root, "stale duplicate")? {
            Some(state) => prop_assert_eq!(
                state,
                history.last().expect("non-empty history").1.clone(),
                "a stale duplicate must be skipped, not applied"
            ),
            None => return Err(TestCaseError::fail("stale duplicate must not fail the open")),
        }
        let _ = std::fs::remove_dir_all(root);
    }
}
