//! The write-ahead catalog journal.
//!
//! Every catalog mutation appends one length-prefixed, checksummed,
//! sequence-numbered record to `catalog.wal` and `fsync`s it **before** the
//! mutation is acknowledged to the caller. Reopening the catalog replays the
//! journal on top of the last checkpoint (`catalog.json`), truncating a torn
//! tail (a record cut short by a crash, or whose checksum no longer matches)
//! at the first invalid byte. Once the journal grows past a threshold it is
//! folded back into `catalog.json` (checkpoint: write-temp, fsync file and
//! parent directory, rename) and reset — so steady-state mutation cost is an
//! `O(record)` append instead of the `O(catalog)` full rewrite the previous
//! design paid on every mutation.
//!
//! # On-disk format
//!
//! ```text
//! wal      = magic record*
//! magic    = "VSSWAL1\n"                   (8 bytes)
//! record   = len:u32le crc:u32le seq:u64le payload
//! payload  = one JSON-encoded WalRecord    (len bytes)
//! crc      = CRC-32 (IEEE) over seq_le ++ payload
//! ```
//!
//! `seq` increases by exactly 1 per record; the checkpoint stores the last
//! folded sequence number, so records that were already folded (a crash
//! between checkpoint-rename and journal-reset) are recognized as stale and
//! skipped on replay instead of being applied twice.

use crate::fault::{self, WriteOutcome};
use crate::CatalogError;
use serde::json::Value;
use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Read, Seek, Write};
use std::path::{Path, PathBuf};

/// File name of the journal within the catalog root.
pub const WAL_FILE: &str = "catalog.wal";

const WAL_MAGIC: &[u8; 8] = b"VSSWAL1\n";
const RECORD_HEADER: usize = 4 + 4 + 8;

/// Upper bound on one record's payload; a length prefix beyond this is
/// treated as a torn/corrupt tail rather than an allocation request.
const MAX_RECORD_BYTES: u32 = 1 << 20;

// --- CRC-32 (IEEE 802.3) ----------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `seq || payload` — the per-record checksum.
fn record_crc(seq: u64, payload: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in seq.to_le_bytes().iter().chain(payload) {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

// --- records ----------------------------------------------------------------

/// One journaled catalog mutation. Records carry everything replay needs to
/// reconstruct the in-memory state deterministically; GOP *data* never
/// enters the journal (the bytes are made durable in their own files before
/// the record is appended).
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A logical video was created.
    CreateVideo {
        /// Logical video name.
        name: String,
    },
    /// A logical video and all its physical data were deleted.
    DeleteVideo {
        /// Logical video name.
        name: String,
    },
    /// A physical video was registered.
    AddPhysical {
        /// Owning logical video.
        video: String,
        /// Assigned physical video id.
        id: u64,
        /// Width in pixels.
        width: u32,
        /// Height in pixels.
        height: u32,
        /// Frame rate in frames per second.
        frame_rate: f64,
        /// Codec name.
        codec: String,
        /// Whether this is the original representation.
        is_original: bool,
        /// Quality (MSE) bound relative to the original.
        mse_bound: f64,
    },
    /// A physical video was removed.
    RemovePhysical {
        /// Owning logical video.
        video: String,
        /// Physical video id.
        id: u64,
    },
    /// A GOP file was persisted and its metadata recorded.
    AppendGop {
        /// Owning logical video.
        video: String,
        /// Owning physical video id.
        physical: u64,
        /// GOP index (also the file stem).
        index: u64,
        /// Start time in seconds.
        start_time: f64,
        /// End time in seconds.
        end_time: f64,
        /// Frames in the GOP.
        frame_count: usize,
        /// Bytes on disk.
        byte_len: u64,
        /// Deferred-compression level, if applied.
        lossless_level: Option<u8>,
        /// Access-clock value at append time (keeps recency monotonic
        /// across replay).
        clock: u64,
    },
    /// A GOP file was rewritten in place (deferred compression, compaction).
    RewriteGop {
        /// Owning logical video.
        video: String,
        /// Owning physical video id.
        physical: u64,
        /// GOP index.
        index: u64,
        /// New size on disk.
        byte_len: u64,
        /// New deferred-compression level.
        lossless_level: Option<u8>,
    },
    /// A GOP file and its record were removed (eviction).
    RemoveGop {
        /// Owning logical video.
        video: String,
        /// Owning physical video id.
        physical: u64,
        /// GOP index.
        index: u64,
    },
    /// A logical video's storage budget was set.
    SetBudget {
        /// Logical video name.
        video: String,
        /// New budget (`None` reverts to "unset").
        bytes: Option<u64>,
    },
    /// A physical video's quality bound was updated (compaction).
    SetMseBound {
        /// Owning logical video.
        video: String,
        /// Physical video id.
        physical: u64,
        /// New MSE bound.
        bound: f64,
    },
}

fn object(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn get<'a>(map: &'a BTreeMap<String, Value>, key: &str) -> Result<&'a Value, String> {
    map.get(key).ok_or_else(|| format!("WAL record missing field '{key}'"))
}

fn field<T: serde::Deserialize>(map: &BTreeMap<String, Value>, key: &str) -> Result<T, String> {
    T::from_value(get(map, key)?).map_err(|e| format!("WAL field '{key}': {e}"))
}

impl serde::Serialize for WalRecord {
    fn to_value(&self) -> Value {
        match self {
            WalRecord::CreateVideo { name } => {
                object(vec![("op", "create-video".to_value()), ("name", name.to_value())])
            }
            WalRecord::DeleteVideo { name } => {
                object(vec![("op", "delete-video".to_value()), ("name", name.to_value())])
            }
            WalRecord::AddPhysical {
                video,
                id,
                width,
                height,
                frame_rate,
                codec,
                is_original,
                mse_bound,
            } => object(vec![
                ("op", "add-physical".to_value()),
                ("video", video.to_value()),
                ("id", id.to_value()),
                ("width", width.to_value()),
                ("height", height.to_value()),
                ("frame_rate", frame_rate.to_value()),
                ("codec", codec.to_value()),
                ("is_original", is_original.to_value()),
                ("mse_bound", mse_bound.to_value()),
            ]),
            WalRecord::RemovePhysical { video, id } => object(vec![
                ("op", "remove-physical".to_value()),
                ("video", video.to_value()),
                ("id", id.to_value()),
            ]),
            WalRecord::AppendGop {
                video,
                physical,
                index,
                start_time,
                end_time,
                frame_count,
                byte_len,
                lossless_level,
                clock,
            } => object(vec![
                ("op", "append-gop".to_value()),
                ("video", video.to_value()),
                ("physical", physical.to_value()),
                ("index", index.to_value()),
                ("start_time", start_time.to_value()),
                ("end_time", end_time.to_value()),
                ("frame_count", frame_count.to_value()),
                ("byte_len", byte_len.to_value()),
                ("lossless_level", lossless_level.to_value()),
                ("clock", clock.to_value()),
            ]),
            WalRecord::RewriteGop { video, physical, index, byte_len, lossless_level } => {
                object(vec![
                    ("op", "rewrite-gop".to_value()),
                    ("video", video.to_value()),
                    ("physical", physical.to_value()),
                    ("index", index.to_value()),
                    ("byte_len", byte_len.to_value()),
                    ("lossless_level", lossless_level.to_value()),
                ])
            }
            WalRecord::RemoveGop { video, physical, index } => object(vec![
                ("op", "remove-gop".to_value()),
                ("video", video.to_value()),
                ("physical", physical.to_value()),
                ("index", index.to_value()),
            ]),
            WalRecord::SetBudget { video, bytes } => object(vec![
                ("op", "set-budget".to_value()),
                ("video", video.to_value()),
                ("bytes", bytes.to_value()),
            ]),
            WalRecord::SetMseBound { video, physical, bound } => object(vec![
                ("op", "set-mse-bound".to_value()),
                ("video", video.to_value()),
                ("physical", physical.to_value()),
                ("bound", bound.to_value()),
            ]),
        }
    }
}

impl serde::Deserialize for WalRecord {
    fn from_value(value: &Value) -> Result<Self, String> {
        let map = value.as_object().ok_or("WAL record is not an object")?;
        let op: String = field(map, "op")?;
        match op.as_str() {
            "create-video" => Ok(WalRecord::CreateVideo { name: field(map, "name")? }),
            "delete-video" => Ok(WalRecord::DeleteVideo { name: field(map, "name")? }),
            "add-physical" => Ok(WalRecord::AddPhysical {
                video: field(map, "video")?,
                id: field(map, "id")?,
                width: field(map, "width")?,
                height: field(map, "height")?,
                frame_rate: field(map, "frame_rate")?,
                codec: field(map, "codec")?,
                is_original: field(map, "is_original")?,
                mse_bound: field(map, "mse_bound")?,
            }),
            "remove-physical" => Ok(WalRecord::RemovePhysical {
                video: field(map, "video")?,
                id: field(map, "id")?,
            }),
            "append-gop" => Ok(WalRecord::AppendGop {
                video: field(map, "video")?,
                physical: field(map, "physical")?,
                index: field(map, "index")?,
                start_time: field(map, "start_time")?,
                end_time: field(map, "end_time")?,
                frame_count: field(map, "frame_count")?,
                byte_len: field(map, "byte_len")?,
                lossless_level: field(map, "lossless_level")?,
                clock: field(map, "clock")?,
            }),
            "rewrite-gop" => Ok(WalRecord::RewriteGop {
                video: field(map, "video")?,
                physical: field(map, "physical")?,
                index: field(map, "index")?,
                byte_len: field(map, "byte_len")?,
                lossless_level: field(map, "lossless_level")?,
            }),
            "remove-gop" => Ok(WalRecord::RemoveGop {
                video: field(map, "video")?,
                physical: field(map, "physical")?,
                index: field(map, "index")?,
            }),
            "set-budget" => Ok(WalRecord::SetBudget {
                video: field(map, "video")?,
                bytes: field(map, "bytes")?,
            }),
            "set-mse-bound" => Ok(WalRecord::SetMseBound {
                video: field(map, "video")?,
                physical: field(map, "physical")?,
                bound: field(map, "bound")?,
            }),
            other => Err(format!("unknown WAL op '{other}'")),
        }
    }
}

// --- replay -----------------------------------------------------------------

/// What [`scan`] found in a journal's bytes.
pub(crate) struct WalScan {
    /// Fully valid `(seq, record)` pairs, in file order.
    pub records: Vec<(u64, WalRecord)>,
    /// Byte offset at which valid data ends. Anything past it is a torn
    /// tail to be truncated.
    pub valid_len: u64,
}

/// Parses a journal's bytes into records, stopping at the first torn or
/// checksum-invalid record (everything before it is intact — CRC-verified —
/// so truncating at `valid_len` loses nothing that was ever acknowledged
/// durable and then not superseded).
///
/// Returns a typed [`CatalogError::Corrupt`] only for damage that cannot be
/// explained by a torn write: a bad magic header, or a CRC-valid record whose
/// payload fails to parse (bytes intact but meaningless — a software bug or
/// tampering, where silently dropping data would be wrong).
pub(crate) fn scan(bytes: &[u8]) -> Result<WalScan, CatalogError> {
    if bytes.len() < WAL_MAGIC.len() {
        // File cut short inside the magic: torn at creation, nothing to keep.
        return Ok(WalScan { records: Vec::new(), valid_len: 0 });
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(CatalogError::Corrupt("WAL magic header mismatch".into()));
    }
    let mut records = Vec::new();
    let mut offset = WAL_MAGIC.len();
    loop {
        let remaining = &bytes[offset..];
        if remaining.len() < RECORD_HEADER {
            break; // torn (or clean end) inside a record header
        }
        let len = u32::from_le_bytes(remaining[..4].try_into().expect("4 bytes"));
        if len > MAX_RECORD_BYTES {
            break; // implausible length: treat as torn tail
        }
        let crc = u32::from_le_bytes(remaining[4..8].try_into().expect("4 bytes"));
        let seq = u64::from_le_bytes(remaining[8..16].try_into().expect("8 bytes"));
        let total = RECORD_HEADER + len as usize;
        if remaining.len() < total {
            break; // payload cut short
        }
        let payload = &remaining[RECORD_HEADER..total];
        if record_crc(seq, payload) != crc {
            break; // bit rot or torn overwrite: stop here
        }
        let text = std::str::from_utf8(payload)
            .map_err(|_| CatalogError::Corrupt("WAL payload is not UTF-8".into()))?;
        let record: WalRecord = serde_json::from_str(text)
            .map_err(|e| CatalogError::Corrupt(format!("WAL record {seq}: {e}")))?;
        records.push((seq, record));
        offset += total;
    }
    Ok(WalScan { records, valid_len: offset as u64 })
}

// --- the append handle ------------------------------------------------------

/// Process-wide journal telemetry (`wal.journal.*`), cached so the durable
/// mutation path never takes the registry lock.
mod metrics {
    use std::sync::OnceLock;

    /// End-to-end latency of one durable record append (encode + write +
    /// fsync).
    pub(super) fn append() -> &'static vss_telemetry::Histogram {
        static H: OnceLock<&'static vss_telemetry::Histogram> = OnceLock::new();
        H.get_or_init(|| vss_telemetry::histogram("wal.journal.append_ns"))
    }

    /// Latency of the `fsync` that makes one appended frame durable.
    pub(super) fn fsync() -> &'static vss_telemetry::Histogram {
        static H: OnceLock<&'static vss_telemetry::Histogram> = OnceLock::new();
        H.get_or_init(|| vss_telemetry::histogram("wal.journal.fsync_ns"))
    }

    /// Checkpoints taken (journal folded into the catalog and reset).
    pub(super) fn checkpoints() -> &'static vss_telemetry::Counter {
        static C: OnceLock<&'static vss_telemetry::Counter> = OnceLock::new();
        C.get_or_init(|| vss_telemetry::counter("wal.journal.checkpoints"))
    }
}

/// The open journal: an append handle plus the bookkeeping needed to keep
/// appends atomic-or-rolled-back from the caller's point of view.
#[derive(Debug)]
pub(crate) struct Wal {
    path: PathBuf,
    file: fs::File,
    /// Bytes of fully acknowledged records (file length, barring a failed
    /// append that could not be rolled back — see `poisoned`).
    len: u64,
    /// Set when a failed append could not be truncated away; every further
    /// append is refused so the torn tail cannot be buried under newer
    /// records (replay would drop those records with the tail).
    poisoned: bool,
}

impl Wal {
    /// Opens (creating or truncating as directed) the journal at
    /// `root/catalog.wal` for appending. `valid_len` is the end of valid
    /// data as determined by [`scan`]; anything past it is truncated now.
    pub(crate) fn open(root: &Path, valid_len: Option<u64>) -> io::Result<Self> {
        let path = root.join(WAL_FILE);
        let fresh = !path.exists();
        let mut file = fs::OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;
        let mut len = file.metadata()?.len();
        if fresh || len < WAL_MAGIC.len() as u64 {
            // New journal (or one torn inside its header): start clean.
            file.set_len(0)?;
            file.seek(io::SeekFrom::Start(0))?;
            file.write_all(WAL_MAGIC)?;
            fault::on_sync(&path)?;
            file.sync_all()?;
            crate::durable::fsync_dir(root)?;
            len = WAL_MAGIC.len() as u64;
        } else if let Some(valid) = valid_len {
            if valid < len {
                file.set_len(valid)?;
                fault::on_sync(&path)?;
                file.sync_all()?;
                len = valid;
            }
        }
        file.seek(io::SeekFrom::Start(len))?;
        Ok(Self { path, file, len, poisoned: false })
    }

    /// Bytes currently in the journal (records + header).
    pub(crate) fn len(&self) -> u64 {
        self.len
    }

    /// Appends one record and `fsync`s it. On success the record is durable.
    /// On failure the journal is rolled back to its pre-append length (or
    /// poisoned if even that fails), so a failed mutation can never leave a
    /// half-written record for later appends to bury.
    pub(crate) fn append(&mut self, seq: u64, record: &WalRecord) -> io::Result<()> {
        if self.poisoned {
            return Err(io::Error::other(
                "catalog WAL is poisoned by an earlier unrecoverable append failure",
            ));
        }
        let payload = serde_json::to_string(record)
            .map_err(|e| io::Error::other(format!("WAL encode: {e}")))?
            .into_bytes();
        let mut frame = Vec::with_capacity(RECORD_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&record_crc(seq, &payload).to_le_bytes());
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend_from_slice(&payload);
        let started = std::time::Instant::now();
        let outcome = self.append_frame(&frame);
        metrics::append().record_duration(started.elapsed());
        match outcome {
            Ok(()) => {
                self.len += frame.len() as u64;
                Ok(())
            }
            Err(error) => {
                // Roll the file back to the last acknowledged record.
                let rolled_back = self
                    .file
                    .set_len(self.len)
                    .and_then(|()| self.file.seek(io::SeekFrom::Start(self.len)))
                    .is_ok();
                if !rolled_back {
                    self.poisoned = true;
                }
                Err(error)
            }
        }
    }

    fn append_frame(&mut self, frame: &[u8]) -> io::Result<()> {
        match fault::on_write(&self.path, frame.len())? {
            WriteOutcome::Proceed => self.file.write_all(frame)?,
            WriteOutcome::Tear(keep) => {
                self.file.write_all(&frame[..keep])?;
                let _ = self.file.sync_all();
                return Err(io::Error::other(format!(
                    "injected fault: WAL append torn after {keep} bytes"
                )));
            }
            WriteOutcome::Fail => unreachable!("on_write reports failures as errors"),
        }
        fault::on_sync(&self.path)?;
        let started = std::time::Instant::now();
        let outcome = self.file.sync_all();
        metrics::fsync().record_duration(started.elapsed());
        outcome
    }

    /// Resets the journal to just its header (after a checkpoint folded the
    /// records into `catalog.json`).
    pub(crate) fn reset(&mut self) -> io::Result<()> {
        metrics::checkpoints().incr();
        self.file.set_len(WAL_MAGIC.len() as u64)?;
        self.file.seek(io::SeekFrom::Start(WAL_MAGIC.len() as u64))?;
        fault::on_sync(&self.path)?;
        self.file.sync_all()?;
        self.len = WAL_MAGIC.len() as u64;
        self.poisoned = false;
        Ok(())
    }
}

/// Reads a journal file fully (empty result if it does not exist).
pub(crate) fn read_wal_bytes(root: &Path) -> io::Result<Option<Vec<u8>>> {
    let path = root.join(WAL_FILE);
    if !path.exists() {
        return Ok(None);
    }
    let mut bytes = Vec::new();
    fs::File::open(&path)?.read_to_end(&mut bytes)?;
    Ok(Some(bytes))
}

/// What `Catalog::open` found and fixed while bringing the store back to a
/// consistent state: journal replay (with any torn tail truncated) followed
/// by reconciliation of the catalog against the GOP files actually on disk.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Whether a `catalog.json` checkpoint existed and was loaded.
    pub checkpoint_loaded: bool,
    /// Journal records applied on top of the checkpoint.
    pub wal_records_replayed: usize,
    /// Journal records skipped because the checkpoint already contained
    /// them (a crash between checkpoint and journal reset).
    pub wal_records_stale: usize,
    /// Bytes of torn journal tail truncated.
    pub torn_bytes_truncated: u64,
    /// GOP files (and leftover `.tmp` files) on disk with no catalog entry,
    /// deleted.
    pub orphan_files_removed: usize,
    /// Directories on disk belonging to no catalog entry, deleted.
    pub orphan_dirs_removed: usize,
    /// Catalog GOP records dropped because their file was missing or
    /// unreadable.
    pub gop_records_dropped: usize,
    /// Catalog GOP records whose size metadata was repaired from a valid
    /// on-disk file (a crash between a GOP rewrite and its journal record).
    pub gop_records_healed: usize,
}

impl RecoveryReport {
    /// True if recovery changed the catalog state (as opposed to merely
    /// replaying the journal).
    pub fn repaired_anything(&self) -> bool {
        self.orphan_files_removed > 0
            || self.orphan_dirs_removed > 0
            || self.gop_records_dropped > 0
            || self.gop_records_healed > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::CreateVideo { name: "v".into() },
            WalRecord::AddPhysical {
                video: "v".into(),
                id: 0,
                width: 64,
                height: 48,
                frame_rate: 30.0,
                codec: "h264".into(),
                is_original: true,
                mse_bound: 0.0,
            },
            WalRecord::AppendGop {
                video: "v".into(),
                physical: 0,
                index: 0,
                start_time: 0.0,
                end_time: 1.0,
                frame_count: 30,
                byte_len: 1234,
                lossless_level: Some(3),
                clock: 7,
            },
            WalRecord::RewriteGop {
                video: "v".into(),
                physical: 0,
                index: 0,
                byte_len: 99,
                lossless_level: None,
            },
            WalRecord::SetBudget { video: "v".into(), bytes: Some(1 << 20) },
            WalRecord::SetMseBound { video: "v".into(), physical: 0, bound: 1.5 },
            WalRecord::RemoveGop { video: "v".into(), physical: 0, index: 0 },
            WalRecord::RemovePhysical { video: "v".into(), id: 0 },
            WalRecord::DeleteVideo { name: "v".into() },
            WalRecord::SetBudget { video: "v".into(), bytes: None },
        ]
    }

    #[test]
    fn records_round_trip_through_json() {
        for record in sample_records() {
            let text = serde_json::to_string(&record).unwrap();
            let back: WalRecord = serde_json::from_str(&text).unwrap();
            assert_eq!(back, record, "round trip of {text}");
        }
    }

    fn encode(records: &[WalRecord]) -> Vec<u8> {
        let mut bytes = WAL_MAGIC.to_vec();
        for (i, record) in records.iter().enumerate() {
            let payload = serde_json::to_string(record).unwrap().into_bytes();
            let seq = (i + 1) as u64;
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&record_crc(seq, &payload).to_le_bytes());
            bytes.extend_from_slice(&seq.to_le_bytes());
            bytes.extend_from_slice(&payload);
        }
        bytes
    }

    #[test]
    fn scan_reads_back_every_record() {
        let records = sample_records();
        let bytes = encode(&records);
        let scanned = scan(&bytes).unwrap();
        assert_eq!(scanned.valid_len, bytes.len() as u64);
        assert_eq!(scanned.records.len(), records.len());
        for (i, (seq, record)) in scanned.records.iter().enumerate() {
            assert_eq!(*seq, (i + 1) as u64);
            assert_eq!(record, &records[i]);
        }
    }

    #[test]
    fn truncation_at_any_offset_yields_a_valid_prefix() {
        let records = sample_records();
        let bytes = encode(&records);
        let mut boundaries = vec![WAL_MAGIC.len()];
        let full = scan(&bytes).unwrap();
        assert_eq!(full.records.len(), records.len());
        // Record end offsets, for checking the prefix property.
        let mut offset = WAL_MAGIC.len();
        for record in &records {
            let payload = serde_json::to_string(record).unwrap().len();
            offset += RECORD_HEADER + payload;
            boundaries.push(offset);
        }
        for cut in 0..bytes.len() {
            let scanned = scan(&bytes[..cut]).unwrap();
            // The number of complete records before the cut:
            let expected = boundaries.iter().filter(|&&b| b <= cut).count().saturating_sub(1);
            assert_eq!(scanned.records.len(), expected, "cut at {cut}");
            assert!(scanned.valid_len <= cut as u64);
            for (i, (_, record)) in scanned.records.iter().enumerate() {
                assert_eq!(record, &records[i], "prefix intact at cut {cut}");
            }
        }
    }

    #[test]
    fn bit_flips_never_panic_and_never_corrupt_the_prefix() {
        let records = sample_records();
        let bytes = encode(&records);
        for position in 0..bytes.len() {
            for bit in [0u8, 3, 7] {
                let mut mutated = bytes.clone();
                mutated[position] ^= 1 << bit;
                match scan(&mutated) {
                    Ok(scanned) => {
                        // Every surviving record must equal the original at
                        // its position: a flip can only truncate, never
                        // silently alter content (CRC guards payloads; a
                        // flip inside JSON that still CRC-matches is
                        // impossible since the CRC covers the payload).
                        for (i, (_, record)) in scanned.records.iter().enumerate() {
                            assert_eq!(record, &records[i], "flip at {position} bit {bit}");
                        }
                    }
                    Err(CatalogError::Corrupt(_)) => {} // typed, acceptable
                    Err(other) => panic!("unexpected error kind: {other}"),
                }
            }
        }
    }

    #[test]
    fn random_garbage_is_rejected_or_empty_never_a_panic() {
        // Deterministic xorshift garbage of assorted lengths.
        let mut x = 0x12345678u64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for len in [0usize, 1, 7, 8, 9, 16, 64, 500] {
            let garbage: Vec<u8> = (0..len).map(|_| step() as u8).collect();
            match scan(&garbage) {
                Ok(scanned) => assert!(scanned.records.is_empty() || !garbage.is_empty()),
                Err(CatalogError::Corrupt(_)) => {}
                Err(other) => panic!("unexpected error kind: {other}"),
            }
        }
    }

    #[test]
    fn implausible_length_prefix_is_a_torn_tail_not_an_allocation() {
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd length
        bytes.extend_from_slice(&[0u8; 12]);
        let scanned = scan(&bytes).unwrap();
        assert!(scanned.records.is_empty());
        assert_eq!(scanned.valid_len, WAL_MAGIC.len() as u64);
    }

    #[test]
    fn wrong_magic_is_a_typed_error() {
        assert!(matches!(scan(b"NOTAWAL!rest"), Err(CatalogError::Corrupt(_))));
    }
}
