//! # vss-catalog
//!
//! On-disk layout, metadata catalog and temporal index for the VSS
//! reproduction.
//!
//! The paper's prototype persists GOPs as individual files beneath a
//! per-physical-video directory (e.g. `traffic/1920x1080r30.hevc/1`) and
//! keeps a non-clustered temporal index in SQLite mapping time to the file
//! holding the associated visual information (paper Figure 2). This crate
//! provides the same mechanism:
//!
//! * [`Catalog`] — the metadata store. All logical/physical video and GOP
//!   records live in a single JSON document that is rewritten atomically
//!   (write-temp-then-rename) on every mutation, standing in for SQLite.
//! * [`records`] — the record types ([`LogicalVideoRecord`],
//!   [`PhysicalVideoRecord`], [`GopRecord`]) with temporal-index queries.
//! * GOP file I/O — writing, reading and deleting the per-GOP files laid out
//!   under `<root>/<video>/<WxH>r<fps>.<codec>.<id>/<gop#>.gop`.
//!
//! Policy (what to cache, what to evict, how to answer reads) lives above
//! this crate in `vss-core`; the catalog only records and retrieves state.

#![warn(missing_docs)]

pub mod records;

pub use records::{AtomicClock, GopRecord, LogicalVideoRecord, PhysicalVideoId, PhysicalVideoRecord};

use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Errors produced by catalog operations.
#[derive(Debug)]
pub enum CatalogError {
    /// An I/O error while reading or writing catalog state or GOP files.
    Io(std::io::Error),
    /// The persisted catalog JSON could not be parsed.
    Corrupt(String),
    /// A logical video with this name already exists.
    VideoExists(String),
    /// No logical video with this name exists.
    VideoNotFound(String),
    /// No physical video with this id exists in the named logical video.
    PhysicalNotFound(PhysicalVideoId),
    /// No GOP with this index exists in the physical video.
    GopNotFound {
        /// Physical video id.
        physical: PhysicalVideoId,
        /// GOP index.
        index: u64,
    },
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::Io(e) => write!(f, "catalog I/O error: {e}"),
            CatalogError::Corrupt(msg) => write!(f, "corrupt catalog: {msg}"),
            CatalogError::VideoExists(name) => write!(f, "video '{name}' already exists"),
            CatalogError::VideoNotFound(name) => write!(f, "video '{name}' not found"),
            CatalogError::PhysicalNotFound(id) => write!(f, "physical video {id} not found"),
            CatalogError::GopNotFound { physical, index } => {
                write!(f, "GOP {index} of physical video {physical} not found")
            }
        }
    }
}

impl std::error::Error for CatalogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CatalogError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CatalogError {
    fn from(e: std::io::Error) -> Self {
        CatalogError::Io(e)
    }
}

#[derive(Debug, Default, serde::Serialize, serde::Deserialize)]
struct CatalogState {
    /// Monotonically increasing id generator for physical videos.
    next_physical_id: PhysicalVideoId,
    /// Logical access clock used for recency bookkeeping. Atomic so
    /// read-only sessions can tick it through a shared reference.
    access_clock: AtomicClock,
    /// Logical videos by name.
    videos: BTreeMap<String, LogicalVideoRecord>,
}

/// The VSS metadata catalog and GOP file store rooted at a directory.
#[derive(Debug)]
pub struct Catalog {
    root: PathBuf,
    state: CatalogState,
}

const CATALOG_FILE: &str = "catalog.json";

impl Catalog {
    /// Opens (or initializes) a catalog rooted at `root`. The directory is
    /// created if missing; existing state is loaded from `catalog.json`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, CatalogError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        let path = root.join(CATALOG_FILE);
        let state = if path.exists() {
            let data = fs::read_to_string(&path)?;
            serde_json::from_str(&data).map_err(|e| CatalogError::Corrupt(e.to_string()))?
        } else {
            CatalogState::default()
        };
        Ok(Self { root, state })
    }

    /// The catalog's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Persists the catalog state atomically (write to a temporary file in
    /// the same directory, then rename over the previous version).
    pub fn persist(&self) -> Result<(), CatalogError> {
        let serialized = serde_json::to_string_pretty(&self.state)
            .map_err(|e| CatalogError::Corrupt(e.to_string()))?;
        let tmp = self.root.join(format!("{CATALOG_FILE}.tmp"));
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(serialized.as_bytes())?;
            file.sync_all()?;
        }
        fs::rename(&tmp, self.root.join(CATALOG_FILE))?;
        Ok(())
    }

    /// Advances and returns the logical access clock (used for LRU
    /// sequence numbers). Takes `&self`: recency bookkeeping is the one
    /// catalog mutation read-only sessions perform, and it goes through
    /// atomics so a shared lock suffices.
    pub fn tick(&self) -> u64 {
        self.state.access_clock.increment()
    }

    /// The current value of the access clock.
    pub fn clock(&self) -> u64 {
        self.state.access_clock.get()
    }

    // --- logical videos ---------------------------------------------------

    /// Creates a new logical video. Fails if the name is already in use.
    pub fn create_video(&mut self, name: &str) -> Result<(), CatalogError> {
        if self.state.videos.contains_key(name) {
            return Err(CatalogError::VideoExists(name.to_string()));
        }
        self.state.videos.insert(name.to_string(), LogicalVideoRecord::new(name));
        fs::create_dir_all(self.root.join(name))?;
        Ok(())
    }

    /// Deletes a logical video and all of its on-disk data.
    pub fn delete_video(&mut self, name: &str) -> Result<(), CatalogError> {
        if self.state.videos.remove(name).is_none() {
            return Err(CatalogError::VideoNotFound(name.to_string()));
        }
        let dir = self.root.join(name);
        if dir.exists() {
            fs::remove_dir_all(dir)?;
        }
        Ok(())
    }

    /// Names of all logical videos.
    pub fn video_names(&self) -> Vec<String> {
        self.state.videos.keys().cloned().collect()
    }

    /// Borrows a logical video record.
    pub fn video(&self, name: &str) -> Result<&LogicalVideoRecord, CatalogError> {
        self.state.videos.get(name).ok_or_else(|| CatalogError::VideoNotFound(name.to_string()))
    }

    /// Mutably borrows a logical video record.
    pub fn video_mut(&mut self, name: &str) -> Result<&mut LogicalVideoRecord, CatalogError> {
        self.state.videos.get_mut(name).ok_or_else(|| CatalogError::VideoNotFound(name.to_string()))
    }

    /// True if a logical video with this name exists.
    pub fn contains_video(&self, name: &str) -> bool {
        self.state.videos.contains_key(name)
    }

    // --- physical videos ---------------------------------------------------

    /// Registers a new (initially GOP-less) physical video under a logical
    /// video and creates its directory. Returns the assigned id.
    #[allow(clippy::too_many_arguments)]
    pub fn add_physical(
        &mut self,
        video: &str,
        width: u32,
        height: u32,
        frame_rate: f64,
        codec: &str,
        is_original: bool,
        mse_bound: f64,
    ) -> Result<PhysicalVideoId, CatalogError> {
        if !self.state.videos.contains_key(video) {
            return Err(CatalogError::VideoNotFound(video.to_string()));
        }
        let id = self.state.next_physical_id;
        self.state.next_physical_id += 1;
        let record = PhysicalVideoRecord {
            id,
            width,
            height,
            frame_rate,
            codec: codec.to_string(),
            is_original,
            mse_bound,
            gops: Vec::new(),
        };
        let dir = self.root.join(video).join(record.directory_name());
        fs::create_dir_all(dir)?;
        self.state.videos.get_mut(video).expect("checked above").physical.push(record);
        Ok(id)
    }

    /// Removes a physical video's record and files.
    pub fn remove_physical(&mut self, video: &str, id: PhysicalVideoId) -> Result<(), CatalogError> {
        let root = self.root.clone();
        let record = self.video_mut(video)?;
        let Some(pos) = record.physical.iter().position(|p| p.id == id) else {
            return Err(CatalogError::PhysicalNotFound(id));
        };
        let removed = record.physical.remove(pos);
        let dir = root.join(video).join(removed.directory_name());
        if dir.exists() {
            fs::remove_dir_all(dir)?;
        }
        Ok(())
    }

    // --- GOP files ---------------------------------------------------------

    /// Path of a GOP file.
    pub fn gop_path(&self, video: &str, physical: &PhysicalVideoRecord, index: u64) -> PathBuf {
        self.root.join(video).join(physical.directory_name()).join(format!("{index}.gop"))
    }

    /// Writes a GOP's bytes to disk and records its metadata. The GOP is
    /// appended to the physical video's GOP list (callers write GOPs in
    /// temporal order).
    #[allow(clippy::too_many_arguments)]
    pub fn append_gop(
        &mut self,
        video: &str,
        physical_id: PhysicalVideoId,
        start_time: f64,
        end_time: f64,
        frame_count: usize,
        data: &[u8],
        lossless_level: Option<u8>,
    ) -> Result<u64, CatalogError> {
        let clock = self.tick();
        let root = self.root.clone();
        let video_name = video.to_string();
        let record = self.video_mut(video)?;
        let physical = record
            .physical_by_id_mut(physical_id)
            .ok_or(CatalogError::PhysicalNotFound(physical_id))?;
        let index = physical.gops.last().map_or(0, |g| g.index + 1);
        let dir = root.join(&video_name).join(physical.directory_name());
        fs::create_dir_all(&dir)?;
        fs::write(dir.join(format!("{index}.gop")), data)?;
        physical.gops.push(GopRecord {
            index,
            start_time,
            end_time,
            frame_count,
            byte_len: data.len() as u64,
            lossless_level,
            last_access: AtomicClock::new(clock),
            duplicate_of: None,
        });
        Ok(index)
    }

    /// Reads a GOP file's bytes.
    pub fn read_gop(
        &self,
        video: &str,
        physical_id: PhysicalVideoId,
        index: u64,
    ) -> Result<Vec<u8>, CatalogError> {
        let record = self.video(video)?;
        let physical =
            record.physical_by_id(physical_id).ok_or(CatalogError::PhysicalNotFound(physical_id))?;
        if physical.gop_by_index(index).is_none() {
            return Err(CatalogError::GopNotFound { physical: physical_id, index });
        }
        Ok(fs::read(self.gop_path(video, physical, index))?)
    }

    /// Overwrites a GOP file's bytes and updates its recorded size and
    /// lossless level (used by deferred compression and compaction).
    pub fn rewrite_gop(
        &mut self,
        video: &str,
        physical_id: PhysicalVideoId,
        index: u64,
        data: &[u8],
        lossless_level: Option<u8>,
    ) -> Result<(), CatalogError> {
        let root = self.root.clone();
        let video_name = video.to_string();
        let record = self.video_mut(video)?;
        let physical = record
            .physical_by_id_mut(physical_id)
            .ok_or(CatalogError::PhysicalNotFound(physical_id))?;
        let dir_name = physical.directory_name();
        let gop = physical
            .gop_by_index_mut(index)
            .ok_or(CatalogError::GopNotFound { physical: physical_id, index })?;
        fs::write(root.join(&video_name).join(dir_name).join(format!("{index}.gop")), data)?;
        gop.byte_len = data.len() as u64;
        gop.lossless_level = lossless_level;
        Ok(())
    }

    /// Deletes a GOP file and its record.
    pub fn remove_gop(
        &mut self,
        video: &str,
        physical_id: PhysicalVideoId,
        index: u64,
    ) -> Result<(), CatalogError> {
        let root = self.root.clone();
        let video_name = video.to_string();
        let record = self.video_mut(video)?;
        let physical = record
            .physical_by_id_mut(physical_id)
            .ok_or(CatalogError::PhysicalNotFound(physical_id))?;
        let Some(pos) = physical.gop_position(index) else {
            return Err(CatalogError::GopNotFound { physical: physical_id, index });
        };
        let dir_name = physical.directory_name();
        let gop = physical.gops.remove(pos);
        let path = root.join(&video_name).join(dir_name).join(format!("{}.gop", gop.index));
        if path.exists() {
            fs::remove_file(path)?;
        }
        Ok(())
    }

    /// Marks a GOP as accessed "now" (recency bookkeeping for eviction).
    ///
    /// Takes `&self`: the clocks are [`AtomicClock`]s, so concurrent readers
    /// holding a shared lock can all bump recency without serializing on a
    /// write lock. Racing touches keep the latest timestamp (`fetch_max`).
    pub fn touch_gop(
        &self,
        video: &str,
        physical_id: PhysicalVideoId,
        index: u64,
    ) -> Result<(), CatalogError> {
        let clock = self.tick();
        let record = self.video(video)?;
        let physical = record
            .physical_by_id(physical_id)
            .ok_or(CatalogError::PhysicalNotFound(physical_id))?;
        let gop = physical
            .gop_by_index(index)
            .ok_or(CatalogError::GopNotFound { physical: physical_id, index })?;
        gop.last_access.advance_to(clock);
        Ok(())
    }

    /// Bytes used by all physical representations of a logical video.
    pub fn bytes_used(&self, video: &str) -> Result<u64, CatalogError> {
        Ok(self.video(video)?.bytes_used())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "vss-catalog-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn create_and_reload_catalog() {
        let root = temp_root("reload");
        {
            let mut cat = Catalog::open(&root).unwrap();
            cat.create_video("traffic").unwrap();
            let id = cat.add_physical("traffic", 1920, 1080, 30.0, "hevc", true, 0.0).unwrap();
            cat.append_gop("traffic", id, 0.0, 1.0, 30, b"gop-bytes", None).unwrap();
            cat.persist().unwrap();
        }
        let cat = Catalog::open(&root).unwrap();
        assert!(cat.contains_video("traffic"));
        let video = cat.video("traffic").unwrap();
        assert_eq!(video.physical.len(), 1);
        assert_eq!(video.physical[0].gops.len(), 1);
        assert_eq!(cat.read_gop("traffic", video.physical[0].id, 0).unwrap(), b"gop-bytes");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn duplicate_video_names_are_rejected() {
        let root = temp_root("dup");
        let mut cat = Catalog::open(&root).unwrap();
        cat.create_video("v").unwrap();
        assert!(matches!(cat.create_video("v"), Err(CatalogError::VideoExists(_))));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn missing_entities_produce_specific_errors() {
        let root = temp_root("missing");
        let mut cat = Catalog::open(&root).unwrap();
        assert!(matches!(cat.video("nope"), Err(CatalogError::VideoNotFound(_))));
        assert!(matches!(cat.bytes_used("nope"), Err(CatalogError::VideoNotFound(_))));
        cat.create_video("v").unwrap();
        assert!(matches!(
            cat.append_gop("v", 99, 0.0, 1.0, 30, b"x", None),
            Err(CatalogError::PhysicalNotFound(99))
        ));
        let id = cat.add_physical("v", 64, 64, 30.0, "h264", true, 0.0).unwrap();
        assert!(matches!(
            cat.read_gop("v", id, 5),
            Err(CatalogError::GopNotFound { index: 5, .. })
        ));
        assert!(matches!(cat.remove_physical("v", 7), Err(CatalogError::PhysicalNotFound(7))));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn gop_lifecycle_updates_accounting() {
        let root = temp_root("lifecycle");
        let mut cat = Catalog::open(&root).unwrap();
        cat.create_video("v").unwrap();
        let id = cat.add_physical("v", 64, 64, 30.0, "h264", true, 0.0).unwrap();
        cat.append_gop("v", id, 0.0, 1.0, 30, &[0u8; 100], None).unwrap();
        cat.append_gop("v", id, 1.0, 2.0, 30, &[0u8; 50], None).unwrap();
        assert_eq!(cat.bytes_used("v").unwrap(), 150);
        cat.rewrite_gop("v", id, 1, &[0u8; 20], Some(5)).unwrap();
        assert_eq!(cat.bytes_used("v").unwrap(), 120);
        let video = cat.video("v").unwrap();
        assert_eq!(video.physical[0].gops[1].lossless_level, Some(5));
        cat.remove_gop("v", id, 0).unwrap();
        assert_eq!(cat.bytes_used("v").unwrap(), 20);
        assert!(!cat.gop_path("v", &cat.video("v").unwrap().physical[0], 0).exists());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn touch_advances_recency() {
        let root = temp_root("touch");
        let mut cat = Catalog::open(&root).unwrap();
        cat.create_video("v").unwrap();
        let id = cat.add_physical("v", 64, 64, 30.0, "h264", true, 0.0).unwrap();
        cat.append_gop("v", id, 0.0, 1.0, 30, b"a", None).unwrap();
        let before = cat.video("v").unwrap().physical[0].gops[0].last_access.get();
        // Touching goes through a shared reference (atomic recency).
        let shared: &Catalog = &cat;
        shared.touch_gop("v", id, 0).unwrap();
        let after = cat.video("v").unwrap().physical[0].gops[0].last_access.get();
        assert!(after > before);
        assert!(cat.clock() >= after);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn delete_video_removes_files() {
        let root = temp_root("delete");
        let mut cat = Catalog::open(&root).unwrap();
        cat.create_video("v").unwrap();
        let id = cat.add_physical("v", 64, 64, 30.0, "h264", true, 0.0).unwrap();
        cat.append_gop("v", id, 0.0, 1.0, 30, b"a", None).unwrap();
        assert!(root.join("v").exists());
        cat.delete_video("v").unwrap();
        assert!(!root.join("v").exists());
        assert!(!cat.contains_video("v"));
        assert!(matches!(cat.delete_video("v"), Err(CatalogError::VideoNotFound(_))));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupt_catalog_json_is_reported() {
        let root = temp_root("corrupt");
        fs::create_dir_all(&root).unwrap();
        fs::write(root.join(CATALOG_FILE), b"{ not json").unwrap();
        assert!(matches!(Catalog::open(&root), Err(CatalogError::Corrupt(_))));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn remove_physical_deletes_directory() {
        let root = temp_root("rmphys");
        let mut cat = Catalog::open(&root).unwrap();
        cat.create_video("v").unwrap();
        let id = cat.add_physical("v", 64, 64, 30.0, "h264", false, 1.5).unwrap();
        cat.append_gop("v", id, 0.0, 1.0, 30, b"a", None).unwrap();
        let dir = root.join("v").join(cat.video("v").unwrap().physical[0].directory_name());
        assert!(dir.exists());
        cat.remove_physical("v", id).unwrap();
        assert!(!dir.exists());
        assert!(cat.video("v").unwrap().physical.is_empty());
        fs::remove_dir_all(&root).unwrap();
    }
}
