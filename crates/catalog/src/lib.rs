//! # vss-catalog
//!
//! On-disk layout, metadata catalog and temporal index for the VSS
//! reproduction.
//!
//! The paper's prototype persists GOPs as individual files beneath a
//! per-physical-video directory (e.g. `traffic/1920x1080r30.hevc/1`) and
//! keeps a non-clustered temporal index in SQLite mapping time to the file
//! holding the associated visual information (paper Figure 2). This crate
//! provides the same mechanism:
//!
//! * [`Catalog`] — the metadata store: a write-ahead journal
//!   (`catalog.wal`) of mutation records folded periodically into a JSON
//!   checkpoint (`catalog.json`), standing in for SQLite's transactional
//!   guarantees.
//! * [`records`] — the record types ([`LogicalVideoRecord`],
//!   [`PhysicalVideoRecord`], [`GopRecord`]) with temporal-index queries.
//! * GOP file I/O — writing, reading and deleting the per-GOP files laid out
//!   under `<root>/<video>/<WxH>r<fps>.<codec>.<id>/<gop#>.gop`.
//! * [`durable`] — crash-safe write primitives (temp → fsync → rename →
//!   parent-dir fsync), and [`fault`] — the injection seam the
//!   crash-recovery suite uses to tear and fail them.
//!
//! Policy (what to cache, what to evict, how to answer reads) lives above
//! this crate in `vss-core`; the catalog only records and retrieves state.
//!
//! # Durability contract
//!
//! After any crash — including `kill -9` or a power cut at an arbitrary
//! instruction — reopening the catalog with [`Catalog::open`] yields a
//! consistent store in which:
//!
//! * **Every acknowledged mutation survives.** Before a mutator returns
//!   `Ok`, its journal record has been appended to `catalog.wal` and
//!   `fsync`ed, and any file bytes it promised (a GOP's data) have been
//!   written temp-then-rename with both the file and its parent directory
//!   synced. Replay-on-open reapplies journaled records on top of the last
//!   checkpoint.
//! * **Unacknowledged work disappears cleanly.** A torn journal tail is
//!   truncated at the last valid record; GOP files with no catalog entry
//!   (the crash hit between the file rename and the journal append) are
//!   deleted; catalog entries whose file is missing or unreadable are
//!   dropped; leftover `*.tmp` files are removed. The
//!   [`RecoveryReport`] returned by [`Catalog::recovery_report`] itemizes
//!   everything replayed and repaired.
//! * **What is *not* covered:** recency clocks ([`GopRecord::last_access`])
//!   are advisory and journaled only at GOP append and checkpoint time —
//!   touches between checkpoints may be forgotten, which can change
//!   eviction *order* but never correctness. Direct field mutation through
//!   [`Catalog::video_mut`] bypasses the journal entirely and is only
//!   crash-safe after an explicit [`Catalog::checkpoint`].
//!
//! The journal turns the previous O(catalog) rewrite-per-mutation into an
//! O(record) append; [`Catalog::persist`] now folds the journal into the
//! checkpoint only once it grows past a threshold
//! ([`Catalog::set_checkpoint_threshold`]).

#![warn(missing_docs)]

pub mod durable;
pub mod fault;
pub mod records;
pub mod wal;

pub use records::{AtomicClock, GopRecord, LogicalVideoRecord, PhysicalVideoId, PhysicalVideoRecord};
pub use wal::{RecoveryReport, WalRecord};

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use wal::Wal;

/// Errors produced by catalog operations.
#[derive(Debug)]
pub enum CatalogError {
    /// An I/O error while reading or writing catalog state or GOP files.
    /// Injected faults surface here too, so callers can treat a simulated
    /// disk failure exactly like a real one.
    Io(std::io::Error),
    /// The persisted catalog state (checkpoint or journal) could not be
    /// parsed, or a journal record could not be applied.
    Corrupt(String),
    /// A logical video with this name already exists.
    VideoExists(String),
    /// No logical video with this name exists.
    VideoNotFound(String),
    /// No physical video with this id exists in the named logical video.
    PhysicalNotFound(PhysicalVideoId),
    /// No GOP with this index exists in the physical video.
    GopNotFound {
        /// Physical video id.
        physical: PhysicalVideoId,
        /// GOP index.
        index: u64,
    },
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::Io(e) => write!(f, "catalog I/O error: {e}"),
            CatalogError::Corrupt(msg) => write!(f, "corrupt catalog: {msg}"),
            CatalogError::VideoExists(name) => write!(f, "video '{name}' already exists"),
            CatalogError::VideoNotFound(name) => write!(f, "video '{name}' not found"),
            CatalogError::PhysicalNotFound(id) => write!(f, "physical video {id} not found"),
            CatalogError::GopNotFound { physical, index } => {
                write!(f, "GOP {index} of physical video {physical} not found")
            }
        }
    }
}

impl std::error::Error for CatalogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CatalogError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CatalogError {
    fn from(e: std::io::Error) -> Self {
        CatalogError::Io(e)
    }
}

/// Last-folded journal sequence number stored inside the checkpoint.
///
/// Wrapped in a newtype so checkpoints written before the journal existed
/// (no such field, which the JSON shim surfaces as `null`) load as 0 instead
/// of failing to parse.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct CheckpointSeq(u64);

impl serde::Serialize for CheckpointSeq {
    fn to_value(&self) -> serde::json::Value {
        self.0.to_value()
    }
}

impl serde::Deserialize for CheckpointSeq {
    fn from_value(value: &serde::json::Value) -> Result<Self, String> {
        match value {
            serde::json::Value::Null => Ok(Self(0)),
            other => u64::from_value(other).map(Self),
        }
    }
}

#[derive(Debug, Default, serde::Serialize, serde::Deserialize)]
struct CatalogState {
    /// Monotonically increasing id generator for physical videos.
    next_physical_id: PhysicalVideoId,
    /// Logical access clock used for recency bookkeeping. Atomic so
    /// read-only sessions can tick it through a shared reference.
    access_clock: AtomicClock,
    /// Logical videos by name.
    videos: BTreeMap<String, LogicalVideoRecord>,
    /// Sequence number of the last journal record folded into this
    /// checkpoint; replay skips records at or below it.
    journal_seq: CheckpointSeq,
}

impl CatalogState {
    /// Applies one journal record to the in-memory state. Pure metadata —
    /// no file I/O — so the live mutation path and replay-on-open share it
    /// and cannot drift apart.
    fn apply(&mut self, record: &WalRecord) -> Result<(), String> {
        match record {
            WalRecord::CreateVideo { name } => {
                if self.videos.contains_key(name) {
                    return Err(format!("create of existing video '{name}'"));
                }
                self.videos.insert(name.clone(), LogicalVideoRecord::new(name.clone()));
            }
            WalRecord::DeleteVideo { name } => {
                if self.videos.remove(name).is_none() {
                    return Err(format!("delete of unknown video '{name}'"));
                }
            }
            WalRecord::AddPhysical {
                video,
                id,
                width,
                height,
                frame_rate,
                codec,
                is_original,
                mse_bound,
            } => {
                let record = self
                    .videos
                    .get_mut(video)
                    .ok_or_else(|| format!("add-physical to unknown video '{video}'"))?;
                if record.physical_by_id(*id).is_some() {
                    return Err(format!("add-physical with duplicate id {id}"));
                }
                record.physical.push(PhysicalVideoRecord {
                    id: *id,
                    width: *width,
                    height: *height,
                    frame_rate: *frame_rate,
                    codec: codec.clone(),
                    is_original: *is_original,
                    mse_bound: *mse_bound,
                    gops: Vec::new(),
                });
                self.next_physical_id = self.next_physical_id.max(id + 1);
            }
            WalRecord::RemovePhysical { video, id } => {
                let record = self
                    .videos
                    .get_mut(video)
                    .ok_or_else(|| format!("remove-physical from unknown video '{video}'"))?;
                let Some(pos) = record.physical.iter().position(|p| p.id == *id) else {
                    return Err(format!("remove of unknown physical video {id}"));
                };
                record.physical.remove(pos);
            }
            WalRecord::AppendGop {
                video,
                physical,
                index,
                start_time,
                end_time,
                frame_count,
                byte_len,
                lossless_level,
                clock,
            } => {
                let target = self
                    .videos
                    .get_mut(video)
                    .ok_or_else(|| format!("append-gop to unknown video '{video}'"))?
                    .physical_by_id_mut(*physical)
                    .ok_or_else(|| format!("append-gop to unknown physical video {physical}"))?;
                if target.gops.last().is_some_and(|g| g.index >= *index) {
                    return Err(format!("append-gop with non-monotonic index {index}"));
                }
                target.gops.push(GopRecord {
                    index: *index,
                    start_time: *start_time,
                    end_time: *end_time,
                    frame_count: *frame_count,
                    byte_len: *byte_len,
                    lossless_level: *lossless_level,
                    last_access: AtomicClock::new(*clock),
                    duplicate_of: None,
                });
                self.access_clock.advance_to(*clock);
            }
            WalRecord::RewriteGop { video, physical, index, byte_len, lossless_level } => {
                let gop = self
                    .videos
                    .get_mut(video)
                    .ok_or_else(|| format!("rewrite-gop in unknown video '{video}'"))?
                    .physical_by_id_mut(*physical)
                    .ok_or_else(|| format!("rewrite-gop in unknown physical video {physical}"))?
                    .gop_by_index_mut(*index)
                    .ok_or_else(|| format!("rewrite of unknown GOP {index}"))?;
                gop.byte_len = *byte_len;
                gop.lossless_level = *lossless_level;
            }
            WalRecord::RemoveGop { video, physical, index } => {
                let target = self
                    .videos
                    .get_mut(video)
                    .ok_or_else(|| format!("remove-gop in unknown video '{video}'"))?
                    .physical_by_id_mut(*physical)
                    .ok_or_else(|| format!("remove-gop in unknown physical video {physical}"))?;
                let Some(pos) = target.gop_position(*index) else {
                    return Err(format!("remove of unknown GOP {index}"));
                };
                target.gops.remove(pos);
            }
            WalRecord::SetBudget { video, bytes } => {
                self.videos
                    .get_mut(video)
                    .ok_or_else(|| format!("set-budget on unknown video '{video}'"))?
                    .storage_budget_bytes = *bytes;
            }
            WalRecord::SetMseBound { video, physical, bound } => {
                self.videos
                    .get_mut(video)
                    .ok_or_else(|| format!("set-mse-bound on unknown video '{video}'"))?
                    .physical_by_id_mut(*physical)
                    .ok_or_else(|| format!("set-mse-bound on unknown physical video {physical}"))?
                    .mse_bound = *bound;
            }
        }
        Ok(())
    }
}

/// The VSS metadata catalog and GOP file store rooted at a directory.
#[derive(Debug)]
pub struct Catalog {
    root: PathBuf,
    state: CatalogState,
    wal: Wal,
    /// Sequence number of the last record appended to the journal.
    seq: u64,
    checkpoint_threshold: u64,
    recovery: RecoveryReport,
}

const CATALOG_FILE: &str = "catalog.json";

/// Journal size (bytes) past which [`Catalog::persist`] folds it into the
/// checkpoint. Large enough that steady-state mutation cost is an append,
/// small enough that replay-on-open stays fast.
pub const DEFAULT_CHECKPOINT_THRESHOLD: u64 = 256 * 1024;

impl Catalog {
    /// Opens (or initializes) a catalog rooted at `root`, running crash
    /// recovery: load the `catalog.json` checkpoint, replay `catalog.wal`
    /// on top (truncating any torn tail), then reconcile the resulting
    /// state against the GOP files actually on disk. See the crate-level
    /// *Durability contract*. What recovery found is available from
    /// [`recovery_report`](Self::recovery_report).
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, CatalogError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        let mut recovery = RecoveryReport::default();

        let checkpoint = root.join(CATALOG_FILE);
        let mut state: CatalogState = if checkpoint.exists() {
            recovery.checkpoint_loaded = true;
            let data = fs::read_to_string(&checkpoint)?;
            serde_json::from_str(&data).map_err(|e| CatalogError::Corrupt(e.to_string()))?
        } else {
            CatalogState::default()
        };

        let mut seq = state.journal_seq.0;
        let valid_len = match wal::read_wal_bytes(&root)? {
            Some(bytes) => {
                let scanned = wal::scan(&bytes)?;
                recovery.torn_bytes_truncated = bytes.len() as u64 - scanned.valid_len;
                for (record_seq, record) in &scanned.records {
                    if *record_seq <= seq {
                        recovery.wal_records_stale += 1;
                        continue;
                    }
                    state.apply(record).map_err(|e| {
                        CatalogError::Corrupt(format!("WAL replay (record {record_seq}): {e}"))
                    })?;
                    seq = *record_seq;
                    recovery.wal_records_replayed += 1;
                }
                Some(scanned.valid_len)
            }
            None => None,
        };
        let wal = Wal::open(&root, valid_len)?;

        reconcile(&root, &mut state, &mut recovery)?;

        let mut catalog = Self {
            root,
            state,
            wal,
            seq,
            checkpoint_threshold: DEFAULT_CHECKPOINT_THRESHOLD,
            recovery,
        };
        if catalog.recovery.repaired_anything() {
            // Make the repaired state durable so a crash right after this
            // open cannot resurrect the orphans we just removed.
            catalog.checkpoint()?;
        }
        Ok(catalog)
    }

    /// The catalog's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// What crash recovery replayed and repaired when this catalog was
    /// opened.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Bytes currently in the write-ahead journal.
    pub fn journal_bytes(&self) -> u64 {
        self.wal.len()
    }

    /// Sets the journal size past which [`persist`](Self::persist) folds it
    /// into the checkpoint.
    pub fn set_checkpoint_threshold(&mut self, bytes: u64) {
        self.checkpoint_threshold = bytes;
    }

    /// Folds the journal into the checkpoint if it has grown past the
    /// threshold.
    ///
    /// Every mutation is already durable the moment its mutator returns
    /// (journal append + fsync), so unlike the pre-journal design this is
    /// *not* required for durability — it only bounds replay time on the
    /// next open. Kept as the historical name because every write path
    /// already calls it at transaction boundaries.
    pub fn persist(&mut self) -> Result<(), CatalogError> {
        if self.wal.len() >= self.checkpoint_threshold {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Unconditionally folds the journal into `catalog.json` (write-temp,
    /// fsync file and parent directory, rename) and resets the journal.
    /// Also captures state the journal does not carry: recency clocks and
    /// any direct [`video_mut`](Self::video_mut) edits.
    pub fn checkpoint(&mut self) -> Result<(), CatalogError> {
        self.state.journal_seq = CheckpointSeq(self.seq);
        let serialized = serde_json::to_string_pretty(&self.state)
            .map_err(|e| CatalogError::Corrupt(e.to_string()))?;
        durable::write_atomic(&self.root.join(CATALOG_FILE), serialized.as_bytes())?;
        // A crash here (checkpoint renamed, journal not yet reset) is safe:
        // replay skips records at or below `journal_seq`.
        self.wal.reset()?;
        Ok(())
    }

    /// Appends one record to the journal (fsynced — the durability point of
    /// every mutation) and applies it to the in-memory state.
    ///
    /// Callers validate preconditions *before* journaling, so `apply`
    /// failing afterwards means the validation and apply logic disagree —
    /// surfaced as [`CatalogError::Corrupt`] rather than papered over.
    fn commit(&mut self, record: WalRecord) -> Result<(), CatalogError> {
        self.wal.append(self.seq + 1, &record)?;
        self.seq += 1;
        self.state
            .apply(&record)
            .map_err(|e| CatalogError::Corrupt(format!("applying journaled record: {e}")))
    }

    /// Advances and returns the logical access clock (used for LRU
    /// sequence numbers). Takes `&self`: recency bookkeeping is the one
    /// catalog mutation read-only sessions perform, and it goes through
    /// atomics so a shared lock suffices.
    pub fn tick(&self) -> u64 {
        self.state.access_clock.increment()
    }

    /// The current value of the access clock.
    pub fn clock(&self) -> u64 {
        self.state.access_clock.get()
    }

    // --- logical videos ---------------------------------------------------

    /// Creates a new logical video. Fails if the name is already in use.
    pub fn create_video(&mut self, name: &str) -> Result<(), CatalogError> {
        if self.state.videos.contains_key(name) {
            return Err(CatalogError::VideoExists(name.to_string()));
        }
        // Directory first: if the journal append below fails (or we crash
        // between the two), an unreferenced directory is reconciled away on
        // the next open; the reverse order could journal a video whose
        // directory was never created.
        fs::create_dir_all(self.root.join(name))?;
        durable::fsync_dir(&self.root)?;
        self.commit(WalRecord::CreateVideo { name: name.to_string() })
    }

    /// Deletes a logical video and all of its on-disk data.
    pub fn delete_video(&mut self, name: &str) -> Result<(), CatalogError> {
        if !self.state.videos.contains_key(name) {
            return Err(CatalogError::VideoNotFound(name.to_string()));
        }
        // Journal first: deletion of the files is idempotent (recovery
        // removes directories the catalog no longer references), whereas
        // deleting files before the journal entry could strand a journaled
        // video without data.
        self.commit(WalRecord::DeleteVideo { name: name.to_string() })?;
        let dir = self.root.join(name);
        if dir.exists() {
            fs::remove_dir_all(dir)?;
        }
        Ok(())
    }

    /// Names of all logical videos.
    pub fn video_names(&self) -> Vec<String> {
        self.state.videos.keys().cloned().collect()
    }

    /// Borrows a logical video record.
    pub fn video(&self, name: &str) -> Result<&LogicalVideoRecord, CatalogError> {
        self.state.videos.get(name).ok_or_else(|| CatalogError::VideoNotFound(name.to_string()))
    }

    /// Mutably borrows a logical video record.
    ///
    /// Edits made through this reference bypass the write-ahead journal:
    /// they are visible immediately but survive a crash only once
    /// [`checkpoint`](Self::checkpoint) has run. Prefer the journaled
    /// setters ([`set_storage_budget`](Self::set_storage_budget),
    /// [`set_mse_bound`](Self::set_mse_bound)) for durable changes.
    pub fn video_mut(&mut self, name: &str) -> Result<&mut LogicalVideoRecord, CatalogError> {
        self.state.videos.get_mut(name).ok_or_else(|| CatalogError::VideoNotFound(name.to_string()))
    }

    /// True if a logical video with this name exists.
    pub fn contains_video(&self, name: &str) -> bool {
        self.state.videos.contains_key(name)
    }

    /// Durably sets (or clears) a logical video's storage budget.
    pub fn set_storage_budget(
        &mut self,
        video: &str,
        bytes: Option<u64>,
    ) -> Result<(), CatalogError> {
        if !self.state.videos.contains_key(video) {
            return Err(CatalogError::VideoNotFound(video.to_string()));
        }
        self.commit(WalRecord::SetBudget { video: video.to_string(), bytes })
    }

    /// Durably updates a physical video's accumulated-MSE bound (used by
    /// compaction when re-encode chains lengthen).
    pub fn set_mse_bound(
        &mut self,
        video: &str,
        physical: PhysicalVideoId,
        bound: f64,
    ) -> Result<(), CatalogError> {
        if self.video(video)?.physical_by_id(physical).is_none() {
            return Err(CatalogError::PhysicalNotFound(physical));
        }
        self.commit(WalRecord::SetMseBound { video: video.to_string(), physical, bound })
    }

    // --- physical videos ---------------------------------------------------

    /// Registers a new (initially GOP-less) physical video under a logical
    /// video and creates its directory. Returns the assigned id.
    #[allow(clippy::too_many_arguments)]
    pub fn add_physical(
        &mut self,
        video: &str,
        width: u32,
        height: u32,
        frame_rate: f64,
        codec: &str,
        is_original: bool,
        mse_bound: f64,
    ) -> Result<PhysicalVideoId, CatalogError> {
        if !self.state.videos.contains_key(video) {
            return Err(CatalogError::VideoNotFound(video.to_string()));
        }
        let id = self.state.next_physical_id;
        let record = WalRecord::AddPhysical {
            video: video.to_string(),
            id,
            width,
            height,
            frame_rate,
            codec: codec.to_string(),
            is_original,
            mse_bound,
        };
        let dir_name = format!("{width}x{height}r{frame_rate}.{codec}.{id}");
        let video_dir = self.root.join(video);
        fs::create_dir_all(video_dir.join(dir_name))?;
        durable::fsync_dir(&video_dir)?;
        self.commit(record)?;
        Ok(id)
    }

    /// Removes a physical video's record and files.
    pub fn remove_physical(&mut self, video: &str, id: PhysicalVideoId) -> Result<(), CatalogError> {
        let record = self.video(video)?;
        let Some(physical) = record.physical_by_id(id) else {
            return Err(CatalogError::PhysicalNotFound(id));
        };
        let dir = self.root.join(video).join(physical.directory_name());
        self.commit(WalRecord::RemovePhysical { video: video.to_string(), id })?;
        if dir.exists() {
            fs::remove_dir_all(dir)?;
        }
        Ok(())
    }

    // --- GOP files ---------------------------------------------------------

    /// Path of a GOP file.
    pub fn gop_path(&self, video: &str, physical: &PhysicalVideoRecord, index: u64) -> PathBuf {
        self.root.join(video).join(physical.directory_name()).join(format!("{index}.gop"))
    }

    /// Durably writes a GOP's bytes to disk and records its metadata. The
    /// GOP is appended to the physical video's GOP list (callers write GOPs
    /// in temporal order). When this returns `Ok`, the GOP — bytes and
    /// metadata both — survives any crash.
    #[allow(clippy::too_many_arguments)]
    pub fn append_gop(
        &mut self,
        video: &str,
        physical_id: PhysicalVideoId,
        start_time: f64,
        end_time: f64,
        frame_count: usize,
        data: &[u8],
        lossless_level: Option<u8>,
    ) -> Result<u64, CatalogError> {
        let record = self.video(video)?;
        let physical = record
            .physical_by_id(physical_id)
            .ok_or(CatalogError::PhysicalNotFound(physical_id))?;
        let index = physical.gops.last().map_or(0, |g| g.index + 1);
        let dir = self.root.join(video).join(physical.directory_name());
        fs::create_dir_all(&dir)?;
        // Data first, journal second: a crash in between leaves an orphan
        // file (reconciled away — the append was never acknowledged), never
        // a catalog entry without data.
        durable::write_atomic(&dir.join(format!("{index}.gop")), data)?;
        let clock = self.tick();
        self.commit(WalRecord::AppendGop {
            video: video.to_string(),
            physical: physical_id,
            index,
            start_time,
            end_time,
            frame_count,
            byte_len: data.len() as u64,
            lossless_level,
            clock,
        })?;
        Ok(index)
    }

    /// Reads a GOP file's bytes.
    pub fn read_gop(
        &self,
        video: &str,
        physical_id: PhysicalVideoId,
        index: u64,
    ) -> Result<Vec<u8>, CatalogError> {
        let record = self.video(video)?;
        let physical =
            record.physical_by_id(physical_id).ok_or(CatalogError::PhysicalNotFound(physical_id))?;
        if physical.gop_by_index(index).is_none() {
            return Err(CatalogError::GopNotFound { physical: physical_id, index });
        }
        Ok(fs::read(self.gop_path(video, physical, index))?)
    }

    /// Durably overwrites a GOP file's bytes and updates its recorded size
    /// and lossless level (used by deferred compression and compaction).
    /// The rewrite is atomic: a crash leaves either the old or the new
    /// version, never a mix.
    pub fn rewrite_gop(
        &mut self,
        video: &str,
        physical_id: PhysicalVideoId,
        index: u64,
        data: &[u8],
        lossless_level: Option<u8>,
    ) -> Result<(), CatalogError> {
        let record = self.video(video)?;
        let physical = record
            .physical_by_id(physical_id)
            .ok_or(CatalogError::PhysicalNotFound(physical_id))?;
        if physical.gop_by_index(index).is_none() {
            return Err(CatalogError::GopNotFound { physical: physical_id, index });
        }
        let path = self.gop_path(video, physical, index);
        durable::write_atomic(&path, data)?;
        self.commit(WalRecord::RewriteGop {
            video: video.to_string(),
            physical: physical_id,
            index,
            byte_len: data.len() as u64,
            lossless_level,
        })
    }

    /// Deletes a GOP file and its record.
    pub fn remove_gop(
        &mut self,
        video: &str,
        physical_id: PhysicalVideoId,
        index: u64,
    ) -> Result<(), CatalogError> {
        let record = self.video(video)?;
        let physical = record
            .physical_by_id(physical_id)
            .ok_or(CatalogError::PhysicalNotFound(physical_id))?;
        if physical.gop_by_index(index).is_none() {
            return Err(CatalogError::GopNotFound { physical: physical_id, index });
        }
        let path = self.gop_path(video, physical, index);
        self.commit(WalRecord::RemoveGop { video: video.to_string(), physical: physical_id, index })?;
        if path.exists() {
            fs::remove_file(path)?;
        }
        Ok(())
    }

    /// Marks a GOP as accessed "now" (recency bookkeeping for eviction).
    ///
    /// Takes `&self`: the clocks are [`AtomicClock`]s, so concurrent readers
    /// holding a shared lock can all bump recency without serializing on a
    /// write lock. Racing touches keep the latest timestamp (`fetch_max`).
    /// Not journaled (see the crate-level durability contract): a touch is
    /// durable only after the next checkpoint.
    pub fn touch_gop(
        &self,
        video: &str,
        physical_id: PhysicalVideoId,
        index: u64,
    ) -> Result<(), CatalogError> {
        let clock = self.tick();
        let record = self.video(video)?;
        let physical = record
            .physical_by_id(physical_id)
            .ok_or(CatalogError::PhysicalNotFound(physical_id))?;
        let gop = physical
            .gop_by_index(index)
            .ok_or(CatalogError::GopNotFound { physical: physical_id, index })?;
        gop.last_access.advance_to(clock);
        Ok(())
    }

    /// Bytes used by all physical representations of a logical video.
    pub fn bytes_used(&self, video: &str) -> Result<u64, CatalogError> {
        Ok(self.video(video)?.bytes_used())
    }
}

// --- recovery reconciliation ------------------------------------------------

/// Whether an on-disk GOP file's content is a parsable GOP, and in which
/// wrapping.
enum GopFileContent {
    /// A raw `EncodedGop` container.
    Raw,
    /// A losslessly compressed container that decompresses to a valid GOP.
    Lossless,
    /// Neither: torn, truncated or foreign bytes.
    Invalid,
}

fn classify_gop_file(bytes: &[u8]) -> GopFileContent {
    if vss_codec::EncodedGop::from_bytes(bytes).is_ok() {
        return GopFileContent::Raw;
    }
    match vss_codec::lossless::decompress(bytes) {
        Ok(inner) if vss_codec::EncodedGop::from_bytes(&inner).is_ok() => GopFileContent::Lossless,
        _ => GopFileContent::Invalid,
    }
}

/// Brings the catalog state and the files on disk back into agreement after
/// a crash. The store root is owned by the catalog: any file or directory
/// it does not reference is treated as debris from an interrupted operation
/// and removed.
fn reconcile(
    root: &Path,
    state: &mut CatalogState,
    report: &mut RecoveryReport,
) -> Result<(), CatalogError> {
    // Pass 1: walk the catalog, verifying every referenced file.
    for video in state.videos.values_mut() {
        let video_dir = root.join(&video.name);
        for physical in &mut video.physical {
            let dir = video_dir.join(physical.directory_name());
            // A referenced directory can only be missing if a crash
            // interrupted `delete`-after-journal cleanup of a *different*
            // generation; recreate it so the store stays navigable.
            fs::create_dir_all(&dir)?;
            physical.gops.retain_mut(|gop| {
                let path = dir.join(format!("{}.gop", gop.index));
                let Ok(meta) = fs::metadata(&path) else {
                    report.gop_records_dropped += 1;
                    return false;
                };
                if meta.len() == gop.byte_len {
                    return true; // fast path: size agrees, trust the record
                }
                // Size disagrees: the crash hit between an (atomic) GOP
                // rewrite and its journal record. The file is one complete
                // generation — figure out which, and repair the metadata.
                match fs::read(&path).as_deref().map(classify_gop_file) {
                    Ok(GopFileContent::Raw) => {
                        gop.byte_len = meta.len();
                        gop.lossless_level = None;
                        report.gop_records_healed += 1;
                        true
                    }
                    Ok(GopFileContent::Lossless) => {
                        gop.byte_len = meta.len();
                        gop.lossless_level =
                            gop.lossless_level.or(Some(vss_codec::lossless::MIN_LEVEL));
                        report.gop_records_healed += 1;
                        true
                    }
                    _ => {
                        let _ = fs::remove_file(&path);
                        report.gop_records_dropped += 1;
                        false
                    }
                }
            });
        }
    }

    // Pass 2: walk the disk, deleting anything the catalog does not
    // reference (orphan GOPs from un-journaled appends, leftover `.tmp`
    // files, directories of deleted videos).
    for entry in fs::read_dir(root)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if entry.file_type()?.is_dir() {
            match state.videos.get(&name) {
                Some(video) => reconcile_video_dir(&entry.path(), video, report)?,
                None => {
                    fs::remove_dir_all(entry.path())?;
                    report.orphan_dirs_removed += 1;
                }
            }
        } else if name != CATALOG_FILE && name != wal::WAL_FILE {
            fs::remove_file(entry.path())?;
            report.orphan_files_removed += 1;
        }
    }
    Ok(())
}

fn reconcile_video_dir(
    dir: &Path,
    video: &LogicalVideoRecord,
    report: &mut RecoveryReport,
) -> Result<(), CatalogError> {
    let physical_dirs: BTreeMap<String, &PhysicalVideoRecord> =
        video.physical.iter().map(|p| (p.directory_name(), p)).collect();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if entry.file_type()?.is_dir() {
            match physical_dirs.get(&name) {
                Some(physical) => reconcile_physical_dir(&entry.path(), physical, report)?,
                None => {
                    fs::remove_dir_all(entry.path())?;
                    report.orphan_dirs_removed += 1;
                }
            }
        } else {
            fs::remove_file(entry.path())?;
            report.orphan_files_removed += 1;
        }
    }
    Ok(())
}

fn reconcile_physical_dir(
    dir: &Path,
    physical: &PhysicalVideoRecord,
    report: &mut RecoveryReport,
) -> Result<(), CatalogError> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let referenced = name
            .strip_suffix(".gop")
            .and_then(|stem| stem.parse::<u64>().ok())
            .is_some_and(|index| physical.gop_by_index(index).is_some());
        if !referenced {
            if entry.file_type()?.is_dir() {
                fs::remove_dir_all(entry.path())?;
                report.orphan_dirs_removed += 1;
            } else {
                fs::remove_file(entry.path())?;
                report.orphan_files_removed += 1;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "vss-catalog-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// A parsable GOP container for tests that exercise reconciliation
    /// (reconcile only trusts files whose size matches the record or whose
    /// content classifies as a valid GOP).
    fn gop_bytes(frames: usize) -> Vec<u8> {
        let frame_infos = (0..frames)
            .map(|i| vss_codec::FrameInfo { is_intra: i == 0, offset: i * 4, len: 4 })
            .collect();
        vss_codec::EncodedGop::new(
            vss_codec::Codec::Raw(vss_frame::PixelFormat::Rgb8),
            4,
            4,
            30.0,
            10,
            frame_infos,
            vec![0u8; frames * 4],
        )
        .to_bytes()
    }

    #[test]
    fn create_and_reload_catalog() {
        let root = temp_root("reload");
        let payload = gop_bytes(3);
        {
            let mut cat = Catalog::open(&root).unwrap();
            cat.create_video("traffic").unwrap();
            let id = cat.add_physical("traffic", 1920, 1080, 30.0, "hevc", true, 0.0).unwrap();
            cat.append_gop("traffic", id, 0.0, 1.0, 30, &payload, None).unwrap();
            cat.persist().unwrap();
        }
        let cat = Catalog::open(&root).unwrap();
        assert!(cat.contains_video("traffic"));
        let video = cat.video("traffic").unwrap();
        assert_eq!(video.physical.len(), 1);
        assert_eq!(video.physical[0].gops.len(), 1);
        assert_eq!(cat.read_gop("traffic", video.physical[0].id, 0).unwrap(), payload);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn duplicate_video_names_are_rejected() {
        let root = temp_root("dup");
        let mut cat = Catalog::open(&root).unwrap();
        cat.create_video("v").unwrap();
        assert!(matches!(cat.create_video("v"), Err(CatalogError::VideoExists(_))));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn missing_entities_produce_specific_errors() {
        let root = temp_root("missing");
        let mut cat = Catalog::open(&root).unwrap();
        assert!(matches!(cat.video("nope"), Err(CatalogError::VideoNotFound(_))));
        assert!(matches!(cat.bytes_used("nope"), Err(CatalogError::VideoNotFound(_))));
        assert!(matches!(
            cat.set_storage_budget("nope", Some(1)),
            Err(CatalogError::VideoNotFound(_))
        ));
        cat.create_video("v").unwrap();
        assert!(matches!(
            cat.append_gop("v", 99, 0.0, 1.0, 30, b"x", None),
            Err(CatalogError::PhysicalNotFound(99))
        ));
        assert!(matches!(cat.set_mse_bound("v", 42, 1.0), Err(CatalogError::PhysicalNotFound(42))));
        let id = cat.add_physical("v", 64, 64, 30.0, "h264", true, 0.0).unwrap();
        assert!(matches!(
            cat.read_gop("v", id, 5),
            Err(CatalogError::GopNotFound { index: 5, .. })
        ));
        assert!(matches!(cat.remove_physical("v", 7), Err(CatalogError::PhysicalNotFound(7))));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn gop_lifecycle_updates_accounting() {
        let root = temp_root("lifecycle");
        let mut cat = Catalog::open(&root).unwrap();
        cat.create_video("v").unwrap();
        let id = cat.add_physical("v", 64, 64, 30.0, "h264", true, 0.0).unwrap();
        cat.append_gop("v", id, 0.0, 1.0, 30, &[0u8; 100], None).unwrap();
        cat.append_gop("v", id, 1.0, 2.0, 30, &[0u8; 50], None).unwrap();
        assert_eq!(cat.bytes_used("v").unwrap(), 150);
        cat.rewrite_gop("v", id, 1, &[0u8; 20], Some(5)).unwrap();
        assert_eq!(cat.bytes_used("v").unwrap(), 120);
        let video = cat.video("v").unwrap();
        assert_eq!(video.physical[0].gops[1].lossless_level, Some(5));
        cat.remove_gop("v", id, 0).unwrap();
        assert_eq!(cat.bytes_used("v").unwrap(), 20);
        assert!(!cat.gop_path("v", &cat.video("v").unwrap().physical[0], 0).exists());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn touch_advances_recency() {
        let root = temp_root("touch");
        let mut cat = Catalog::open(&root).unwrap();
        cat.create_video("v").unwrap();
        let id = cat.add_physical("v", 64, 64, 30.0, "h264", true, 0.0).unwrap();
        cat.append_gop("v", id, 0.0, 1.0, 30, b"a", None).unwrap();
        let before = cat.video("v").unwrap().physical[0].gops[0].last_access.get();
        // Touching goes through a shared reference (atomic recency).
        let shared: &Catalog = &cat;
        shared.touch_gop("v", id, 0).unwrap();
        let after = cat.video("v").unwrap().physical[0].gops[0].last_access.get();
        assert!(after > before);
        assert!(cat.clock() >= after);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn delete_video_removes_files() {
        let root = temp_root("delete");
        let mut cat = Catalog::open(&root).unwrap();
        cat.create_video("v").unwrap();
        let id = cat.add_physical("v", 64, 64, 30.0, "h264", true, 0.0).unwrap();
        cat.append_gop("v", id, 0.0, 1.0, 30, b"a", None).unwrap();
        assert!(root.join("v").exists());
        cat.delete_video("v").unwrap();
        assert!(!root.join("v").exists());
        assert!(!cat.contains_video("v"));
        assert!(matches!(cat.delete_video("v"), Err(CatalogError::VideoNotFound(_))));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupt_catalog_json_is_reported() {
        let root = temp_root("corrupt");
        fs::create_dir_all(&root).unwrap();
        fs::write(root.join(CATALOG_FILE), b"{ not json").unwrap();
        assert!(matches!(Catalog::open(&root), Err(CatalogError::Corrupt(_))));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn remove_physical_deletes_directory() {
        let root = temp_root("rmphys");
        let mut cat = Catalog::open(&root).unwrap();
        cat.create_video("v").unwrap();
        let id = cat.add_physical("v", 64, 64, 30.0, "h264", false, 1.5).unwrap();
        cat.append_gop("v", id, 0.0, 1.0, 30, b"a", None).unwrap();
        let dir = root.join("v").join(cat.video("v").unwrap().physical[0].directory_name());
        assert!(dir.exists());
        cat.remove_physical("v", id).unwrap();
        assert!(!dir.exists());
        assert!(cat.video("v").unwrap().physical.is_empty());
        fs::remove_dir_all(&root).unwrap();
    }

    // --- durability behavior ------------------------------------------------

    #[test]
    fn mutations_survive_reopen_without_an_explicit_persist() {
        let root = temp_root("wal-survive");
        {
            let mut cat = Catalog::open(&root).unwrap();
            cat.create_video("v").unwrap();
            let id = cat.add_physical("v", 64, 48, 30.0, "rgb", true, 0.0).unwrap();
            cat.append_gop("v", id, 0.0, 1.0, 30, &gop_bytes(2), None).unwrap();
            cat.set_storage_budget("v", Some(12345)).unwrap();
            // No persist(): the journal alone must carry the state.
        }
        let cat = Catalog::open(&root).unwrap();
        assert_eq!(cat.recovery_report().wal_records_replayed, 4);
        let video = cat.video("v").unwrap();
        assert_eq!(video.storage_budget_bytes, Some(12345));
        assert_eq!(video.physical[0].gops.len(), 1);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn checkpoint_folds_and_resets_the_journal() {
        let root = temp_root("checkpoint");
        let mut cat = Catalog::open(&root).unwrap();
        cat.create_video("v").unwrap();
        assert!(cat.journal_bytes() > 8, "journal holds a record past its magic header");
        cat.checkpoint().unwrap();
        let after = cat.journal_bytes();
        cat.create_video("w").unwrap();
        assert!(cat.journal_bytes() > after, "journal grows again after checkpoint");
        drop(cat);
        let cat = Catalog::open(&root).unwrap();
        assert!(cat.recovery_report().checkpoint_loaded);
        assert_eq!(cat.recovery_report().wal_records_replayed, 1, "only post-checkpoint record");
        assert!(cat.contains_video("v") && cat.contains_video("w"));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn persist_checkpoints_only_past_the_threshold() {
        let root = temp_root("threshold");
        let mut cat = Catalog::open(&root).unwrap();
        cat.set_checkpoint_threshold(u64::MAX);
        cat.create_video("v").unwrap();
        let journal = cat.journal_bytes();
        cat.persist().unwrap();
        assert_eq!(cat.journal_bytes(), journal, "below threshold: no checkpoint");
        cat.set_checkpoint_threshold(1);
        cat.persist().unwrap();
        assert!(cat.journal_bytes() < journal, "past threshold: journal folded");
        assert!(root.join(CATALOG_FILE).exists());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn torn_journal_tail_is_truncated_without_losing_prior_records() {
        let root = temp_root("torn-tail");
        {
            let mut cat = Catalog::open(&root).unwrap();
            cat.create_video("v").unwrap();
            cat.set_storage_budget("v", Some(777)).unwrap();
        }
        // Simulate a crash mid-append: garbage half-record at the tail.
        let wal_path = root.join(wal::WAL_FILE);
        let mut bytes = fs::read(&wal_path).unwrap();
        let intact = bytes.len();
        bytes.extend_from_slice(&[0x55; 13]);
        fs::write(&wal_path, &bytes).unwrap();
        let cat = Catalog::open(&root).unwrap();
        assert_eq!(cat.recovery_report().torn_bytes_truncated, 13);
        assert_eq!(cat.recovery_report().wal_records_replayed, 2);
        assert_eq!(cat.video("v").unwrap().storage_budget_bytes, Some(777));
        assert_eq!(fs::metadata(&wal_path).unwrap().len(), intact as u64, "tail truncated");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn orphan_gop_files_are_reconciled_away() {
        let root = temp_root("orphan");
        let payload = gop_bytes(2);
        {
            let mut cat = Catalog::open(&root).unwrap();
            cat.create_video("v").unwrap();
            let id = cat.add_physical("v", 4, 4, 30.0, "rgb", true, 0.0).unwrap();
            cat.append_gop("v", id, 0.0, 1.0, 30, &payload, None).unwrap();
            // A crash between GOP-file rename and journal append leaves an
            // orphan file with no record:
            let dir = root.join("v").join(cat.video("v").unwrap().physical[0].directory_name());
            fs::write(dir.join("1.gop"), b"unacked bytes").unwrap();
            fs::write(dir.join("2.gop.tmp"), b"half a temp file").unwrap();
            fs::write(root.join("catalog.json.tmp"), b"half a checkpoint").unwrap();
        }
        let cat = Catalog::open(&root).unwrap();
        assert_eq!(cat.recovery_report().orphan_files_removed, 3);
        let video = cat.video("v").unwrap();
        assert_eq!(video.physical[0].gops.len(), 1, "acked GOP survives");
        assert_eq!(cat.read_gop("v", video.physical[0].id, 0).unwrap(), payload);
        let dir = root.join("v").join(video.physical[0].directory_name());
        assert!(!dir.join("1.gop").exists() && !dir.join("2.gop.tmp").exists());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn missing_gop_file_drops_only_its_record() {
        let root = temp_root("missing-gop");
        let payload = gop_bytes(2);
        {
            let mut cat = Catalog::open(&root).unwrap();
            cat.create_video("v").unwrap();
            let id = cat.add_physical("v", 4, 4, 30.0, "rgb", true, 0.0).unwrap();
            cat.append_gop("v", id, 0.0, 1.0, 30, &payload, None).unwrap();
            cat.append_gop("v", id, 1.0, 2.0, 30, &payload, None).unwrap();
            let dir = root.join("v").join(cat.video("v").unwrap().physical[0].directory_name());
            fs::remove_file(dir.join("0.gop")).unwrap();
        }
        let cat = Catalog::open(&root).unwrap();
        assert_eq!(cat.recovery_report().gop_records_dropped, 1);
        let video = cat.video("v").unwrap();
        assert_eq!(video.physical[0].gops.len(), 1);
        assert_eq!(video.physical[0].gops[0].index, 1, "the surviving record");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn rewritten_gop_whose_journal_record_was_lost_is_healed() {
        let root = temp_root("heal");
        let small = gop_bytes(1);
        let big = gop_bytes(4);
        {
            let mut cat = Catalog::open(&root).unwrap();
            cat.create_video("v").unwrap();
            let id = cat.add_physical("v", 4, 4, 30.0, "rgb", true, 0.0).unwrap();
            cat.append_gop("v", id, 0.0, 1.0, 30, &small, None).unwrap();
            // Crash between the atomic file rewrite and its journal record:
            // the file holds the complete new generation, the catalog still
            // records the old size.
            let dir = root.join("v").join(cat.video("v").unwrap().physical[0].directory_name());
            fs::write(dir.join("0.gop"), &big).unwrap();
        }
        let cat = Catalog::open(&root).unwrap();
        assert_eq!(cat.recovery_report().gop_records_healed, 1);
        let gop = &cat.video("v").unwrap().physical[0].gops[0];
        assert_eq!(gop.byte_len, big.len() as u64, "size repaired from disk");
        assert_eq!(gop.lossless_level, None);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn repairs_are_checkpointed_so_a_second_open_is_clean() {
        let root = temp_root("repair-once");
        {
            let mut cat = Catalog::open(&root).unwrap();
            cat.create_video("v").unwrap();
            let id = cat.add_physical("v", 4, 4, 30.0, "rgb", true, 0.0).unwrap();
            cat.append_gop("v", id, 0.0, 1.0, 30, &gop_bytes(2), None).unwrap();
            let dir = root.join("v").join(cat.video("v").unwrap().physical[0].directory_name());
            fs::remove_file(dir.join("0.gop")).unwrap();
        }
        let first = Catalog::open(&root).unwrap();
        assert!(first.recovery_report().repaired_anything());
        drop(first);
        let second = Catalog::open(&root).unwrap();
        assert!(!second.recovery_report().repaired_anything(), "repairs were made durable");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn injected_write_failure_surfaces_as_typed_io_error_and_state_is_unchanged() {
        let root = temp_root("fault-typed");
        let mut cat = Catalog::open(&root).unwrap();
        cat.create_video("v").unwrap();
        let id = cat.add_physical("v", 4, 4, 30.0, "rgb", true, 0.0).unwrap();
        let guard = fault::install(fault::FaultPlan {
            prefix: Some(root.clone()),
            fail_nth: Some(1),
            ..Default::default()
        });
        let err = cat.append_gop("v", id, 0.0, 1.0, 30, &gop_bytes(2), None).unwrap_err();
        assert!(matches!(err, CatalogError::Io(_)), "typed I/O error, got {err}");
        drop(guard);
        assert!(cat.video("v").unwrap().physical[0].gops.is_empty(), "mutation not applied");
        // The store still works after the fault clears.
        cat.append_gop("v", id, 0.0, 1.0, 30, &gop_bytes(2), None).unwrap();
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn failed_journal_append_rolls_back_so_later_mutations_survive() {
        let root = temp_root("wal-rollback");
        {
            let mut cat = Catalog::open(&root).unwrap();
            cat.create_video("v").unwrap();
            // Tear the next journal append mid-record.
            let guard = fault::install(fault::FaultPlan {
                prefix: Some(root.join(wal::WAL_FILE)),
                tear_nth: Some(1),
                tear_at: 7,
                ..Default::default()
            });
            assert!(matches!(cat.create_video("torn"), Err(CatalogError::Io(_))));
            drop(guard);
            // The torn bytes were rolled back, so this append lands on a
            // clean journal and must survive reopen.
            cat.create_video("after").unwrap();
        }
        let cat = Catalog::open(&root).unwrap();
        assert!(cat.contains_video("v") && cat.contains_video("after"));
        assert!(!cat.contains_video("torn"));
        assert_eq!(cat.recovery_report().torn_bytes_truncated, 0, "no torn tail left behind");
        fs::remove_dir_all(&root).unwrap();
    }
}
