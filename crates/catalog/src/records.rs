//! Catalog records: the persisted metadata describing logical and physical
//! videos and their GOPs.
//!
//! The paper's prototype keeps this metadata in SQLite; here it is a set of
//! plain serde records persisted as JSON next to the video data. Records
//! deliberately store codecs and formats as strings so the catalog's on-disk
//! schema stays stable and human-inspectable.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use vss_codec::Codec;
use vss_frame::Resolution;

/// Identifier of a physical video within the catalog.
pub type PhysicalVideoId = u64;

/// A monotonically advancing logical clock that can be bumped through a
/// shared (`&self`) reference.
///
/// Recency bookkeeping (the LRU clocks on GOP pages) is the only catalog
/// state a *read-only* session mutates: before this type existed, merely
/// reading a video required exclusive access to the catalog just to record
/// "page f was touched now". Storing the clocks in atomics lets readers
/// holding a shared lock bump them concurrently; [`AtomicClock::advance_to`]
/// uses `fetch_max`, so racing touches can never move a clock backwards.
///
/// Serialization (and equality/cloning) go through the loaded value, so the
/// persisted catalog schema is unchanged: an `AtomicClock` is a plain integer
/// on disk.
#[derive(Debug, Default)]
pub struct AtomicClock(AtomicU64);

impl AtomicClock {
    /// Creates a clock at the given value.
    pub const fn new(value: u64) -> Self {
        Self(AtomicU64::new(value))
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }

    /// Advances the clock to `value` if that is later than the current value
    /// (racing touches keep the latest timestamp, never an earlier one).
    pub fn advance_to(&self, value: u64) {
        self.0.fetch_max(value, Ordering::AcqRel);
    }

    /// Atomically increments the clock, returning the new value.
    pub fn increment(&self) -> u64 {
        self.0.fetch_add(1, Ordering::AcqRel) + 1
    }
}

impl Clone for AtomicClock {
    fn clone(&self) -> Self {
        Self::new(self.get())
    }
}

impl PartialEq for AtomicClock {
    fn eq(&self, other: &Self) -> bool {
        self.get() == other.get()
    }
}

impl Serialize for AtomicClock {
    fn to_value(&self) -> serde::json::Value {
        self.get().to_value()
    }
}

impl Deserialize for AtomicClock {
    fn from_value(value: &serde::json::Value) -> Result<Self, String> {
        u64::from_value(value).map(Self::new)
    }
}

/// Metadata for one GOP file of a physical video.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GopRecord {
    /// Index of the GOP within its physical video (also its file stem).
    pub index: u64,
    /// Start time of the GOP within the logical video, in seconds.
    pub start_time: f64,
    /// End time of the GOP within the logical video, in seconds.
    pub end_time: f64,
    /// Number of frames in the GOP.
    pub frame_count: usize,
    /// Size of the GOP file on disk, in bytes.
    pub byte_len: u64,
    /// Lossless (deferred) compression level applied on top of the GOP file,
    /// if any. `None` means the file holds the GOP container directly.
    pub lossless_level: Option<u8>,
    /// Logical timestamp of the last access (for recency-based eviction).
    /// Atomic so read-only sessions holding a shared lock can bump it.
    pub last_access: AtomicClock,
    /// If set, this GOP is a joint-compression pointer to another GOP
    /// (duplicate elimination): `(physical video id, gop index)`.
    pub duplicate_of: Option<(PhysicalVideoId, u64)>,
}

impl GopRecord {
    /// Duration of the GOP in seconds.
    pub fn duration(&self) -> f64 {
        (self.end_time - self.start_time).max(0.0)
    }

    /// True if the GOP temporally overlaps `[start, end)`.
    pub fn overlaps(&self, start: f64, end: f64) -> bool {
        self.start_time < end - 1e-9 && self.end_time > start + 1e-9
    }
}

/// Metadata for one physical video (a materialized representation of a
/// logical video in a specific spatial/physical configuration).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhysicalVideoRecord {
    /// Catalog-wide identifier.
    pub id: PhysicalVideoId,
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Frame rate in frames per second.
    pub frame_rate: f64,
    /// Codec name (`h264`, `hevc`, `rgb`, `yuv420`, `yuv422`).
    pub codec: String,
    /// True for the originally written physical video (never evictable below
    /// the baseline-quality cover).
    pub is_original: bool,
    /// Upper bound on the accumulated MSE of this representation relative to
    /// the originally written video (0 for the original itself), maintained
    /// with the paper's composition bound.
    pub mse_bound: f64,
    /// GOPs in temporal order.
    pub gops: Vec<GopRecord>,
}

impl PhysicalVideoRecord {
    /// The video's resolution.
    pub fn resolution(&self) -> Resolution {
        Resolution::new(self.width, self.height)
    }

    /// The video's codec, if the stored name is recognized.
    pub fn codec(&self) -> Option<Codec> {
        Codec::parse(&self.codec)
    }

    /// Start time of the earliest GOP (0 if empty).
    pub fn start_time(&self) -> f64 {
        self.gops.first().map_or(0.0, |g| g.start_time)
    }

    /// End time of the latest GOP (0 if empty).
    pub fn end_time(&self) -> f64 {
        self.gops.last().map_or(0.0, |g| g.end_time)
    }

    /// Total bytes of all GOP files.
    pub fn byte_len(&self) -> u64 {
        self.gops.iter().map(|g| g.byte_len).sum()
    }

    /// Directory name used on disk, mirroring the paper's layout
    /// (e.g. `1920x1080r30.hevc.12`).
    pub fn directory_name(&self) -> String {
        format!("{}x{}r{}.{}.{}", self.width, self.height, self.frame_rate, self.codec, self.id)
    }

    /// GOPs overlapping `[start, end)`, in temporal order.
    pub fn gops_overlapping(&self, start: f64, end: f64) -> Vec<&GopRecord> {
        self.gops.iter().filter(|g| g.overlaps(start, end)).collect()
    }

    /// Looks up a GOP by its index in `O(log n)`.
    ///
    /// GOP indices are assigned monotonically on append and evictions only
    /// remove entries, so `gops` is always sorted by index — a binary search
    /// replaces the linear scans the read/eviction paths used to perform per
    /// lookup (which made them quadratic over a physical video's GOPs).
    pub fn gop_by_index(&self, index: u64) -> Option<&GopRecord> {
        let position = self.gops.binary_search_by_key(&index, |g| g.index).ok()?;
        Some(&self.gops[position])
    }

    /// Mutable variant of [`gop_by_index`](Self::gop_by_index).
    pub fn gop_by_index_mut(&mut self, index: u64) -> Option<&mut GopRecord> {
        let position = self.gops.binary_search_by_key(&index, |g| g.index).ok()?;
        Some(&mut self.gops[position])
    }

    /// Position of a GOP in the `gops` vector by its index.
    pub fn gop_position(&self, index: u64) -> Option<usize> {
        self.gops.binary_search_by_key(&index, |g| g.index).ok()
    }

    /// A precomputed index → GOP map for call sites that perform many
    /// lookups against a snapshot of this record (e.g. executing one read
    /// plan). Borrows the records, so it costs one `O(n)` pass up front and
    /// nothing per hit.
    pub fn gop_index_map(&self) -> std::collections::HashMap<u64, &GopRecord> {
        self.gops.iter().map(|g| (g.index, g)).collect()
    }
}

/// Metadata for one logical video.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogicalVideoRecord {
    /// The logical video's name (unique within a catalog).
    pub name: String,
    /// Storage budget in bytes for all physical representations of this
    /// video. `None` means "unset" until the first write establishes it.
    pub storage_budget_bytes: Option<u64>,
    /// Physical representations, including the original.
    pub physical: Vec<PhysicalVideoRecord>,
}

impl LogicalVideoRecord {
    /// Creates an empty logical video record.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), storage_budget_bytes: None, physical: Vec::new() }
    }

    /// Total bytes used across all physical representations.
    pub fn bytes_used(&self) -> u64 {
        self.physical.iter().map(PhysicalVideoRecord::byte_len).sum()
    }

    /// The originally written physical video, if any.
    pub fn original(&self) -> Option<&PhysicalVideoRecord> {
        self.physical.iter().find(|p| p.is_original)
    }

    /// Looks up a physical video by id.
    pub fn physical_by_id(&self, id: PhysicalVideoId) -> Option<&PhysicalVideoRecord> {
        self.physical.iter().find(|p| p.id == id)
    }

    /// Mutable lookup of a physical video by id.
    pub fn physical_by_id_mut(&mut self, id: PhysicalVideoId) -> Option<&mut PhysicalVideoRecord> {
        self.physical.iter_mut().find(|p| p.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gop(index: u64, start: f64, end: f64, bytes: u64) -> GopRecord {
        GopRecord {
            index,
            start_time: start,
            end_time: end,
            frame_count: 30,
            byte_len: bytes,
            lossless_level: None,
            last_access: AtomicClock::new(0),
            duplicate_of: None,
        }
    }

    fn physical(id: u64, original: bool) -> PhysicalVideoRecord {
        PhysicalVideoRecord {
            id,
            width: 1920,
            height: 1080,
            frame_rate: 30.0,
            codec: "hevc".into(),
            is_original: original,
            mse_bound: 0.0,
            gops: vec![gop(0, 0.0, 1.0, 100), gop(1, 1.0, 2.0, 120), gop(2, 2.0, 3.0, 80)],
        }
    }

    #[test]
    fn gop_overlap_and_duration() {
        let g = gop(0, 2.0, 3.0, 10);
        assert!(g.overlaps(2.5, 4.0));
        assert!(g.overlaps(0.0, 2.5));
        assert!(!g.overlaps(3.0, 4.0));
        assert!(!g.overlaps(0.0, 2.0));
        assert_eq!(g.duration(), 1.0);
    }

    #[test]
    fn physical_record_accessors() {
        let p = physical(7, true);
        assert_eq!(p.resolution(), Resolution::R2K);
        assert_eq!(p.codec(), Some(Codec::Hevc));
        assert_eq!(p.start_time(), 0.0);
        assert_eq!(p.end_time(), 3.0);
        assert_eq!(p.byte_len(), 300);
        assert_eq!(p.directory_name(), "1920x1080r30.hevc.7");
        assert_eq!(p.gops_overlapping(0.5, 1.5).len(), 2);
        assert_eq!(p.gops_overlapping(5.0, 6.0).len(), 0);
    }

    #[test]
    fn gop_lookup_is_consistent_with_linear_scan() {
        let mut p = physical(1, true);
        // Evict the middle GOP; the remaining indices stay sorted.
        p.gops.remove(1);
        for index in 0..4u64 {
            let scanned = p.gops.iter().find(|g| g.index == index);
            assert_eq!(p.gop_by_index(index).map(|g| g.index), scanned.map(|g| g.index));
            assert_eq!(p.gop_position(index).is_some(), scanned.is_some());
        }
        let map = p.gop_index_map();
        assert_eq!(map.len(), p.gops.len());
        assert!(map.contains_key(&0) && map.contains_key(&2) && !map.contains_key(&1));
        p.gop_by_index_mut(2).unwrap().byte_len = 7;
        assert_eq!(p.gop_by_index(2).unwrap().byte_len, 7);
    }

    #[test]
    fn logical_record_accounting() {
        let mut l = LogicalVideoRecord::new("traffic");
        assert_eq!(l.bytes_used(), 0);
        assert!(l.original().is_none());
        l.physical.push(physical(1, true));
        l.physical.push(physical(2, false));
        assert_eq!(l.bytes_used(), 600);
        assert_eq!(l.original().unwrap().id, 1);
        assert!(l.physical_by_id(2).is_some());
        assert!(l.physical_by_id(9).is_none());
        l.physical_by_id_mut(2).unwrap().gops.pop();
        assert_eq!(l.bytes_used(), 520);
    }

    #[test]
    fn records_serialize_round_trip() {
        let l = LogicalVideoRecord {
            name: "v".into(),
            storage_budget_bytes: Some(1 << 20),
            physical: vec![physical(3, true)],
        };
        let json = serde_json::to_string(&l).unwrap();
        let back: LogicalVideoRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, l);
    }

    #[test]
    fn atomic_clock_is_monotonic_and_value_equal() {
        let clock = AtomicClock::new(5);
        clock.advance_to(3);
        assert_eq!(clock.get(), 5, "advance_to never moves the clock backwards");
        clock.advance_to(9);
        assert_eq!(clock.get(), 9);
        assert_eq!(clock.increment(), 10);
        assert_eq!(clock.clone(), AtomicClock::new(10));
        let json = serde_json::to_string(&clock).unwrap();
        let back: AtomicClock = serde_json::from_str(&json).unwrap();
        assert_eq!(back.get(), 10);
    }

    #[test]
    fn unknown_codec_name_is_detected() {
        let mut p = physical(1, false);
        p.codec = "vp9".into();
        assert_eq!(p.codec(), None);
    }
}
