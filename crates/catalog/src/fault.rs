//! Fault injection for the durable I/O paths.
//!
//! Every write the catalog must make durable (GOP files, write-ahead journal
//! appends, checkpoint files, and — via [`crate::durable`] — the server
//! manifest) funnels through [`on_write`]/[`on_sync`] checks. An installed
//! [`FaultPlan`] can make the Nth such write fail outright, *tear* it (only a
//! prefix of the bytes reaches the file before the error surfaces), fail the
//! Nth `fsync`, or fail writes at a low deterministic pseudo-random rate —
//! the machinery the crash-recovery suite uses to prove that any injected
//! failure surfaces as a typed [`CatalogError::Io`](crate::CatalogError) and
//! that reopening the store always recovers a consistent catalog.
//!
//! Plans are scoped by a path prefix so concurrently running tests cannot
//! perturb each other's stores; a plan with no prefix applies to every
//! durable write in the process. The environment variable `VSS_FAULT_INJECT`
//! installs a process-wide plan at first use, e.g.:
//!
//! ```text
//! VSS_FAULT_INJECT="rate=0.02,seed=7"        # ~2% of durable writes fail
//! VSS_FAULT_INJECT="fail-nth=5"              # the 5th durable write fails
//! VSS_FAULT_INJECT="tear-nth=3,tear-at=17"   # 3rd write torn after 17 bytes
//! VSS_FAULT_INJECT="sync-fail-nth=2"         # the 2nd fsync fails
//! ```

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// What an injected fault does to one durable write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// No fault: perform the full write.
    Proceed,
    /// Tear the write: only the first `n` bytes reach the file, then the
    /// write fails with an injected I/O error.
    Tear(usize),
    /// Fail the write before any byte reaches the file.
    Fail,
}

/// A fault-injection plan. All trigger fields are optional and combine; the
/// counters behind `*_nth` count only writes/syncs matching [`prefix`].
///
/// [`prefix`]: FaultPlan::prefix
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Only paths under this prefix are subject to the plan (`None` = all).
    pub prefix: Option<std::path::PathBuf>,
    /// Fail the Nth matching durable write (1-based).
    pub fail_nth: Option<u64>,
    /// Tear the Nth matching durable write (1-based)...
    pub tear_nth: Option<u64>,
    /// ...leaving only this many bytes in the file.
    pub tear_at: usize,
    /// Fail the Nth matching `fsync` (1-based).
    pub sync_fail_nth: Option<u64>,
    /// Fail each matching write with this probability (deterministic
    /// pseudo-random stream derived from [`seed`](FaultPlan::seed)).
    pub rate: f64,
    /// Seed for the `rate` stream.
    pub seed: u64,
}

impl FaultPlan {
    /// Parses the `VSS_FAULT_INJECT` grammar: comma-separated `key=value`
    /// pairs (`fail-nth`, `tear-nth`, `tear-at`, `sync-fail-nth`, `rate`,
    /// `seed`, `prefix`). Unknown keys or malformed values are an error so
    /// CI misconfiguration cannot silently disable injection.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan { seed: 0x5eed, ..Default::default() };
        for pair in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) =
                pair.split_once('=').ok_or_else(|| format!("expected key=value, got '{pair}'"))?;
            let parse_u64 =
                |v: &str| v.parse::<u64>().map_err(|e| format!("bad value for {key}: {e}"));
            match key {
                "fail-nth" => plan.fail_nth = Some(parse_u64(value)?),
                "tear-nth" => plan.tear_nth = Some(parse_u64(value)?),
                "tear-at" => plan.tear_at = parse_u64(value)? as usize,
                "sync-fail-nth" => plan.sync_fail_nth = Some(parse_u64(value)?),
                "seed" => plan.seed = parse_u64(value)?,
                "rate" => {
                    plan.rate = value
                        .parse::<f64>()
                        .map_err(|e| format!("bad value for rate: {e}"))?
                        .clamp(0.0, 1.0)
                }
                "prefix" => plan.prefix = Some(value.into()),
                other => return Err(format!("unknown fault-injection key '{other}'")),
            }
        }
        Ok(plan)
    }
}

/// One installed plan plus its private counters.
struct Installed {
    id: u64,
    plan: FaultPlan,
    writes: AtomicU64,
    syncs: AtomicU64,
    rng: AtomicU64,
}

impl Installed {
    fn matches(&self, path: &Path) -> bool {
        self.plan.prefix.as_deref().is_none_or(|prefix| path.starts_with(prefix))
    }
}

fn registry() -> &'static Mutex<Vec<Arc<Installed>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Installed>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut initial = Vec::new();
        if let Ok(spec) = std::env::var("VSS_FAULT_INJECT") {
            if !spec.trim().is_empty() {
                match FaultPlan::parse(&spec) {
                    Ok(plan) => initial.push(Arc::new(Installed {
                        id: 0,
                        rng: AtomicU64::new(plan.seed | 1),
                        plan,
                        writes: AtomicU64::new(0),
                        syncs: AtomicU64::new(0),
                    })),
                    Err(message) => {
                        // Surfacing a panic here would violate the "never
                        // panics" contract; a loud message is the best a
                        // process-wide misconfiguration can get.
                        eprintln!("VSS_FAULT_INJECT ignored: {message}");
                    }
                }
            }
        }
        Mutex::new(initial)
    })
}

/// Uninstalls its plan when dropped (so a test's faults cannot outlive it).
#[derive(Debug)]
pub struct FaultGuard {
    id: u64,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        let mut entries = registry().lock().expect("fault registry lock");
        entries.retain(|entry| entry.id != self.id);
    }
}

/// Installs a fault plan; faults apply until the returned guard drops. Pair
/// with [`FaultPlan::prefix`] scoped to the test's own store directory so
/// concurrently running tests are unaffected.
pub fn install(plan: FaultPlan) -> FaultGuard {
    static NEXT_ID: AtomicU64 = AtomicU64::new(1);
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let entry = Arc::new(Installed {
        id,
        rng: AtomicU64::new(plan.seed | 1),
        plan,
        writes: AtomicU64::new(0),
        syncs: AtomicU64::new(0),
    });
    registry().lock().expect("fault registry lock").push(entry);
    FaultGuard { id }
}

fn injected_error(what: &str, path: &Path) -> io::Error {
    io::Error::other(format!("injected fault: {what} ({})", path.display()))
}

/// xorshift64* step, returning a uniform value in `[0, 1)`.
fn next_uniform(rng: &AtomicU64) -> f64 {
    let mut x = rng.load(Ordering::Relaxed);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    rng.store(x, Ordering::Relaxed);
    // The `*` output multiply scrambles the high bits; without it, small
    // seeds yield near-zero first draws and rate mode fires immediately.
    (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64
}

/// Consults the installed plans about a durable write of `len` bytes to
/// `path`. Called by [`crate::durable`] immediately before the bytes are
/// written.
pub fn on_write(path: &Path, len: usize) -> Result<WriteOutcome, io::Error> {
    let entries: Vec<Arc<Installed>> =
        registry().lock().expect("fault registry lock").iter().cloned().collect();
    for entry in entries {
        if !entry.matches(path) {
            continue;
        }
        let count = entry.writes.fetch_add(1, Ordering::Relaxed) + 1;
        if entry.plan.fail_nth == Some(count) {
            return Err(injected_error("write failed", path));
        }
        if entry.plan.tear_nth == Some(count) {
            return Ok(WriteOutcome::Tear(entry.plan.tear_at.min(len)));
        }
        if entry.plan.rate > 0.0 && next_uniform(&entry.rng) < entry.plan.rate {
            return Err(injected_error("write failed (rate)", path));
        }
    }
    Ok(WriteOutcome::Proceed)
}

/// Consults the installed plans about an `fsync` of `path` (file or
/// directory). Called immediately before the real sync.
pub fn on_sync(path: &Path) -> Result<(), io::Error> {
    let entries: Vec<Arc<Installed>> =
        registry().lock().expect("fault registry lock").iter().cloned().collect();
    for entry in entries {
        if !entry.matches(path) {
            continue;
        }
        let count = entry.syncs.fetch_add(1, Ordering::Relaxed) + 1;
        if entry.plan.sync_fail_nth == Some(count) {
            return Err(injected_error("sync failed", path));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn parse_accepts_the_documented_grammar() {
        let plan = FaultPlan::parse("fail-nth=5, tear-nth=3,tear-at=17,rate=0.25,seed=9").unwrap();
        assert_eq!(plan.fail_nth, Some(5));
        assert_eq!(plan.tear_nth, Some(3));
        assert_eq!(plan.tear_at, 17);
        assert_eq!(plan.rate, 0.25);
        assert_eq!(plan.seed, 9);
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("rate=abc").is_err());
        assert!(FaultPlan::parse("fail-nth").is_err());
    }

    #[test]
    fn nth_write_faults_fire_once_and_only_under_the_prefix() {
        let prefix = PathBuf::from("/fault-test-scope/nth");
        let guard = install(FaultPlan {
            prefix: Some(prefix.clone()),
            fail_nth: Some(2),
            ..Default::default()
        });
        let inside = prefix.join("file");
        let outside = PathBuf::from("/fault-test-scope/other/file");
        assert_eq!(on_write(&outside, 10).unwrap(), WriteOutcome::Proceed);
        assert_eq!(on_write(&inside, 10).unwrap(), WriteOutcome::Proceed);
        assert!(on_write(&inside, 10).is_err(), "second matching write fails");
        assert_eq!(on_write(&inside, 10).unwrap(), WriteOutcome::Proceed);
        drop(guard);
        assert_eq!(on_write(&inside, 10).unwrap(), WriteOutcome::Proceed);
    }

    #[test]
    fn tear_is_capped_to_the_write_length() {
        let prefix = PathBuf::from("/fault-test-scope/tear");
        let _guard = install(FaultPlan {
            prefix: Some(prefix.clone()),
            tear_nth: Some(1),
            tear_at: 1000,
            ..Default::default()
        });
        assert_eq!(on_write(&prefix.join("f"), 8).unwrap(), WriteOutcome::Tear(8));
    }

    #[test]
    fn sync_faults_are_counted_separately() {
        let prefix = PathBuf::from("/fault-test-scope/sync");
        let _guard = install(FaultPlan {
            prefix: Some(prefix.clone()),
            sync_fail_nth: Some(1),
            ..Default::default()
        });
        let path = prefix.join("f");
        assert_eq!(on_write(&path, 4).unwrap(), WriteOutcome::Proceed);
        assert!(on_sync(&path).is_err());
        assert!(on_sync(&path).is_ok());
    }

    #[test]
    fn rate_mode_is_deterministic_for_a_seed() {
        let prefix = PathBuf::from("/fault-test-scope/rate");
        let run = |seed: u64| {
            let _guard = install(FaultPlan {
                prefix: Some(prefix.clone()),
                rate: 0.5,
                seed,
                ..Default::default()
            });
            (0..64).map(|_| on_write(&prefix.join("f"), 1).is_err()).collect::<Vec<_>>()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed, same fault stream");
        assert!(a.iter().any(|&f| f) && a.iter().any(|&f| !f), "rate 0.5 mixes outcomes");
    }
}
