//! Durable file I/O primitives: every byte the catalog promises to keep
//! goes through here.
//!
//! The helpers implement the classic crash-safe patterns — write to a
//! temporary file in the same directory, `fsync` the file, `rename` over the
//! destination, then `fsync` the parent directory so the rename itself is
//! durable — and route every write and sync through the
//! [`fault`] injection checks, so the crash-recovery suite can
//! tear or fail any of them deterministically.

use crate::fault::{self, WriteOutcome};
use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// Suffix of in-flight temporary files. Recovery deletes any leftovers, so
/// the suffix is part of the on-disk contract.
pub const TMP_SUFFIX: &str = ".tmp";

/// `fsync`s a directory so a previously performed rename/create/unlink in it
/// survives a power cut. (On some filesystems a rename is not durable until
/// its parent directory has been synced — the hole the original
/// `Catalog::persist` left open.)
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    fault::on_sync(dir)?;
    fs::File::open(dir)?.sync_all()
}

/// Writes `bytes` to `path` and `sync_all`s the file, honouring injected
/// faults (a torn write leaves the configured prefix of the bytes behind and
/// reports the failure).
fn write_and_sync(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let outcome = fault::on_write(path, bytes.len())?;
    let mut file = fs::File::create(path)?;
    match outcome {
        WriteOutcome::Proceed => file.write_all(bytes)?,
        WriteOutcome::Tear(keep) => {
            file.write_all(&bytes[..keep])?;
            let _ = file.sync_all();
            return Err(io::Error::other(format!(
                "injected fault: write torn after {keep} bytes ({})",
                path.display()
            )));
        }
        WriteOutcome::Fail => unreachable!("on_write reports failures as errors"),
    }
    fault::on_sync(path)?;
    file.sync_all()
}

/// Atomically and durably replaces `path` with `bytes`: write to
/// `<path>.tmp`, `fsync` the file, `rename` into place, `fsync` the parent
/// directory. After this returns, either the old content or the new content
/// survives any crash — never a mix, and never neither.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::other(format!("no file name in {}", path.display())))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(TMP_SUFFIX);
    let tmp = path.with_file_name(tmp_name);
    write_and_sync(&tmp, bytes)?;
    fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        fsync_dir(parent)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "vss-durable-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_atomic_replaces_content_and_removes_the_temp() {
        let dir = temp_dir("atomic");
        let path = dir.join("data.bin");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        assert!(!dir.join("data.bin.tmp").exists(), "temp file consumed by the rename");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_leaves_old_content_intact() {
        let dir = temp_dir("torn");
        let path = dir.join("data.bin");
        write_atomic(&path, b"stable contents").unwrap();
        let _guard = fault::install(FaultPlan {
            prefix: Some(dir.clone()),
            tear_nth: Some(1),
            tear_at: 3,
            ..Default::default()
        });
        let err = write_atomic(&path, b"replacement").unwrap_err();
        assert!(err.to_string().contains("injected"), "typed injected error: {err}");
        assert_eq!(fs::read(&path).unwrap(), b"stable contents", "target never touched");
        let tmp = dir.join("data.bin.tmp");
        assert_eq!(fs::read(&tmp).unwrap(), b"rep", "torn prefix stays in the temp file");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_sync_surfaces_before_the_rename() {
        let dir = temp_dir("sync");
        let path = dir.join("data.bin");
        write_atomic(&path, b"old").unwrap();
        let _guard = fault::install(FaultPlan {
            prefix: Some(dir.clone()),
            // Syncs per write_atomic: file sync, then dir sync. Fail the
            // first, i.e. the file's own sync.
            sync_fail_nth: Some(1),
            ..Default::default()
        });
        assert!(write_atomic(&path, b"new").is_err());
        assert_eq!(fs::read(&path).unwrap(), b"old");
        fs::remove_dir_all(&dir).unwrap();
    }
}
