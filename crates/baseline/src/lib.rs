//! # vss-baseline
//!
//! Baseline storage engines the paper evaluates VSS against (Section 6):
//!
//! * [`LocalFs`] — videos are stored as one monolithic encoded file per
//!   logical video on the local file system. Reads in the stored format are
//!   plain file reads; the local file system performs no automatic
//!   transcoding, so cross-format reads are unsupported (applications must
//!   decode/convert themselves, as the paper's OpenCV variant does).
//! * [`VStoreLike`] — models VStore's defining behaviour: the set of formats
//!   to materialize must be declared *a priori*, the whole video is staged in
//!   every declared format at write time, and reads are served only for
//!   staged formats.
//!
//! Both implement the [`VideoStore`] trait, as does [`VssStore`], a thin
//! adapter over [`vss_core::Vss`], so the benchmark harness can drive all
//! three uniformly.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use vss_codec::{codec_instance, encode_to_gops, Codec, EncodedGop, EncoderConfig};
use vss_core::{ReadRequest, Vss, WriteRequest};
use vss_frame::{FrameSequence, Resolution};

/// Errors produced by the baseline stores.
#[derive(Debug)]
pub enum BaselineError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The store does not support the requested operation (e.g. a format
    /// conversion the local file system cannot perform).
    Unsupported(String),
    /// The named video does not exist.
    NotFound(String),
    /// An error from the codec layer.
    Codec(vss_codec::CodecError),
    /// An error from the VSS adapter.
    Vss(vss_core::VssError),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Io(e) => write!(f, "I/O error: {e}"),
            BaselineError::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            BaselineError::NotFound(name) => write!(f, "video '{name}' not found"),
            BaselineError::Codec(e) => write!(f, "codec error: {e}"),
            BaselineError::Vss(e) => write!(f, "vss error: {e}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<std::io::Error> for BaselineError {
    fn from(e: std::io::Error) -> Self {
        BaselineError::Io(e)
    }
}
impl From<vss_codec::CodecError> for BaselineError {
    fn from(e: vss_codec::CodecError) -> Self {
        BaselineError::Codec(e)
    }
}
impl From<vss_core::VssError> for BaselineError {
    fn from(e: vss_core::VssError) -> Self {
        BaselineError::Vss(e)
    }
}

/// The result of a store read: the decoded frames and the wall-clock time the
/// store spent.
#[derive(Debug)]
pub struct StoreReadResult {
    /// Decoded frames (always produced so callers can verify content).
    pub frames: FrameSequence,
    /// Time spent inside the store.
    pub elapsed: Duration,
    /// Bytes read from disk.
    pub bytes_read: u64,
}

/// The result of a store write.
#[derive(Debug)]
pub struct StoreWriteResult {
    /// Time spent inside the store.
    pub elapsed: Duration,
    /// Bytes written to disk.
    pub bytes_written: u64,
}

/// A uniform interface over VSS and the baseline stores, used by the
/// benchmark harness and the end-to-end application driver.
pub trait VideoStore {
    /// Human-readable name used in benchmark output.
    fn label(&self) -> &'static str;

    /// Writes a video in the given codec.
    fn write_video(
        &mut self,
        name: &str,
        codec: Codec,
        frames: &FrameSequence,
    ) -> Result<StoreWriteResult, BaselineError>;

    /// Reads `[start, end)` seconds of a video, converted to the requested
    /// codec and optional resolution.
    fn read_video(
        &mut self,
        name: &str,
        start: f64,
        end: f64,
        resolution: Option<Resolution>,
        codec: Codec,
    ) -> Result<StoreReadResult, BaselineError>;

    /// True if the store can serve a read converting `from` into `to`.
    fn supports_conversion(&self, from: Codec, to: Codec) -> bool;
}

// ---------------------------------------------------------------------------
// Local file system baseline
// ---------------------------------------------------------------------------

struct LocalFsVideo {
    codec: Codec,
    frame_rate: f64,
    gops: Vec<EncodedGop>,
    path: PathBuf,
}

/// The local-file-system baseline: one monolithic encoded file per video.
pub struct LocalFs {
    root: PathBuf,
    encoder: EncoderConfig,
    videos: BTreeMap<String, LocalFsVideo>,
}

impl LocalFs {
    /// Creates a store rooted at a directory.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self, BaselineError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Self { root, encoder: EncoderConfig::default(), videos: BTreeMap::new() })
    }
}

impl VideoStore for LocalFs {
    fn label(&self) -> &'static str {
        "local-fs"
    }

    fn write_video(
        &mut self,
        name: &str,
        codec: Codec,
        frames: &FrameSequence,
    ) -> Result<StoreWriteResult, BaselineError> {
        let started = Instant::now();
        let gops = encode_to_gops(frames, codec, &self.encoder)?;
        let path = self.root.join(format!("{name}.{}", codec.name()));
        let mut file_bytes = Vec::new();
        for gop in &gops {
            let bytes = gop.to_bytes();
            file_bytes.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            file_bytes.extend_from_slice(&bytes);
        }
        fs::write(&path, &file_bytes)?;
        let bytes_written = file_bytes.len() as u64;
        self.videos.insert(
            name.to_string(),
            LocalFsVideo { codec, frame_rate: frames.frame_rate(), gops, path },
        );
        Ok(StoreWriteResult { elapsed: started.elapsed(), bytes_written })
    }

    fn read_video(
        &mut self,
        name: &str,
        start: f64,
        end: f64,
        resolution: Option<Resolution>,
        codec: Codec,
    ) -> Result<StoreReadResult, BaselineError> {
        let started = Instant::now();
        let video = self.videos.get(name).ok_or_else(|| BaselineError::NotFound(name.into()))?;
        if codec != video.codec {
            return Err(BaselineError::Unsupported(format!(
                "local file system cannot convert {} to {}",
                video.codec, codec
            )));
        }
        if resolution.is_some() {
            return Err(BaselineError::Unsupported("local file system cannot rescale".into()));
        }
        // Read the monolithic file back, then decode the requested range.
        let file_bytes = fs::read(&video.path)?;
        let bytes_read = file_bytes.len() as u64;
        let implementation = codec_instance(video.codec);
        let mut frames = FrameSequence::empty(video.frame_rate).map_err(vss_codec::CodecError::from)?;
        let mut time = 0.0f64;
        for gop in &video.gops {
            let duration = gop.frame_count() as f64 / video.frame_rate;
            if time + duration > start && time < end {
                let decoded = implementation.decode(gop)?;
                for (i, frame) in decoded.frames().iter().enumerate() {
                    let t = time + i as f64 / video.frame_rate;
                    if t >= start && t < end {
                        frames.push(frame.clone()).map_err(vss_codec::CodecError::from)?;
                    }
                }
            }
            time += duration;
        }
        Ok(StoreReadResult { frames, elapsed: started.elapsed(), bytes_read })
    }

    fn supports_conversion(&self, from: Codec, to: Codec) -> bool {
        from == to
    }
}

// ---------------------------------------------------------------------------
// VStore-like baseline
// ---------------------------------------------------------------------------

/// A VStore-like baseline: formats must be declared in advance, the whole
/// video is materialized in every declared format at write time, and reads
/// are served only for staged formats.
pub struct VStoreLike {
    root: PathBuf,
    encoder: EncoderConfig,
    staged_formats: Vec<Codec>,
    videos: BTreeMap<String, BTreeMap<String, StagedVideo>>,
}

/// One staged representation: frame rate, encoded GOPs and backing path.
type StagedVideo = (f64, Vec<EncodedGop>, PathBuf);

impl VStoreLike {
    /// Creates a store that will stage the given formats for every written
    /// video (the a-priori workload knowledge VStore requires).
    pub fn new(root: impl Into<PathBuf>, staged_formats: Vec<Codec>) -> Result<Self, BaselineError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Self { root, encoder: EncoderConfig::default(), staged_formats, videos: BTreeMap::new() })
    }
}

impl VideoStore for VStoreLike {
    fn label(&self) -> &'static str {
        "vstore-like"
    }

    fn write_video(
        &mut self,
        name: &str,
        codec: Codec,
        frames: &FrameSequence,
    ) -> Result<StoreWriteResult, BaselineError> {
        let started = Instant::now();
        let mut staged = BTreeMap::new();
        let mut bytes_written = 0u64;
        let mut formats = self.staged_formats.clone();
        if !formats.contains(&codec) {
            formats.push(codec);
        }
        // VStore materializes the complete video in every pre-declared
        // format, even if only a small subset will ever be read.
        for format in formats {
            let gops = encode_to_gops(frames, format, &self.encoder)?;
            let path = self.root.join(format!("{name}.{}", format.name()));
            let mut file_bytes = Vec::new();
            for gop in &gops {
                file_bytes.extend_from_slice(&gop.to_bytes());
            }
            fs::write(&path, &file_bytes)?;
            bytes_written += file_bytes.len() as u64;
            staged.insert(format.name(), (frames.frame_rate(), gops, path));
        }
        self.videos.insert(name.to_string(), staged);
        Ok(StoreWriteResult { elapsed: started.elapsed(), bytes_written })
    }

    fn read_video(
        &mut self,
        name: &str,
        start: f64,
        end: f64,
        resolution: Option<Resolution>,
        codec: Codec,
    ) -> Result<StoreReadResult, BaselineError> {
        let started = Instant::now();
        let video = self.videos.get(name).ok_or_else(|| BaselineError::NotFound(name.into()))?;
        if resolution.is_some() {
            return Err(BaselineError::Unsupported("vstore-like staging is full-resolution only".into()));
        }
        let Some((frame_rate, gops, path)) = video.get(codec.name().as_str()) else {
            return Err(BaselineError::Unsupported(format!(
                "format {codec} was not staged at write time"
            )));
        };
        let bytes_read = fs::metadata(path)?.len();
        let implementation = codec_instance(codec);
        let mut frames = FrameSequence::empty(*frame_rate).map_err(vss_codec::CodecError::from)?;
        let mut time = 0.0f64;
        for gop in gops {
            let duration = gop.frame_count() as f64 / frame_rate;
            if time + duration > start && time < end {
                let decoded = implementation.decode(gop)?;
                for (i, frame) in decoded.frames().iter().enumerate() {
                    let t = time + i as f64 / frame_rate;
                    if t >= start && t < end {
                        frames.push(frame.clone()).map_err(vss_codec::CodecError::from)?;
                    }
                }
            }
            time += duration;
        }
        Ok(StoreReadResult { frames, elapsed: started.elapsed(), bytes_read })
    }

    fn supports_conversion(&self, _from: Codec, to: Codec) -> bool {
        self.staged_formats.contains(&to)
    }
}

// ---------------------------------------------------------------------------
// VSS adapter
// ---------------------------------------------------------------------------

/// Adapter exposing a [`Vss`] store through the [`VideoStore`] trait.
pub struct VssStore {
    vss: Vss,
}

impl VssStore {
    /// Wraps an existing VSS handle.
    pub fn new(vss: Vss) -> Self {
        Self { vss }
    }

    /// Access to the underlying handle.
    pub fn vss(&self) -> &Vss {
        &self.vss
    }
}

impl VideoStore for VssStore {
    fn label(&self) -> &'static str {
        "vss"
    }

    fn write_video(
        &mut self,
        name: &str,
        codec: Codec,
        frames: &FrameSequence,
    ) -> Result<StoreWriteResult, BaselineError> {
        let report = self.vss.write(&WriteRequest::new(name, codec), frames)?;
        Ok(StoreWriteResult { elapsed: report.elapsed, bytes_written: report.bytes_written })
    }

    fn read_video(
        &mut self,
        name: &str,
        start: f64,
        end: f64,
        resolution: Option<Resolution>,
        codec: Codec,
    ) -> Result<StoreReadResult, BaselineError> {
        let started = Instant::now();
        let mut request = ReadRequest::new(name, start, end, codec);
        if let Some(resolution) = resolution {
            request = request.at_resolution(resolution);
        }
        let result = self.vss.read(&request)?;
        Ok(StoreReadResult {
            frames: result.frames,
            elapsed: started.elapsed(),
            bytes_read: result.stats.bytes_read,
        })
    }

    fn supports_conversion(&self, _from: Codec, _to: Codec) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vss_frame::{pattern, PixelFormat};

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "vss-baseline-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sequence(frames: usize) -> FrameSequence {
        let frames: Vec<_> =
            (0..frames).map(|i| pattern::gradient(64, 48, PixelFormat::Yuv420, i as u64)).collect();
        FrameSequence::new(frames, 30.0).unwrap()
    }

    #[test]
    fn local_fs_round_trips_same_format_only() {
        let root = temp_root("localfs");
        let mut store = LocalFs::new(&root).unwrap();
        let written = store.write_video("v", Codec::H264, &sequence(60)).unwrap();
        assert!(written.bytes_written > 0);
        let read = store.read_video("v", 0.5, 1.5, None, Codec::H264).unwrap();
        assert_eq!(read.frames.len(), 30);
        assert!(read.bytes_read >= written.bytes_written);
        assert!(matches!(
            store.read_video("v", 0.0, 1.0, None, Codec::Hevc),
            Err(BaselineError::Unsupported(_))
        ));
        assert!(matches!(
            store.read_video("v", 0.0, 1.0, Some(Resolution::QVGA), Codec::H264),
            Err(BaselineError::Unsupported(_))
        ));
        assert!(matches!(
            store.read_video("missing", 0.0, 1.0, None, Codec::H264),
            Err(BaselineError::NotFound(_))
        ));
        assert!(store.supports_conversion(Codec::H264, Codec::H264));
        assert!(!store.supports_conversion(Codec::H264, Codec::Hevc));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn vstore_like_serves_only_staged_formats_and_pays_full_staging_cost() {
        let root = temp_root("vstore");
        let mut staged =
            VStoreLike::new(&root, vec![Codec::H264, Codec::Raw(PixelFormat::Yuv420)]).unwrap();
        let written = staged.write_video("v", Codec::H264, &sequence(30)).unwrap();
        // The raw staging dominates: the whole video exists in both formats.
        let raw_size = PixelFormat::Yuv420.frame_bytes(64, 48) * 30;
        assert!(written.bytes_written as usize > raw_size);
        assert!(staged.read_video("v", 0.0, 1.0, None, Codec::Raw(PixelFormat::Yuv420)).is_ok());
        assert!(staged.read_video("v", 0.0, 1.0, None, Codec::H264).is_ok());
        assert!(matches!(
            staged.read_video("v", 0.0, 1.0, None, Codec::Hevc),
            Err(BaselineError::Unsupported(_))
        ));
        assert!(staged.supports_conversion(Codec::H264, Codec::Raw(PixelFormat::Yuv420)));
        assert!(!staged.supports_conversion(Codec::H264, Codec::Hevc));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn vss_adapter_serves_any_conversion() {
        let root = temp_root("vss-adapter");
        let vss = Vss::open_at(&root).unwrap();
        let mut store = VssStore::new(vss);
        store.write_video("v", Codec::H264, &sequence(60)).unwrap();
        let read = store.read_video("v", 0.0, 1.0, None, Codec::Hevc).unwrap();
        assert_eq!(read.frames.len(), 30);
        let scaled = store
            .read_video("v", 0.0, 1.0, Some(Resolution::new(32, 24)), Codec::Raw(PixelFormat::Rgb8))
            .unwrap();
        assert_eq!(scaled.frames.frames()[0].width(), 32);
        assert!(store.supports_conversion(Codec::H264, Codec::Hevc));
        assert_eq!(store.label(), "vss");
        let _ = fs::remove_dir_all(root);
    }
}
