//! # vss-baseline
//!
//! Baseline storage engines the paper evaluates VSS against (Section 6):
//!
//! * [`LocalFs`] — videos are stored as one monolithic encoded file per
//!   logical video on the local file system. Reads in the stored format are
//!   plain file reads; the local file system performs no automatic
//!   transcoding, so cross-format reads are unsupported (applications must
//!   decode/convert themselves, as the paper's OpenCV variant does).
//! * [`VStoreLike`] — models VStore's defining behaviour: the set of formats
//!   to materialize must be declared *a priori*, the whole video is staged in
//!   every declared format at write time, and reads are served only for
//!   staged formats.
//!
//! Both implement [`vss_core::VideoStorage`] — the same unified contract the
//! VSS engine ([`vss_core::Vss`]) and the sharded `vss-server` sessions
//! implement — so the benchmark harness and the end-to-end application
//! driver swap stores without code changes. Unsupported conversions surface
//! as [`VssError::Unsupported`]. Their streaming behaviour is honest about
//! the architecture the paper criticizes: `read_stream` still reads the
//! **whole monolithic file** before the first chunk decodes (GOP-at-a-time
//! decode, O(file) I/O), and `write_sink` falls back to buffering the clip
//! and batch-writing at finish — contrast with VSS, where both directions
//! are O(GOP).
//!
//! The historical [`VideoStore`] trait (with its per-store
//! [`StoreReadResult`]/[`StoreWriteResult`]) is deprecated; every
//! [`VideoStorage`] implementor satisfies it through a blanket shim. Port
//! call sites to request-based calls, e.g.
//! `store.read(&ReadRequest::new(name, start, end, codec))`.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use vss_codec::{codec_instance, encode_to_gops, Codec, EncodedGop, EncoderConfig};
use vss_core::{
    ChunkStats, ReadChunk, ReadRequest, ReadResult, ReadStream, StorageBudget, VideoMetadata,
    VideoStorage, VssError, WriteReport, WriteRequest,
};
use vss_frame::{FrameSequence, Resolution};

/// Errors produced by the baseline stores (legacy vocabulary; the
/// [`VideoStorage`] methods speak [`VssError`] directly, and the two convert
/// into each other without information loss).
#[derive(Debug)]
pub enum BaselineError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The store does not support the requested operation (e.g. a format
    /// conversion the local file system cannot perform).
    Unsupported(String),
    /// The named video does not exist.
    NotFound(String),
    /// An error from the codec layer.
    Codec(vss_codec::CodecError),
    /// An error from the VSS adapter.
    Vss(vss_core::VssError),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Io(e) => write!(f, "I/O error: {e}"),
            BaselineError::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            BaselineError::NotFound(name) => write!(f, "video '{name}' not found"),
            BaselineError::Codec(e) => write!(f, "codec error: {e}"),
            BaselineError::Vss(e) => write!(f, "vss error: {e}"),
        }
    }
}

impl std::error::Error for BaselineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BaselineError::Io(e) => Some(e),
            BaselineError::Codec(e) => Some(e),
            BaselineError::Vss(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for BaselineError {
    fn from(e: std::io::Error) -> Self {
        BaselineError::Io(e)
    }
}
impl From<vss_codec::CodecError> for BaselineError {
    fn from(e: vss_codec::CodecError) -> Self {
        BaselineError::Codec(e)
    }
}
impl From<vss_core::VssError> for BaselineError {
    // Deliberately exhaustive (no `_`/catch-all arm) so that adding a
    // `VssError` variant forces a decision here — and in the `vss-net` wire
    // mapping — instead of silently degrading to a generic wrapper.
    fn from(e: vss_core::VssError) -> Self {
        match e {
            VssError::Unsupported(msg) => BaselineError::Unsupported(msg),
            VssError::VideoNotFound(name) => BaselineError::NotFound(name),
            VssError::Codec(e) => BaselineError::Codec(e),
            VssError::Catalog(vss_catalog::CatalogError::Io(e)) => BaselineError::Io(e),
            other @ (VssError::VideoExists(_)
            | VssError::OutOfRange { .. }
            | VssError::EmptyWrite
            | VssError::Unsatisfiable(_)
            | VssError::JointCompressionAborted(_)
            | VssError::Overloaded(_)
            | VssError::Remote { .. }
            | VssError::Catalog(_)
            | VssError::Frame(_)
            | VssError::Solver(_)
            | VssError::Vision(_)) => BaselineError::Vss(other),
        }
    }
}

/// The inverse mapping, so call sites can mix baseline stores and VSS behind
/// one `Result<_, VssError>` without hand-mapping errors.
impl From<BaselineError> for VssError {
    fn from(e: BaselineError) -> Self {
        match e {
            BaselineError::Io(e) => VssError::Catalog(vss_catalog::CatalogError::Io(e)),
            BaselineError::Unsupported(msg) => VssError::Unsupported(msg),
            BaselineError::NotFound(name) => VssError::VideoNotFound(name),
            BaselineError::Codec(e) => VssError::Codec(e),
            BaselineError::Vss(e) => e,
        }
    }
}

fn io_error(e: std::io::Error) -> VssError {
    VssError::Catalog(vss_catalog::CatalogError::Io(e))
}

/// Builds the GOP-at-a-time chunk iterator shared by both baselines: decode
/// each overlapping GOP, keep the frames inside `[start, end)`, and (for
/// same-codec compressed requests) hand the stored GOP through GOP-aligned.
/// `file_bytes` — the monolithic read both baselines pay up front — is
/// attributed to the first chunk.
#[allow(clippy::too_many_arguments)]
fn baseline_chunks(
    gops: Vec<EncodedGop>,
    codec: Codec,
    frame_rate: f64,
    start: f64,
    end: f64,
    file_bytes: u64,
    emit_encoded: bool,
) -> impl Iterator<Item = Result<ReadChunk, VssError>> + Send {
    let mut time = 0.0f64;
    let mut positioned = Vec::with_capacity(gops.len());
    for gop in gops {
        let duration = gop.frame_count() as f64 / frame_rate;
        let gop_start = time;
        time += duration;
        if gop_start + duration > start && gop_start < end {
            positioned.push((gop, gop_start));
        }
    }
    let mut first = true;
    positioned.into_iter().map(move |(gop, gop_start)| {
        let implementation = codec_instance(codec);
        let decoded = implementation.decode(&gop)?;
        let mut frames = FrameSequence::empty(frame_rate)?;
        for (i, frame) in decoded.frames().iter().enumerate() {
            let t = gop_start + i as f64 / frame_rate;
            if t >= start && t < end {
                frames.push(frame.clone())?;
            }
        }
        let frames_decoded = decoded.len();
        let bytes_read = if first { file_bytes } else { 0 };
        first = false;
        Ok(ReadChunk {
            frames,
            encoded_gop: if emit_encoded { Some(gop) } else { None },
            stats_delta: ChunkStats { gops_read: 1, frames_decoded, bytes_read },
        })
    })
}

/// Validates the request shapes neither baseline can serve (they store one
/// fixed configuration and perform no resampling).
fn reject_resampling(request: &ReadRequest, label: &str) -> Result<(), VssError> {
    if request.spatial.resolution.is_some() {
        return Err(VssError::Unsupported(format!("{label} cannot rescale")));
    }
    if request.spatial.region.is_some() {
        return Err(VssError::Unsupported(format!("{label} cannot crop")));
    }
    if request.temporal.frame_rate.is_some() {
        return Err(VssError::Unsupported(format!("{label} cannot resample frame rates")));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Local file system baseline
// ---------------------------------------------------------------------------

struct LocalFsVideo {
    codec: Codec,
    frame_rate: f64,
    gops: Vec<EncodedGop>,
    path: PathBuf,
}

impl LocalFsVideo {
    fn duration(&self) -> f64 {
        self.gops.iter().map(|g| g.frame_count()).sum::<usize>() as f64 / self.frame_rate
    }

    fn write_file(&self) -> Result<u64, VssError> {
        let mut file_bytes = Vec::new();
        for gop in &self.gops {
            let bytes = gop.to_bytes();
            file_bytes.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            file_bytes.extend_from_slice(&bytes);
        }
        fs::write(&self.path, &file_bytes).map_err(io_error)?;
        Ok(file_bytes.len() as u64)
    }
}

/// The local-file-system baseline: one monolithic encoded file per video.
pub struct LocalFs {
    root: PathBuf,
    encoder: EncoderConfig,
    videos: BTreeMap<String, LocalFsVideo>,
}

impl LocalFs {
    /// Creates a store rooted at a directory.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self, VssError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(io_error)?;
        Ok(Self { root, encoder: EncoderConfig::default(), videos: BTreeMap::new() })
    }

    fn video(&self, name: &str) -> Result<&LocalFsVideo, VssError> {
        self.videos.get(name).ok_or_else(|| VssError::VideoNotFound(name.into()))
    }
}

impl VideoStorage for LocalFs {
    fn label(&self) -> &'static str {
        "local-fs"
    }

    fn create(&mut self, name: &str, budget: Option<StorageBudget>) -> Result<(), VssError> {
        if budget.is_some() {
            return Err(VssError::Unsupported(
                "local file system enforces no storage budgets".into(),
            ));
        }
        // Videos materialize on first write; nothing to record.
        let _ = name;
        Ok(())
    }

    fn delete(&mut self, name: &str) -> Result<(), VssError> {
        let video =
            self.videos.remove(name).ok_or_else(|| VssError::VideoNotFound(name.into()))?;
        if video.path.exists() {
            fs::remove_file(&video.path).map_err(io_error)?;
        }
        Ok(())
    }

    fn write(
        &mut self,
        request: &WriteRequest,
        frames: &FrameSequence,
    ) -> Result<WriteReport, VssError> {
        let started = Instant::now();
        if frames.is_empty() {
            return Err(VssError::EmptyWrite);
        }
        let gops = encode_to_gops(frames, request.codec, &self.encoder)?;
        let path = self.root.join(format!("{}.{}", request.name, request.codec.name()));
        let video = LocalFsVideo {
            codec: request.codec,
            frame_rate: frames.frame_rate(),
            gops,
            path,
        };
        let bytes_written = video.write_file()?;
        let gops_written = video.gops.len();
        self.videos.insert(request.name.clone(), video);
        Ok(WriteReport {
            physical_id: 0,
            gops_written,
            frames_written: frames.len(),
            bytes_written,
            deferred_levels: vec![0; gops_written],
            elapsed: started.elapsed(),
        })
    }

    fn append(&mut self, name: &str, frames: &FrameSequence) -> Result<WriteReport, VssError> {
        let started = Instant::now();
        if frames.is_empty() {
            return Err(VssError::EmptyWrite);
        }
        let encoder = self.encoder;
        let video =
            self.videos.get_mut(name).ok_or_else(|| VssError::VideoNotFound(name.into()))?;
        if (frames.frame_rate() - video.frame_rate).abs() > 1e-9 {
            return Err(VssError::Unsupported("append must match the stored frame rate".into()));
        }
        let new_gops = encode_to_gops(frames, video.codec, &encoder)?;
        let gops_written = new_gops.len();
        let before = fs::metadata(&video.path).map(|m| m.len()).unwrap_or(0);
        video.gops.extend(new_gops);
        // The monolithic file is rewritten in full — the baseline's append
        // cost the paper's GOP-file layout avoids.
        let total = video.write_file()?;
        Ok(WriteReport {
            physical_id: 0,
            gops_written,
            frames_written: frames.len(),
            bytes_written: total - before,
            deferred_levels: vec![0; gops_written],
            elapsed: started.elapsed(),
        })
    }

    fn read(&mut self, request: &ReadRequest) -> Result<ReadResult, VssError> {
        self.read_stream(request)?.drain()
    }

    fn read_stream(&mut self, request: &ReadRequest) -> Result<ReadStream, VssError> {
        reject_resampling(request, "local file system")?;
        let video = self.video(&request.name)?;
        if request.physical.codec != video.codec {
            return Err(VssError::Unsupported(format!(
                "local file system cannot convert {} to {}",
                video.codec, request.physical.codec
            )));
        }
        // The whole monolithic file is read up front — decoding is then
        // GOP-at-a-time, but the I/O is O(file) by construction.
        let file_bytes = fs::read(&video.path).map_err(io_error)?.len() as u64;
        let compressed = request.physical.codec.is_compressed();
        let chunks = baseline_chunks(
            video.gops.clone(),
            video.codec,
            video.frame_rate,
            request.temporal.start,
            request.temporal.end,
            file_bytes,
            compressed,
        );
        Ok(ReadStream::from_chunks(video.frame_rate, compressed, chunks))
    }

    fn metadata(&self, name: &str) -> Result<VideoMetadata, VssError> {
        let video = self.video(name)?;
        let bytes_used = fs::metadata(&video.path).map(|m| m.len()).unwrap_or(0);
        Ok(VideoMetadata {
            bytes_used,
            budget_bytes: None,
            time_range: Some((0.0, video.duration())),
        })
    }

    fn supports_conversion(&self, from: Codec, to: Codec) -> bool {
        from == to
    }
}

// ---------------------------------------------------------------------------
// VStore-like baseline
// ---------------------------------------------------------------------------

/// A VStore-like baseline: formats must be declared in advance, the whole
/// video is materialized in every declared format at write time, and reads
/// are served only for staged formats.
pub struct VStoreLike {
    root: PathBuf,
    encoder: EncoderConfig,
    staged_formats: Vec<Codec>,
    videos: BTreeMap<String, BTreeMap<String, StagedVideo>>,
}

/// One staged representation: frame rate, encoded GOPs and backing path.
type StagedVideo = (f64, Vec<EncodedGop>, PathBuf);

impl VStoreLike {
    /// Creates a store that will stage the given formats for every written
    /// video (the a-priori workload knowledge VStore requires).
    pub fn new(root: impl Into<PathBuf>, staged_formats: Vec<Codec>) -> Result<Self, VssError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(io_error)?;
        Ok(Self { root, encoder: EncoderConfig::default(), staged_formats, videos: BTreeMap::new() })
    }
}

impl VideoStorage for VStoreLike {
    fn label(&self) -> &'static str {
        "vstore-like"
    }

    fn create(&mut self, name: &str, budget: Option<StorageBudget>) -> Result<(), VssError> {
        if budget.is_some() {
            return Err(VssError::Unsupported("vstore-like enforces no storage budgets".into()));
        }
        let _ = name;
        Ok(())
    }

    fn delete(&mut self, name: &str) -> Result<(), VssError> {
        let staged =
            self.videos.remove(name).ok_or_else(|| VssError::VideoNotFound(name.into()))?;
        for (_, (_, _, path)) in staged {
            if path.exists() {
                fs::remove_file(path).map_err(io_error)?;
            }
        }
        Ok(())
    }

    fn write(
        &mut self,
        request: &WriteRequest,
        frames: &FrameSequence,
    ) -> Result<WriteReport, VssError> {
        let started = Instant::now();
        if frames.is_empty() {
            return Err(VssError::EmptyWrite);
        }
        let mut staged = BTreeMap::new();
        let mut bytes_written = 0u64;
        let mut gops_written = 0usize;
        let mut formats = self.staged_formats.clone();
        if !formats.contains(&request.codec) {
            formats.push(request.codec);
        }
        // VStore materializes the complete video in every pre-declared
        // format, even if only a small subset will ever be read.
        for format in formats {
            let gops = encode_to_gops(frames, format, &self.encoder)?;
            let path = self.root.join(format!("{}.{}", request.name, format.name()));
            let mut file_bytes = Vec::new();
            for gop in &gops {
                file_bytes.extend_from_slice(&gop.to_bytes());
            }
            fs::write(&path, &file_bytes).map_err(io_error)?;
            bytes_written += file_bytes.len() as u64;
            gops_written += gops.len();
            staged.insert(format.name(), (frames.frame_rate(), gops, path));
        }
        self.videos.insert(request.name.clone(), staged);
        Ok(WriteReport {
            physical_id: 0,
            gops_written,
            frames_written: frames.len(),
            bytes_written,
            deferred_levels: vec![0; gops_written],
            elapsed: started.elapsed(),
        })
    }

    fn append(&mut self, name: &str, _frames: &FrameSequence) -> Result<WriteReport, VssError> {
        let _ = self.videos.get(name).ok_or_else(|| VssError::VideoNotFound(name.into()))?;
        Err(VssError::Unsupported(
            "vstore-like staging materializes whole videos at write time; append would restage \
             every declared format"
                .into(),
        ))
    }

    fn read(&mut self, request: &ReadRequest) -> Result<ReadResult, VssError> {
        self.read_stream(request)?.drain()
    }

    fn read_stream(&mut self, request: &ReadRequest) -> Result<ReadStream, VssError> {
        reject_resampling(request, "vstore-like staging")?;
        let video = self
            .videos
            .get(&request.name)
            .ok_or_else(|| VssError::VideoNotFound(request.name.clone()))?;
        let codec = request.physical.codec;
        let Some((frame_rate, gops, path)) = video.get(codec.name().as_str()) else {
            return Err(VssError::Unsupported(format!(
                "format {codec} was not staged at write time"
            )));
        };
        let file_bytes = fs::metadata(path).map_err(io_error)?.len();
        let compressed = codec.is_compressed();
        let chunks = baseline_chunks(
            gops.clone(),
            codec,
            *frame_rate,
            request.temporal.start,
            request.temporal.end,
            file_bytes,
            compressed,
        );
        Ok(ReadStream::from_chunks(*frame_rate, compressed, chunks))
    }

    fn metadata(&self, name: &str) -> Result<VideoMetadata, VssError> {
        let staged =
            self.videos.get(name).ok_or_else(|| VssError::VideoNotFound(name.into()))?;
        let mut bytes_used = 0u64;
        let mut duration = 0.0f64;
        for (frame_rate, gops, path) in staged.values() {
            bytes_used += fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            duration = duration
                .max(gops.iter().map(|g| g.frame_count()).sum::<usize>() as f64 / frame_rate);
        }
        Ok(VideoMetadata { bytes_used, budget_bytes: None, time_range: Some((0.0, duration)) })
    }

    fn supports_conversion(&self, _from: Codec, to: Codec) -> bool {
        self.staged_formats.contains(&to)
    }
}

// ---------------------------------------------------------------------------
// Deprecated `VideoStore` shim
// ---------------------------------------------------------------------------

/// The result of a legacy store read.
#[deprecated(note = "use vss_core::VideoStorage::read, which returns ReadResult")]
#[derive(Debug)]
pub struct StoreReadResult {
    /// Decoded frames (always produced so callers can verify content).
    pub frames: FrameSequence,
    /// Time spent inside the store.
    pub elapsed: Duration,
    /// Bytes read from disk.
    pub bytes_read: u64,
}

/// The result of a legacy store write.
#[deprecated(note = "use vss_core::VideoStorage::write, which returns WriteReport")]
#[derive(Debug)]
pub struct StoreWriteResult {
    /// Time spent inside the store.
    pub elapsed: Duration,
    /// Bytes written to disk.
    pub bytes_written: u64,
}

/// The historical uniform store interface, superseded by
/// [`vss_core::VideoStorage`] (which additionally covers create/delete,
/// streaming reads, incremental writes and metadata). Every `VideoStorage`
/// implementor satisfies this trait through a blanket impl, so legacy call
/// sites keep compiling while they migrate.
#[deprecated(note = "use vss_core::VideoStorage; see the crate docs for the migration mapping")]
pub trait VideoStore {
    /// Human-readable name used in benchmark output.
    fn label(&self) -> &'static str;

    /// Writes a video in the given codec.
    #[allow(deprecated)]
    fn write_video(
        &mut self,
        name: &str,
        codec: Codec,
        frames: &FrameSequence,
    ) -> Result<StoreWriteResult, BaselineError>;

    /// Reads `[start, end)` seconds of a video, converted to the requested
    /// codec and optional resolution.
    #[allow(deprecated)]
    fn read_video(
        &mut self,
        name: &str,
        start: f64,
        end: f64,
        resolution: Option<Resolution>,
        codec: Codec,
    ) -> Result<StoreReadResult, BaselineError>;

    /// True if the store can serve a read converting `from` into `to`.
    fn supports_conversion(&self, from: Codec, to: Codec) -> bool;
}

#[allow(deprecated)]
impl<S: VideoStorage + ?Sized> VideoStore for S {
    fn label(&self) -> &'static str {
        VideoStorage::label(self)
    }

    fn write_video(
        &mut self,
        name: &str,
        codec: Codec,
        frames: &FrameSequence,
    ) -> Result<StoreWriteResult, BaselineError> {
        let report = VideoStorage::write(self, &WriteRequest::new(name, codec), frames)?;
        Ok(StoreWriteResult { elapsed: report.elapsed, bytes_written: report.bytes_written })
    }

    fn read_video(
        &mut self,
        name: &str,
        start: f64,
        end: f64,
        resolution: Option<Resolution>,
        codec: Codec,
    ) -> Result<StoreReadResult, BaselineError> {
        let started = Instant::now();
        let mut request = ReadRequest::new(name, start, end, codec);
        if let Some(resolution) = resolution {
            request = request.resolution(resolution);
        }
        let result = VideoStorage::read(self, &request)?;
        Ok(StoreReadResult {
            frames: result.frames,
            elapsed: started.elapsed(),
            bytes_read: result.stats.bytes_read,
        })
    }

    fn supports_conversion(&self, from: Codec, to: Codec) -> bool {
        VideoStorage::supports_conversion(self, from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vss_frame::{pattern, PixelFormat};

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "vss-baseline-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sequence(frames: usize) -> FrameSequence {
        let frames: Vec<_> =
            (0..frames).map(|i| pattern::gradient(64, 48, PixelFormat::Yuv420, i as u64)).collect();
        FrameSequence::new(frames, 30.0).unwrap()
    }

    #[test]
    fn local_fs_round_trips_same_format_only() {
        let root = temp_root("localfs");
        let mut store = LocalFs::new(&root).unwrap();
        let written = store.write(&WriteRequest::new("v", Codec::H264), &sequence(60)).unwrap();
        assert!(written.bytes_written > 0);
        let read = store.read(&ReadRequest::new("v", 0.5, 1.5, Codec::H264)).unwrap();
        assert_eq!(read.frames.len(), 30);
        assert!(read.stats.bytes_read >= written.bytes_written);
        assert!(read.encoded.as_ref().is_some_and(|g| !g.is_empty()), "same-codec GOPs pass through");
        assert!(matches!(
            store.read(&ReadRequest::new("v", 0.0, 1.0, Codec::Hevc)),
            Err(VssError::Unsupported(_))
        ));
        assert!(matches!(
            store.read(&ReadRequest::new("v", 0.0, 1.0, Codec::H264).resolution(Resolution::QVGA)),
            Err(VssError::Unsupported(_))
        ));
        assert!(matches!(
            store.read(&ReadRequest::new("missing", 0.0, 1.0, Codec::H264)),
            Err(VssError::VideoNotFound(_))
        ));
        assert!(VideoStorage::supports_conversion(&store, Codec::H264, Codec::H264));
        assert!(!VideoStorage::supports_conversion(&store, Codec::H264, Codec::Hevc));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn local_fs_streaming_matches_materialized_reads() {
        let root = temp_root("localfs-stream");
        let mut store = LocalFs::new(&root).unwrap();
        store.write(&WriteRequest::new("v", Codec::H264), &sequence(90)).unwrap();
        let request = ReadRequest::new("v", 0.5, 2.5, Codec::H264);
        let materialized = store.read(&request).unwrap();
        let mut streamed = FrameSequence::empty(30.0).unwrap();
        let mut chunks = 0;
        for chunk in store.read_stream(&request).unwrap() {
            streamed.extend(chunk.unwrap().frames).unwrap();
            chunks += 1;
        }
        assert!(chunks >= 2, "GOP-at-a-time chunking yields multiple chunks");
        assert_eq!(streamed.frames(), materialized.frames.frames());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn local_fs_lifecycle_append_delete_metadata() {
        let root = temp_root("localfs-lifecycle");
        let mut store = LocalFs::new(&root).unwrap();
        store.create("v", None).unwrap();
        assert!(matches!(
            store.create("v", Some(StorageBudget::Bytes(1))),
            Err(VssError::Unsupported(_))
        ));
        store.write(&WriteRequest::new("v", Codec::H264), &sequence(30)).unwrap();
        store.append("v", &sequence(30)).unwrap();
        let metadata = store.metadata("v").unwrap();
        assert!(metadata.bytes_used > 0);
        assert_eq!(metadata.budget_bytes, None);
        let (start, end) = metadata.time_range.unwrap();
        assert_eq!(start, 0.0);
        assert!((end - 2.0).abs() < 1e-9);
        let read = store.read(&ReadRequest::new("v", 0.0, 2.0, Codec::H264)).unwrap();
        assert_eq!(read.frames.len(), 60);
        store.delete("v").unwrap();
        assert!(matches!(store.metadata("v"), Err(VssError::VideoNotFound(_))));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn vstore_like_serves_only_staged_formats_and_pays_full_staging_cost() {
        let root = temp_root("vstore");
        let mut staged =
            VStoreLike::new(&root, vec![Codec::H264, Codec::Raw(PixelFormat::Yuv420)]).unwrap();
        let written = staged.write(&WriteRequest::new("v", Codec::H264), &sequence(30)).unwrap();
        // The raw staging dominates: the whole video exists in both formats.
        let raw_size = PixelFormat::Yuv420.frame_bytes(64, 48) * 30;
        assert!(written.bytes_written as usize > raw_size);
        assert!(staged.read(&ReadRequest::new("v", 0.0, 1.0, Codec::Raw(PixelFormat::Yuv420))).is_ok());
        assert!(staged.read(&ReadRequest::new("v", 0.0, 1.0, Codec::H264)).is_ok());
        assert!(matches!(
            staged.read(&ReadRequest::new("v", 0.0, 1.0, Codec::Hevc)),
            Err(VssError::Unsupported(_))
        ));
        assert!(matches!(staged.append("v", &sequence(3)), Err(VssError::Unsupported(_))));
        assert!(VideoStorage::supports_conversion(&staged, Codec::H264, Codec::Raw(PixelFormat::Yuv420)));
        assert!(!VideoStorage::supports_conversion(&staged, Codec::H264, Codec::Hevc));
        let metadata = staged.metadata("v").unwrap();
        assert!(metadata.bytes_used as usize > raw_size);
        staged.delete("v").unwrap();
        assert!(staged.metadata("v").is_err());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn vss_handle_serves_any_conversion_through_the_same_trait() {
        let root = temp_root("vss-handle");
        let mut vss = vss_core::Vss::open_at(&root).unwrap();
        // Drive the handle through the unified trait, as the workload does.
        let store: &mut dyn VideoStorage = &mut vss;
        store.write(&WriteRequest::new("v", Codec::H264), &sequence(60)).unwrap();
        let read = store.read(&ReadRequest::new("v", 0.0, 1.0, Codec::Hevc)).unwrap();
        assert_eq!(read.frames.len(), 30);
        let scaled = store
            .read(
                &ReadRequest::new("v", 0.0, 1.0, Codec::Raw(PixelFormat::Rgb8))
                    .resolution(Resolution::new(32, 24)),
            )
            .unwrap();
        assert_eq!(scaled.frames.frames()[0].width(), 32);
        assert!(VideoStorage::supports_conversion(store, Codec::H264, Codec::Hevc));
        assert_eq!(VideoStorage::label(store), "vss");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn legacy_video_store_shim_still_works() {
        #![allow(deprecated)]
        let root = temp_root("legacy-shim");
        let mut store = LocalFs::new(&root).unwrap();
        let written = VideoStore::write_video(&mut store, "v", Codec::H264, &sequence(30)).unwrap();
        assert!(written.bytes_written > 0);
        let read = VideoStore::read_video(&mut store, "v", 0.0, 1.0, None, Codec::H264).unwrap();
        assert_eq!(read.frames.len(), 30);
        assert!(matches!(
            VideoStore::read_video(&mut store, "v", 0.0, 1.0, None, Codec::Hevc),
            Err(BaselineError::Unsupported(_))
        ));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn errors_convert_in_both_directions_with_sources() {
        let vss: VssError = BaselineError::NotFound("v".into()).into();
        assert!(matches!(vss, VssError::VideoNotFound(_)));
        let vss: VssError = BaselineError::Unsupported("x".into()).into();
        assert!(matches!(vss, VssError::Unsupported(_)));
        let baseline: BaselineError = VssError::Unsupported("x".into()).into();
        assert!(matches!(baseline, BaselineError::Unsupported(_)));
        let baseline: BaselineError = VssError::VideoNotFound("v".into()).into();
        assert!(matches!(baseline, BaselineError::NotFound(_)));
        // Round trip through both directions preserves the category.
        let io = BaselineError::Io(std::io::Error::other("boom"));
        assert!(std::error::Error::source(&io).is_some(), "Io carries its source");
        let as_vss: VssError = io.into();
        assert!(std::error::Error::source(&as_vss).is_some(), "source survives conversion");
        assert!(as_vss.to_string().contains("boom"));
    }
}
