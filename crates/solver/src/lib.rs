//! # vss-solver
//!
//! Fragment-selection optimizer for VSS reads (paper Section 3.1).
//!
//! When VSS executes a read it may hold many overlapping materialized
//! fragments of the requested video, each in a different resolution and
//! codec. The planner must pick, for every part of the requested temporal
//! range, exactly one fragment to produce that part from, minimizing the sum
//! of
//!
//! * **transcode cost** `c_t(f, P, S) = α(f_S, f_P, S, P) · |f|`, and
//! * **look-back cost** `c_l(Ω, f) = |A − Ω| + η · |(Δ − A) − Ω|` — the cost
//!   of decoding the frames a fragment's predicted frames depend on when
//!   those dependencies have not already been decoded.
//!
//! The paper encodes this joint optimization into an SMT solver (Z3). The
//! structure of the temporal problem — segments between *transition points*
//! with a per-segment fragment choice whose look-back cost depends only on
//! the previous segment's choice — admits an exact dynamic-programming
//! optimizer, which is what [`plan_read`] implements; it returns the same
//! minimum-cost plans an SMT encoding would for this cost model.
//! [`plan_read_greedy`] reproduces the paper's dependency-naïve greedy
//! baseline (Figure 10), and [`plan_read_exhaustive`] enumerates every plan
//! on small instances so tests can verify optimality.

#![warn(missing_docs)]

mod fragment;
mod planner;

pub use fragment::{FragmentCandidate, PlanSegment, ReadPlan, ReadPlanRequest};
pub use planner::{plan_read, plan_read_exhaustive, plan_read_greedy, transition_points};

/// Errors produced by read planning.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// The requested temporal range is empty or inverted.
    EmptyRange {
        /// Requested start time (seconds).
        start: f64,
        /// Requested end time (seconds).
        end: f64,
    },
    /// No candidate fragment covers some part of the requested range.
    UncoveredInterval {
        /// Start of the first uncovered segment (seconds).
        start: f64,
        /// End of the first uncovered segment (seconds).
        end: f64,
    },
    /// No candidates were supplied at all.
    NoCandidates,
    /// The instance is too large for exhaustive enumeration.
    TooLargeForExhaustive {
        /// Number of plans that would need to be enumerated.
        plans: u128,
    },
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::EmptyRange { start, end } => {
                write!(f, "empty or inverted read range [{start}, {end})")
            }
            SolverError::UncoveredInterval { start, end } => {
                write!(f, "no fragment covers [{start}, {end})")
            }
            SolverError::NoCandidates => write!(f, "no candidate fragments supplied"),
            SolverError::TooLargeForExhaustive { plans } => {
                write!(f, "instance too large for exhaustive search ({plans} plans)")
            }
        }
    }
}

impl std::error::Error for SolverError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = SolverError::UncoveredInterval { start: 3.0, end: 4.5 };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains("4.5"));
        assert!(SolverError::NoCandidates.to_string().contains("candidate"));
    }
}
