//! Read planning: transition points, per-segment costs, and the optimal,
//! greedy and exhaustive planners.

use crate::{FragmentCandidate, PlanSegment, ReadPlan, ReadPlanRequest, SolverError};
use vss_codec::{lookback_cost, CostModel};

const TIME_EPSILON: f64 = 1e-9;

/// The transition points of a read: the collective start and end points of
/// the candidate fragments clipped to the requested range, plus the range
/// boundaries themselves. Between consecutive transition points the set of
/// available fragments does not change, so the planner needs to make exactly
/// one choice per interval (paper Section 3.1).
pub fn transition_points(request: &ReadPlanRequest, candidates: &[FragmentCandidate]) -> Vec<f64> {
    let mut points = vec![request.start, request.end];
    for c in candidates {
        for t in [c.start, c.end] {
            if t > request.start + TIME_EPSILON && t < request.end - TIME_EPSILON {
                points.push(t);
            }
        }
    }
    points.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    points.dedup_by(|a, b| (*a - *b).abs() < TIME_EPSILON);
    points
}

/// Per-segment cost of producing `[seg_start, seg_end)` from `fragment`.
/// `contiguous_with_previous` is true when the immediately preceding segment
/// was produced from the same fragment, in which case the fragment's decoder
/// state is already positioned at `seg_start` and no look-back is paid.
fn segment_cost(
    fragment: &FragmentCandidate,
    seg_start: f64,
    seg_end: f64,
    request: &ReadPlanRequest,
    cost_model: &CostModel,
    contiguous_with_previous: bool,
) -> (f64, f64) {
    let frames = ((seg_end - seg_start) * fragment.frame_rate).round().max(1.0);
    let source_pixels = frames as u64 * fragment.resolution.pixels();
    let transcode = cost_model.transcode_cost(
        source_pixels,
        fragment.resolution,
        fragment.codec,
        request.resolution,
        request.codec,
    );
    let lookback = if contiguous_with_previous || !fragment.codec.is_compressed() {
        0.0
    } else {
        let offset_frames = ((seg_start - fragment.start) * fragment.frame_rate).round().max(0.0) as usize;
        let gop = fragment.gop_frames.max(1);
        let position_in_gop = offset_frames % gop;
        if position_in_gop == 0 {
            0.0
        } else {
            // One independent frame plus the preceding dependent frames of
            // the containing GOP must be decoded before the segment's first
            // frame is reachable.
            let per_frame_cost = cost_model
                .decode_cost_per_pixel(fragment.codec, fragment.resolution.pixels())
                * fragment.resolution.pixels() as f64;
            lookback_cost(1, position_in_gop.saturating_sub(1)) * per_frame_cost
        }
    };
    (transcode, lookback)
}

/// Candidates (indices) able to serve each segment, or an error naming the
/// first uncovered segment.
fn segment_candidates(
    candidates: &[FragmentCandidate],
    points: &[f64],
) -> Result<Vec<Vec<usize>>, SolverError> {
    let mut per_segment = Vec::with_capacity(points.len().saturating_sub(1));
    for pair in points.windows(2) {
        let (s, e) = (pair[0], pair[1]);
        let covering: Vec<usize> = candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| c.quality_ok && c.covers(s, e))
            .map(|(i, _)| i)
            .collect();
        if covering.is_empty() {
            return Err(SolverError::UncoveredInterval { start: s, end: e });
        }
        per_segment.push(covering);
    }
    Ok(per_segment)
}

fn validate(request: &ReadPlanRequest, candidates: &[FragmentCandidate]) -> Result<(), SolverError> {
    if request.end - request.start <= TIME_EPSILON {
        return Err(SolverError::EmptyRange { start: request.start, end: request.end });
    }
    if candidates.is_empty() {
        return Err(SolverError::NoCandidates);
    }
    Ok(())
}

fn build_plan(
    request: &ReadPlanRequest,
    candidates: &[FragmentCandidate],
    cost_model: &CostModel,
    points: &[f64],
    choices: &[usize],
) -> ReadPlan {
    let mut segments: Vec<PlanSegment> = Vec::new();
    let mut total = 0.0;
    for (i, pair) in points.windows(2).enumerate() {
        let (s, e) = (pair[0], pair[1]);
        let frag = &candidates[choices[i]];
        let contiguous = i > 0 && choices[i - 1] == choices[i];
        let (transcode, lookback) = segment_cost(frag, s, e, request, cost_model, contiguous);
        total += transcode + lookback;
        match segments.last_mut() {
            Some(last) if last.fragment_id == frag.id && (last.end - s).abs() < TIME_EPSILON && contiguous => {
                last.end = e;
                last.transcode_cost += transcode;
                last.lookback_cost += lookback;
            }
            _ => segments.push(PlanSegment {
                start: s,
                end: e,
                fragment_id: frag.id,
                transcode_cost: transcode,
                lookback_cost: lookback,
            }),
        }
    }
    ReadPlan { segments, total_cost: total }
}

/// Exact minimum-cost planner (dynamic programming over transition-point
/// segments). Equivalent to the paper's SMT formulation for the temporal
/// cost model: each segment's look-back depends only on whether the previous
/// segment used the same fragment, so the optimal substructure is exact.
pub fn plan_read(
    request: &ReadPlanRequest,
    candidates: &[FragmentCandidate],
    cost_model: &CostModel,
) -> Result<ReadPlan, SolverError> {
    validate(request, candidates)?;
    let points = transition_points(request, candidates);
    let per_segment = segment_candidates(candidates, &points)?;
    let segments = per_segment.len();

    // dp[i][k] = minimal cost of covering segments 0..=i with per_segment[i][k]
    // chosen for segment i; parent[i][k] = index (into per_segment[i-1]) of the
    // predecessor choice realizing it.
    let mut dp: Vec<Vec<f64>> = Vec::with_capacity(segments);
    let mut parent: Vec<Vec<usize>> = Vec::with_capacity(segments);
    for i in 0..segments {
        let (s, e) = (points[i], points[i + 1]);
        let mut costs = Vec::with_capacity(per_segment[i].len());
        let mut parents = Vec::with_capacity(per_segment[i].len());
        for &cand in &per_segment[i] {
            if i == 0 {
                let (t, l) = segment_cost(&candidates[cand], s, e, request, cost_model, false);
                costs.push(t + l);
                parents.push(usize::MAX);
                continue;
            }
            let mut best = f64::INFINITY;
            let mut best_parent = usize::MAX;
            for (pk, &prev_cand) in per_segment[i - 1].iter().enumerate() {
                let contiguous = prev_cand == cand;
                let (t, l) = segment_cost(&candidates[cand], s, e, request, cost_model, contiguous);
                let total = dp[i - 1][pk] + t + l;
                if total < best {
                    best = total;
                    best_parent = pk;
                }
            }
            costs.push(best);
            parents.push(best_parent);
        }
        dp.push(costs);
        parent.push(parents);
    }

    // Backtrack from the cheapest final state.
    let (mut k, _) = dp[segments - 1]
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .expect("every segment has at least one candidate");
    let mut choices = vec![0usize; segments];
    for i in (0..segments).rev() {
        choices[i] = per_segment[i][k];
        if i > 0 {
            k = parent[i][k];
        }
    }
    Ok(build_plan(request, candidates, cost_model, &points, &choices))
}

/// The dependency-naïve greedy baseline from the paper's evaluation
/// (Figure 10): for each segment independently pick the fragment with the
/// lowest transcode cost, ignoring look-back interactions between segments.
/// The reported plan cost still includes the look-back that choice incurs.
pub fn plan_read_greedy(
    request: &ReadPlanRequest,
    candidates: &[FragmentCandidate],
    cost_model: &CostModel,
) -> Result<ReadPlan, SolverError> {
    validate(request, candidates)?;
    let points = transition_points(request, candidates);
    let per_segment = segment_candidates(candidates, &points)?;
    let mut choices = Vec::with_capacity(per_segment.len());
    for (i, pair) in points.windows(2).enumerate() {
        let (s, e) = (pair[0], pair[1]);
        let best = per_segment[i]
            .iter()
            .copied()
            .min_by(|&a, &b| {
                let (ta, _) = segment_cost(&candidates[a], s, e, request, cost_model, false);
                let (tb, _) = segment_cost(&candidates[b], s, e, request, cost_model, false);
                ta.partial_cmp(&tb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("segment has candidates");
        choices.push(best);
    }
    Ok(build_plan(request, candidates, cost_model, &points, &choices))
}

/// Exhaustive enumeration of every possible plan; used by tests to confirm
/// [`plan_read`] is optimal. Refuses instances with more than ~1 million
/// plans.
pub fn plan_read_exhaustive(
    request: &ReadPlanRequest,
    candidates: &[FragmentCandidate],
    cost_model: &CostModel,
) -> Result<ReadPlan, SolverError> {
    validate(request, candidates)?;
    let points = transition_points(request, candidates);
    let per_segment = segment_candidates(candidates, &points)?;
    let plan_count: u128 = per_segment.iter().map(|c| c.len() as u128).product();
    if plan_count > 1_000_000 {
        return Err(SolverError::TooLargeForExhaustive { plans: plan_count });
    }
    let mut best: Option<ReadPlan> = None;
    let mut choices = vec![0usize; per_segment.len()];
    enumerate(&per_segment, 0, &mut choices, &mut |choice_indices| {
        let concrete: Vec<usize> =
            choice_indices.iter().enumerate().map(|(i, &k)| per_segment[i][k]).collect();
        let plan = build_plan(request, candidates, cost_model, &points, &concrete);
        if best.as_ref().is_none_or(|b| plan.total_cost < b.total_cost) {
            best = Some(plan);
        }
    });
    Ok(best.expect("at least one plan exists"))
}

fn enumerate(
    per_segment: &[Vec<usize>],
    depth: usize,
    choices: &mut Vec<usize>,
    visit: &mut impl FnMut(&[usize]),
) {
    if depth == per_segment.len() {
        visit(choices);
        return;
    }
    for k in 0..per_segment[depth].len() {
        choices[depth] = k;
        enumerate(per_segment, depth + 1, choices, visit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vss_codec::Codec;
    use vss_frame::{PixelFormat, Resolution};

    fn frag(id: u64, start: f64, end: f64, codec: Codec) -> FragmentCandidate {
        FragmentCandidate {
            id,
            start,
            end,
            resolution: Resolution::R1K,
            codec,
            frame_rate: 30.0,
            gop_frames: 30,
            quality_ok: true,
        }
    }

    fn request(start: f64, end: f64, codec: Codec) -> ReadPlanRequest {
        ReadPlanRequest { start, end, resolution: Resolution::R1K, codec }
    }

    /// The paper's running example (Figure 3): the original video m0 is HEVC
    /// over [0, 100]; cached fragments m1 [30, 60] and m2 [70, 95] are
    /// already H.264. Reading [20, 80] as H.264 should use m1 and m2 where
    /// available and fall back to m0 elsewhere.
    fn figure3() -> (ReadPlanRequest, Vec<FragmentCandidate>) {
        let m0 = frag(0, 0.0, 100.0, Codec::Hevc);
        let m1 = frag(1, 30.0, 60.0, Codec::H264);
        let m2 = frag(2, 70.0, 95.0, Codec::H264);
        (request(20.0, 80.0, Codec::H264), vec![m0, m1, m2])
    }

    #[test]
    fn transition_points_include_fragment_boundaries_inside_range() {
        let (req, frags) = figure3();
        let points = transition_points(&req, &frags);
        assert_eq!(points, vec![20.0, 30.0, 60.0, 70.0, 80.0]);
    }

    #[test]
    fn figure3_plan_prefers_already_converted_fragments() {
        let (req, frags) = figure3();
        let model = CostModel::default();
        let plan = plan_read(&req, &frags, &model).unwrap();
        assert!(plan.covers_range(20.0, 80.0));
        let used = plan.fragments_used();
        assert!(used.contains(&1), "m1 should be used for [30,60): {used:?}");
        assert!(used.contains(&2), "m2 should be used for [70,80): {used:?}");
        assert!(used.contains(&0), "m0 must fill the gaps: {used:?}");
        // The segment covering [30, 60) must come from m1.
        let seg = plan.segments.iter().find(|s| s.start <= 31.0 && s.end >= 59.0).unwrap();
        assert_eq!(seg.fragment_id, 1);
    }

    #[test]
    fn optimal_plan_is_never_worse_than_greedy_or_exhaustive() {
        let (req, frags) = figure3();
        let model = CostModel::default();
        let optimal = plan_read(&req, &frags, &model).unwrap();
        let greedy = plan_read_greedy(&req, &frags, &model).unwrap();
        let exhaustive = plan_read_exhaustive(&req, &frags, &model).unwrap();
        assert!(optimal.total_cost <= greedy.total_cost + 1e-6);
        assert!((optimal.total_cost - exhaustive.total_cost).abs() < 1e-6);
    }

    #[test]
    fn greedy_ignores_lookback_and_can_fragment_the_plan() {
        // Two candidates: one matches the target codec but starts mid-GOP
        // everywhere (high look-back); the original covers everything.
        // Greedy flips to the cheap-transcode fragment for a tiny segment,
        // paying look-back the optimal planner avoids.
        let model = CostModel::default();
        let req = request(0.0, 10.0, Codec::H264);
        let original = frag(0, 0.0, 10.0, Codec::H264);
        let mut sliver = frag(1, 4.9, 5.1, Codec::H264);
        sliver.resolution = Resolution::new(900, 500); // slightly fewer pixels → smaller transcode
        let frags = vec![original, sliver];
        let optimal = plan_read(&req, &frags, &model).unwrap();
        let greedy = plan_read_greedy(&req, &frags, &model).unwrap();
        assert!(optimal.total_cost <= greedy.total_cost);
        // Optimal keeps a single fragment (no mid-GOP re-entry into the original).
        assert_eq!(optimal.fragments_used(), vec![0]);
    }

    #[test]
    fn uncovered_range_is_an_error() {
        let model = CostModel::default();
        let req = request(0.0, 50.0, Codec::H264);
        let frags = vec![frag(0, 0.0, 30.0, Codec::H264), frag(1, 35.0, 60.0, Codec::H264)];
        match plan_read(&req, &frags, &model) {
            Err(SolverError::UncoveredInterval { start, end }) => {
                assert!((start - 30.0).abs() < 1e-9);
                assert!((end - 35.0).abs() < 1e-9);
            }
            other => panic!("expected uncovered interval, got {other:?}"),
        }
    }

    #[test]
    fn empty_range_and_missing_candidates_are_errors() {
        let model = CostModel::default();
        assert!(matches!(
            plan_read(&request(5.0, 5.0, Codec::H264), &[frag(0, 0.0, 10.0, Codec::H264)], &model),
            Err(SolverError::EmptyRange { .. })
        ));
        assert!(matches!(
            plan_read(&request(0.0, 5.0, Codec::H264), &[], &model),
            Err(SolverError::NoCandidates)
        ));
    }

    #[test]
    fn low_quality_fragments_are_ignored() {
        let model = CostModel::default();
        let req = request(0.0, 10.0, Codec::H264);
        let mut cheap_but_bad = frag(1, 0.0, 10.0, Codec::H264);
        cheap_but_bad.quality_ok = false;
        cheap_but_bad.resolution = Resolution::QVGA;
        let original = frag(0, 0.0, 10.0, Codec::Hevc);
        let plan = plan_read(&req, &[original, cheap_but_bad], &model).unwrap();
        assert_eq!(plan.fragments_used(), vec![0]);
    }

    #[test]
    fn adjacent_segments_from_same_fragment_are_coalesced() {
        let (req, frags) = figure3();
        let model = CostModel::default();
        let plan = plan_read(&req, &frags, &model).unwrap();
        // No two adjacent segments share a fragment id.
        for pair in plan.segments.windows(2) {
            assert_ne!(pair[0].fragment_id, pair[1].fragment_id);
        }
    }

    #[test]
    fn raw_fragments_have_no_lookback() {
        let model = CostModel::default();
        let req = request(0.0, 10.0, Codec::Raw(PixelFormat::Rgb8));
        let raw = frag(0, 0.0, 100.0, Codec::Raw(PixelFormat::Rgb8));
        let plan = plan_read(&req, &[raw], &model).unwrap();
        assert_eq!(plan.segments.len(), 1);
        assert_eq!(plan.segments[0].lookback_cost, 0.0);
    }

    #[test]
    fn exhaustive_rejects_huge_instances() {
        let model = CostModel::default();
        // 21 overlapping fragments over 20 segments → way past the limit.
        let mut frags = vec![frag(0, 0.0, 100.0, Codec::H264)];
        for i in 1..21 {
            frags.push(frag(i, i as f64, 100.0 - i as f64, Codec::Hevc));
        }
        let req = request(0.0, 100.0, Codec::H264);
        assert!(matches!(
            plan_read_exhaustive(&req, &frags, &model),
            Err(SolverError::TooLargeForExhaustive { .. })
        ));
        // The DP planner handles it fine.
        assert!(plan_read(&req, &frags, &model).is_ok());
    }

    #[test]
    fn random_instances_dp_matches_exhaustive() {
        use vss_frame::pattern::Xorshift;
        let model = CostModel::default();
        let mut rng = Xorshift::new(42);
        for case in 0..25 {
            let mut frags = vec![frag(0, 0.0, 60.0, Codec::Hevc)];
            let n = 2 + (rng.next_below(4) as usize);
            for id in 1..=n {
                let start = rng.next_f64() * 40.0;
                let len = 5.0 + rng.next_f64() * 20.0;
                let codec = if rng.next_below(2) == 0 { Codec::H264 } else { Codec::Hevc };
                let mut f = frag(id as u64, start, (start + len).min(60.0), codec);
                if rng.next_below(4) == 0 {
                    f.resolution = Resolution::QVGA;
                }
                frags.push(f);
            }
            let req = request(5.0, 55.0, Codec::H264);
            let dp = plan_read(&req, &frags, &model).unwrap();
            let ex = plan_read_exhaustive(&req, &frags, &model).unwrap();
            assert!(
                (dp.total_cost - ex.total_cost).abs() < 1e-6,
                "case {case}: dp={} exhaustive={}",
                dp.total_cost,
                ex.total_cost
            );
            assert!(dp.covers_range(5.0, 55.0));
        }
    }
}
