//! Planner input and output types.

use vss_codec::Codec;
use vss_frame::Resolution;

/// A materialized physical-video fragment the planner may draw on.
///
/// This is the planner's view of a cached GOP run: its temporal extent,
/// stored configuration and GOP structure. Quality filtering happens before
/// planning (the storage manager only passes fragments whose expected quality
/// clears the read's threshold), but the flag is retained so the planner can
/// also be exercised directly in tests and benchmarks.
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentCandidate {
    /// Identifier meaningful to the caller (e.g. physical-video id).
    pub id: u64,
    /// Start of the fragment's temporal extent, in seconds.
    pub start: f64,
    /// End of the fragment's temporal extent, in seconds (exclusive).
    pub end: f64,
    /// Stored resolution.
    pub resolution: Resolution,
    /// Stored codec.
    pub codec: Codec,
    /// Stored frame rate (frames per second).
    pub frame_rate: f64,
    /// Frames per GOP in this fragment (look-back never crosses a GOP
    /// boundary because GOPs are independently decodable).
    pub gop_frames: usize,
    /// Whether the fragment passed the read's quality threshold.
    pub quality_ok: bool,
}

impl FragmentCandidate {
    /// Duration of the fragment in seconds.
    pub fn duration(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }

    /// True if the fragment covers the entire `[start, end)` interval.
    pub fn covers(&self, start: f64, end: f64) -> bool {
        self.start <= start + 1e-9 && self.end >= end - 1e-9
    }
}

/// The read the planner must satisfy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadPlanRequest {
    /// Requested start time in seconds.
    pub start: f64,
    /// Requested end time in seconds (exclusive).
    pub end: f64,
    /// Requested output resolution.
    pub resolution: Resolution,
    /// Requested output codec.
    pub codec: Codec,
}

/// One contiguous piece of a read plan: produce `[start, end)` from fragment
/// `fragment_id`.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSegment {
    /// Segment start in seconds.
    pub start: f64,
    /// Segment end in seconds.
    pub end: f64,
    /// The fragment chosen for this segment.
    pub fragment_id: u64,
    /// Modelled transcode cost of this segment.
    pub transcode_cost: f64,
    /// Modelled look-back cost paid on entry to this segment.
    pub lookback_cost: f64,
}

impl PlanSegment {
    /// Total modelled cost of the segment.
    pub fn cost(&self) -> f64 {
        self.transcode_cost + self.lookback_cost
    }
}

/// A complete plan covering the requested range.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadPlan {
    /// Segments in temporal order; adjacent segments using the same fragment
    /// are coalesced.
    pub segments: Vec<PlanSegment>,
    /// Sum of all segment costs.
    pub total_cost: f64,
}

impl ReadPlan {
    /// The distinct fragments used by the plan, in first-use order.
    pub fn fragments_used(&self) -> Vec<u64> {
        let mut seen = Vec::new();
        for s in &self.segments {
            if !seen.contains(&s.fragment_id) {
                seen.push(s.fragment_id);
            }
        }
        seen
    }

    /// Verifies the plan tiles `[start, end)` without gaps or overlaps.
    pub fn covers_range(&self, start: f64, end: f64) -> bool {
        if self.segments.is_empty() {
            return false;
        }
        let mut cursor = start;
        for s in &self.segments {
            if (s.start - cursor).abs() > 1e-6 || s.end <= s.start {
                return false;
            }
            cursor = s.end;
        }
        (cursor - end).abs() < 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frag(id: u64, start: f64, end: f64) -> FragmentCandidate {
        FragmentCandidate {
            id,
            start,
            end,
            resolution: Resolution::R1K,
            codec: Codec::H264,
            frame_rate: 30.0,
            gop_frames: 30,
            quality_ok: true,
        }
    }

    #[test]
    fn coverage_checks() {
        let f = frag(1, 10.0, 20.0);
        assert!(f.covers(10.0, 20.0));
        assert!(f.covers(12.0, 15.0));
        assert!(!f.covers(5.0, 15.0));
        assert!(!f.covers(15.0, 25.0));
        assert_eq!(f.duration(), 10.0);
    }

    #[test]
    fn plan_coverage_validation() {
        let seg = |s: f64, e: f64, id: u64| PlanSegment {
            start: s,
            end: e,
            fragment_id: id,
            transcode_cost: 1.0,
            lookback_cost: 0.0,
        };
        let plan = ReadPlan { segments: vec![seg(0.0, 5.0, 1), seg(5.0, 10.0, 2)], total_cost: 2.0 };
        assert!(plan.covers_range(0.0, 10.0));
        assert!(!plan.covers_range(0.0, 12.0));
        assert_eq!(plan.fragments_used(), vec![1, 2]);
        let gappy = ReadPlan { segments: vec![seg(0.0, 4.0, 1), seg(5.0, 10.0, 2)], total_cost: 2.0 };
        assert!(!gappy.covers_range(0.0, 10.0));
        let empty = ReadPlan { segments: vec![], total_cost: 0.0 };
        assert!(!empty.covers_range(0.0, 1.0));
    }

    #[test]
    fn segment_cost_sums_components() {
        let s = PlanSegment { start: 0.0, end: 1.0, fragment_id: 1, transcode_cost: 3.0, lookback_cost: 2.0 };
        assert_eq!(s.cost(), 5.0);
    }
}
