//! Lock-free metrics and op-scoped spans for the VSS service.
//!
//! This crate sits at the bottom of the workspace dependency graph (it
//! depends on nothing but `std`) so every layer — catalog, engine, server,
//! network — can report into one process-global registry without plumbing
//! handles through constructors.
//!
//! # Metric naming convention
//!
//! Every metric name has the shape **`layer.object.metric`**, lowercase,
//! dot-separated, with an optional unit suffix:
//!
//! * `layer` — the crate/subsystem that owns the number: `engine`, `stream`,
//!   `sink`, `wal`, `server`, `net`, `client`.
//! * `object` — the thing being measured: `read`, `write`, `compact`,
//!   `fsync`, `admission`, `conn`.
//! * `metric` — what is counted, with the unit spelled out when it is not a
//!   plain count: `ops`, `bytes`, `latency_ns`, `stall_ns`, `depth`,
//!   `shed_total`.
//!
//! Examples: `engine.read.latency_ns` (histogram), `wal.fsync.latency_ns`
//! (histogram), `server.admission.queue_depth` (gauge),
//! `net.conn.bytes_sent` (counter).
//!
//! ## Label convention
//!
//! A metric may additionally carry a **label set** — sorted `key=value`
//! pairs appended to the name in braces: `server.shard.read_ops{shard=3}`,
//! `net.mux.streams_opened{kind=read}`. Labels split one logical metric into
//! per-dimension series; the *name* stays `layer.object.metric` and answers
//! "what is measured", the *labels* answer "which one". Rules:
//!
//! * Label keys are short lowercase identifiers (`shard`, `kind`, `code`,
//!   `sub`); values are lowercase tokens or small integers. Neither may
//!   contain `{`, `}`, `,`, `=` or whitespace — the rendered series key
//!   must stay parseable.
//! * Label sets are canonicalised by sorting on key, so
//!   `{kind=read,shard=0}` and `{shard=0,kind=read}` are the **same
//!   series** — [`counter_with`] returns the identical `&'static` handle
//!   for both spellings.
//! * Keep cardinality bounded: label by shard index, stream kind or error
//!   code — never by video name, offset or timestamp. Every distinct label
//!   set is a leaked registry entry that lives for the process.
//! * The unlabeled name (`counter(name)`) and a labeled series of the same
//!   name are distinct series; an aggregate, if wanted, is recorded
//!   explicitly, not inferred.
//!
//! Handles from [`counter_with`]/[`gauge_with`]/[`histogram_with`] are
//! `&'static` like their unlabeled peers: look one up per (name, label set)
//! and cache it — after the first lookup the hot path is the same relaxed
//! atomics, no lock and no allocation.
//!
//! # Metric kinds
//!
//! * [`Counter`] — monotone `u64`; never decremented, so two snapshots can
//!   always be diffed into a rate.
//! * [`Gauge`] — signed instantaneous level (queue depth, pool occupancy).
//! * [`Histogram`] — fixed-log-bucket latency/size distribution. Buckets are
//!   log-linear with [`SUB_COUNT`] sub-buckets per power of two, so any
//!   recorded value lands in a bucket whose width is at most `value / 4`:
//!   every quantile estimate returned by [`Histogram::quantile`] is an upper
//!   bound that overshoots the true sample by **at most 25 %** (values below
//!   `2 * SUB_COUNT` are bucketed exactly). All three kinds are `&self`
//!   atomics — recording never blocks and never takes a lock.
//!
//! Handles returned by [`counter`], [`gauge`] and [`histogram`] are
//! `&'static`: the registry leaks one allocation per distinct name and hands
//! the same reference back forever, so hot paths should look a handle up
//! once (e.g. in a `OnceLock`) and then record through plain atomics.
//!
//! # Span semantics
//!
//! A [`Span`] measures one logical operation in one layer. Creating it
//! stamps the clock; dropping it:
//!
//! 1. records the elapsed time into the `layer.op.latency_ns` histogram and
//!    bumps the `layer.op.ops` counter,
//! 2. appends a [`SpanRecord`] (layer, op, target, request id, span id,
//!    parent span id, start offset, duration) to a bounded in-memory ring
//!    readable via [`recent_spans`],
//! 3. emits a one-line structured log on stderr when the duration meets the
//!    `VSS_SLOW_OP_MS` threshold (unset or 0 disables the slow-op log),
//!    followed by the indented [`span_tree`] of the request when the span
//!    carried a request id.
//!
//! Spans are request-correlated through a thread-local request id: a server
//! handler calls [`set_request_id`] when it decodes a tagged request, and
//! every span opened on that thread until the id is cleared carries it. One
//! id minted by a client therefore shows up in client, server and engine
//! span records, which is how a single slow read is traced across layers.
//! The thread-local design matches the service's synchronous
//! one-thread-per-connection request path; work handed to helper threads
//! (readahead workers, encoders) reports metrics but not request-scoped
//! spans.
//!
//! ## Span trees
//!
//! Every span is additionally assigned a process-unique **span id**, and
//! captures the thread's current innermost open span as its **parent** —
//! so nested guards (`net` dispatch → `engine` decode → `wal` fsync) form
//! a tree, not a flat list. The parent link crosses the wire: a client
//! sends its open span's id with the request (see `vss-net`'s traced
//! envelope), the server installs it via [`trace_scope`], and the server's
//! spans chain under the client's. [`span_tree`] reassembles the tree for
//! one request id from the ring, and [`SpanTree::render`] prints it as an
//! indented trace — the same rendering the slow-op log emits.
//!
//! # Process-global state and tests
//!
//! The registry, span ring and request id are process-global, and the test
//! harness runs many tests in one process. Tests must therefore assert
//! *deltas* (or monotonicity) on shared metrics, never absolute values —
//! or use owned [`Histogram`]/[`Counter`] values, which work standalone.

#![warn(missing_docs)]

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Sub-bucket resolution bits of the log-linear histogram: each power of two
/// is split into `2^SUB_BITS` equal sub-buckets.
pub const SUB_BITS: u32 = 2;

/// Sub-buckets per power of two (`2^SUB_BITS`).
pub const SUB_COUNT: usize = 1 << SUB_BITS;

/// Total bucket count covering the full `u64` range: values `0..2*SUB_COUNT`
/// get one exact bucket each, and every remaining power of two contributes
/// `SUB_COUNT` buckets.
pub const BUCKETS: usize = (64 - SUB_BITS as usize) * SUB_COUNT + SUB_COUNT;

/// A monotone event counter. All methods take `&self`; recording is a single
/// relaxed atomic add.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous level (queue depth, pool occupancy, bytes in
/// flight). All methods take `&self`.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Overwrites the level.
    pub fn set(&self, n: i64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Maps a value to its log-linear bucket index. Total for all `u64` values.
fn bucket_index(value: u64) -> usize {
    // Values below two full octaves of sub-buckets are bucketed exactly
    // (bucket width 1): 0..=7 for SUB_BITS = 2.
    if value < (2 * SUB_COUNT) as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros(); // >= SUB_BITS + 1 here
    let shift = msb - SUB_BITS;
    let sub = ((value >> shift) as usize) & (SUB_COUNT - 1);
    (msb - SUB_BITS) as usize * SUB_COUNT + sub + SUB_COUNT
}

/// The largest value that lands in `bucket` — the upper bound [`quantile`]
/// reports for samples in that bucket.
///
/// [`quantile`]: Histogram::quantile
fn bucket_upper_bound(bucket: usize) -> u64 {
    if bucket < 2 * SUB_COUNT {
        return bucket as u64; // exact buckets
    }
    let msb = SUB_BITS + ((bucket - SUB_COUNT) / SUB_COUNT) as u32;
    let sub = ((bucket - SUB_COUNT) % SUB_COUNT) as u64;
    // Lower bound is (SUB_COUNT + sub) << (msb - SUB_BITS); the upper bound
    // is one below the next bucket's lower bound. Computed in u128 because
    // the top bucket's exclusive end is 2^64.
    let end: u128 = ((SUB_COUNT as u128) + (sub as u128) + 1) << (msb - SUB_BITS);
    (end - 1).min(u64::MAX as u128) as u64
}

/// A fixed-log-bucket histogram of `u64` samples (latencies in nanoseconds
/// by convention). Recording is three relaxed atomic ops plus one bounded
/// compare-exchange loop for the running max; there is no lock anywhere.
///
/// Quantile estimates are upper bounds within 25 % of the true sample (see
/// the [crate docs](self)). The histogram also tracks exact `count`, `sum`
/// and `max`, so averages and totals are not subject to bucket error.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .finish()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        let mut seen = self.max.load(Ordering::Relaxed);
        while value > seen {
            match self.max.compare_exchange_weak(
                seen,
                value,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => seen = now,
            }
        }
    }

    /// Records a duration as nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, duration: Duration) {
        self.record(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (exact, not bucketed).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (exact), or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0..=1.0`): the bucket
    /// upper bound at the target rank, clamped to the exact max. Guaranteed
    /// `>=` the true sample at that rank and within 25 % above it. Returns 0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper_bound(index).min(self.max());
            }
        }
        // Racing recorders can leave `count` ahead of the bucket totals for
        // an instant; fall back to the exact max.
        self.max()
    }

    /// Snapshots count/sum/max and the p50/p90/p99 upper-bound estimates.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// Point-in-time summary of one [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Exact sum of samples.
    pub sum: u64,
    /// Exact largest sample.
    pub max: u64,
    /// Median upper-bound estimate.
    pub p50: u64,
    /// 90th-percentile upper-bound estimate.
    pub p90: u64,
    /// 99th-percentile upper-bound estimate.
    pub p99: u64,
}

impl HistogramSummary {
    /// Mean sample value (exact, from sum/count), or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

// --- global registry --------------------------------------------------------

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    gauges: Mutex<BTreeMap<String, &'static Gauge>>,
    histograms: Mutex<BTreeMap<String, &'static Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

fn intern<T: Default>(map: &Mutex<BTreeMap<String, &'static T>>, name: &str) -> &'static T {
    let mut map = map.lock().expect("telemetry registry lock");
    if let Some(existing) = map.get(name) {
        return existing;
    }
    let leaked: &'static T = Box::leak(Box::new(T::default()));
    map.insert(name.to_string(), leaked);
    leaked
}

/// Returns the process-wide counter registered under `name` (created at
/// zero on first use). The handle is `&'static`: cache it in hot paths.
pub fn counter(name: &str) -> &'static Counter {
    intern(&registry().counters, name)
}

/// Returns the process-wide gauge registered under `name`.
pub fn gauge(name: &str) -> &'static Gauge {
    intern(&registry().gauges, name)
}

/// Returns the process-wide histogram registered under `name`.
pub fn histogram(name: &str) -> &'static Histogram {
    intern(&registry().histograms, name)
}

/// Renders the canonical series key for `name` plus a label set:
/// `name{key=value,...}` with labels **sorted by key**, or `name` alone for
/// an empty set. Two label orderings of the same pairs render identically,
/// which is what makes interning canonical. Label keys and values are used
/// verbatim — callers follow the crate-level label convention (no braces,
/// commas, `=` or whitespace).
pub fn series_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort();
    let mut key = String::with_capacity(name.len() + 16);
    key.push_str(name);
    key.push('{');
    for (index, (label, value)) in sorted.iter().enumerate() {
        if index > 0 {
            key.push(',');
        }
        key.push_str(label);
        key.push('=');
        key.push_str(value);
    }
    key.push('}');
    key
}

/// Splits a series key back into `(name, label-suffix)`: the suffix is the
/// `{...}` rendering (empty for unlabeled series). Used by exposition
/// renderers; the inverse of [`series_key`].
pub fn split_series_key(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(index) => key.split_at(index),
        None => (key, ""),
    }
}

/// Returns the process-wide counter for `(name, labels)`. The label set is
/// canonicalised (sorted by key) before interning, so every ordering of the
/// same pairs yields the same `&'static` handle. Cache the handle: after
/// the first lookup, recording is lock-free.
pub fn counter_with(name: &str, labels: &[(&str, &str)]) -> &'static Counter {
    intern(&registry().counters, &series_key(name, labels))
}

/// Returns the process-wide gauge for `(name, labels)`; see [`counter_with`].
pub fn gauge_with(name: &str, labels: &[(&str, &str)]) -> &'static Gauge {
    intern(&registry().gauges, &series_key(name, labels))
}

/// Returns the process-wide histogram for `(name, labels)`; see
/// [`counter_with`].
pub fn histogram_with(name: &str, labels: &[(&str, &str)]) -> &'static Histogram {
    intern(&registry().histograms, &series_key(name, labels))
}

/// A point-in-time copy of every registered metric, in name order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// `(name, total)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, summary)` for every histogram.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl TelemetrySnapshot {
    /// Looks up a counter total by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a gauge level by exact name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram summary by exact name.
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a labeled counter: `counter_labeled("x", &[("shard", "0")])`
    /// finds the series interned by [`counter_with`] with the same pairs in
    /// any order.
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counter(&series_key(name, labels))
    }

    /// Looks up a labeled gauge; see [`Self::counter_labeled`].
    pub fn gauge_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        self.gauge(&series_key(name, labels))
    }

    /// Looks up a labeled histogram; see [`Self::counter_labeled`].
    pub fn histogram_labeled(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<HistogramSummary> {
        self.histogram(&series_key(name, labels))
    }

    /// Every series of `name` regardless of labels, as
    /// `(label-suffix, series-key)` pairs in key order — `("{shard=0}",
    /// "server.shard.read_ops{shard=0}")`. Works across all three kinds.
    pub fn series_of(&self, name: &str) -> Vec<(String, String)> {
        let mut out = Vec::new();
        let keys = self
            .counters
            .iter()
            .map(|(k, _)| k)
            .chain(self.gauges.iter().map(|(k, _)| k))
            .chain(self.histograms.iter().map(|(k, _)| k));
        for key in keys {
            let (base, suffix) = split_series_key(key);
            if base == name {
                out.push((suffix.to_string(), key.clone()));
            }
        }
        out.sort();
        out
    }

    /// Renders the snapshot as a human-readable multi-line dump, one metric
    /// per line, in name order within each kind.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "counter   {name} = {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "gauge     {name} = {value}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram {name} count={} mean={:.0} p50={} p90={} p99={} max={}",
                h.count,
                h.mean(),
                h.p50,
                h.p90,
                h.p99,
                h.max
            );
        }
        out
    }

    /// Renders the snapshot as Prometheus-style text exposition, in sorted
    /// series order (byte-stable for identical snapshots). Dots in metric
    /// names become underscores and every name gains a `vss_` prefix; label
    /// suffixes render with quoted values (`vss_net_mux_resets{kind="read"}
    /// 3`). Histograms expand to `_count`/`_sum`/`_max` plus
    /// `{quantile="..."}` sample lines.
    pub fn text_exposition(&self) -> String {
        use std::fmt::Write as _;
        fn prom_series(key: &str) -> String {
            let (name, suffix) = split_series_key(key);
            let mut out = format!("vss_{}", name.replace('.', "_"));
            if !suffix.is_empty() {
                out.push('{');
                let inner = &suffix[1..suffix.len() - 1];
                for (index, pair) in inner.split(',').enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    match pair.split_once('=') {
                        Some((label, value)) => {
                            let _ = write!(out, "{label}={value:?}");
                        }
                        None => out.push_str(pair),
                    }
                }
                out.push('}');
            }
            out
        }
        // A labeled histogram key needs its suffix (`_count`) *inside* the
        // base name, before the label braces.
        fn prom_suffixed(key: &str, suffix: &str) -> String {
            let (name, labels) = split_series_key(key);
            prom_series(&format!("{name}.{suffix}{labels}"))
        }
        fn prom_quantile(key: &str, q: &str) -> String {
            let (name, labels) = split_series_key(key);
            let inner = if labels.is_empty() {
                format!("quantile={q}")
            } else {
                format!("{},quantile={q}", &labels[1..labels.len() - 1])
            };
            prom_series(&format!("{name}{{{inner}}}"))
        }
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "{} {value}", prom_series(name));
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "{} {value}", prom_series(name));
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "{} {}", prom_suffixed(name, "count"), h.count);
            let _ = writeln!(out, "{} {}", prom_suffixed(name, "sum"), h.sum);
            let _ = writeln!(out, "{} {}", prom_suffixed(name, "max"), h.max);
            for (q, value) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
                let _ = writeln!(out, "{} {value}", prom_quantile(name, q));
            }
        }
        out
    }
}

/// Snapshots every registered metric. Reads are relaxed atomic loads — the
/// snapshot never blocks recorders (the registry maps are locked only long
/// enough to clone the handle lists).
pub fn snapshot() -> TelemetrySnapshot {
    let registry = registry();
    let counters: Vec<(String, &'static Counter)> = registry
        .counters
        .lock()
        .expect("telemetry registry lock")
        .iter()
        .map(|(name, counter)| (name.clone(), *counter))
        .collect();
    let gauges: Vec<(String, &'static Gauge)> = registry
        .gauges
        .lock()
        .expect("telemetry registry lock")
        .iter()
        .map(|(name, gauge)| (name.clone(), *gauge))
        .collect();
    let histograms: Vec<(String, &'static Histogram)> = registry
        .histograms
        .lock()
        .expect("telemetry registry lock")
        .iter()
        .map(|(name, histogram)| (name.clone(), *histogram))
        .collect();
    TelemetrySnapshot {
        counters: counters.into_iter().map(|(n, c)| (n, c.get())).collect(),
        gauges: gauges.into_iter().map(|(n, g)| (n, g.get())).collect(),
        histograms: histograms.into_iter().map(|(n, h)| (n, h.summary())).collect(),
    }
}

/// Renders [`snapshot`] as a human-readable dump.
pub fn dump() -> String {
    snapshot().dump()
}

/// Renders [`snapshot`] as Prometheus-style text exposition; see
/// [`TelemetrySnapshot::text_exposition`].
pub fn text_exposition() -> String {
    snapshot().text_exposition()
}

// --- structured logging -----------------------------------------------------

/// Emits a one-line structured log on stderr: `vss event=<event> k=v ...`.
/// Values containing spaces are quoted. Used for rare, significant moments
/// (startup recovery, slow ops) — never per-request.
pub fn log_event(event: &str, fields: &[(&str, String)]) {
    use std::fmt::Write as _;
    let mut line = format!("vss event={event}");
    for (key, value) in fields {
        if value.contains(' ') {
            let _ = write!(line, " {key}={value:?}");
        } else {
            let _ = write!(line, " {key}={value}");
        }
    }
    eprintln!("{line}");
}

// --- request ids and spans --------------------------------------------------

thread_local! {
    static CURRENT_REQUEST: std::cell::Cell<Option<u64>> = const { std::cell::Cell::new(None) };
    static CURRENT_PARENT_SPAN: std::cell::Cell<Option<u64>> =
        const { std::cell::Cell::new(None) };
}

/// Process-unique span ids, starting at 1 (0 is never a valid id).
fn next_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Nanoseconds since an arbitrary process-wide epoch (the first call).
/// Monotonic, so span start offsets are comparable within the process.
fn monotonic_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    u64::try_from(EPOCH.get_or_init(Instant::now).elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Sets (or clears, with `None`) the request id carried by every span opened
/// on this thread until the next call. Server handlers call this when they
/// decode a tagged request envelope; prefer [`request_scope`] where a guard
/// fits the control flow.
pub fn set_request_id(id: Option<u64>) {
    CURRENT_REQUEST.with(|current| current.set(id));
}

/// The request id currently attached to this thread, if any.
pub fn current_request_id() -> Option<u64> {
    CURRENT_REQUEST.with(|current| current.get())
}

/// Attaches `id` to this thread for the guard's lifetime, restoring the
/// previous id (usually `None`) on drop.
pub fn request_scope(id: u64) -> RequestScope {
    let previous = current_request_id();
    set_request_id(Some(id));
    RequestScope { previous }
}

/// Guard returned by [`request_scope`].
pub struct RequestScope {
    previous: Option<u64>,
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        set_request_id(self.previous);
    }
}

/// Sets (or clears) the span id the **next** span opened on this thread
/// will record as its parent. Server handlers call this (via
/// [`trace_scope`]) with the parent span id a traced request envelope
/// carried, chaining server-side spans under the client's op span.
pub fn set_parent_span(id: Option<u64>) {
    CURRENT_PARENT_SPAN.with(|current| current.set(id));
}

/// The span id a span opened right now on this thread would chain under:
/// the innermost open [`Span`], or whatever [`set_parent_span`] installed.
/// Clients read this when encoding a traced request envelope.
pub fn current_parent_span() -> Option<u64> {
    CURRENT_PARENT_SPAN.with(|current| current.get())
}

/// Attaches a request id **and** a remote parent span id to this thread for
/// the guard's lifetime, restoring both on drop. The wire-propagation
/// helper: a server handler that decoded a traced envelope installs the
/// client's `(request_id, parent_span_id)` pair so every span it opens
/// joins the client's tree.
pub fn trace_scope(request_id: u64, parent_span: Option<u64>) -> TraceScope {
    let scope = TraceScope {
        previous_request: current_request_id(),
        previous_parent: current_parent_span(),
    };
    set_request_id(Some(request_id));
    set_parent_span(parent_span);
    scope
}

/// Guard returned by [`trace_scope`].
pub struct TraceScope {
    previous_request: Option<u64>,
    previous_parent: Option<u64>,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        set_request_id(self.previous_request);
        set_parent_span(self.previous_parent);
    }
}

/// One completed span, as kept in the in-memory ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Layer that opened the span (`client`, `net`, `engine`, ...).
    pub layer: &'static str,
    /// Operation name (`read`, `write`, `compact`, ...).
    pub op: &'static str,
    /// Operation target (typically a video name; may be empty).
    pub target: String,
    /// Request id the span ran under, if the thread had one.
    pub request_id: Option<u64>,
    /// Process-unique id of this span (never 0).
    pub span_id: u64,
    /// Span this one nested under — the innermost open span on the opening
    /// thread, or a remote parent installed by [`trace_scope`]. `None` for
    /// tree roots.
    pub parent_span_id: Option<u64>,
    /// Open time as nanoseconds since the process-wide span epoch; parents
    /// always start at or before their children.
    pub start_ns: u64,
    /// Wall-clock duration.
    pub duration: Duration,
}

/// Spans kept in the ring before the oldest is dropped.
pub const SPAN_RING_CAPACITY: usize = 1024;

fn span_ring() -> &'static Mutex<VecDeque<SpanRecord>> {
    static RING: OnceLock<Mutex<VecDeque<SpanRecord>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(SPAN_RING_CAPACITY)))
}

/// The most recent completed spans, oldest first (bounded by
/// [`SPAN_RING_CAPACITY`]).
pub fn recent_spans() -> Vec<SpanRecord> {
    span_ring().lock().expect("span ring lock").iter().cloned().collect()
}

/// The most recent completed spans carrying `request_id`, oldest first.
pub fn spans_for_request(request_id: u64) -> Vec<SpanRecord> {
    span_ring()
        .lock()
        .expect("span ring lock")
        .iter()
        .filter(|span| span.request_id == Some(request_id))
        .cloned()
        .collect()
}

/// The `VSS_SLOW_OP_MS` threshold, parsed once. `None` disables slow-op
/// logging (unset, unparsable or 0).
fn slow_op_threshold() -> Option<Duration> {
    static THRESHOLD: OnceLock<Option<Duration>> = OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        std::env::var("VSS_SLOW_OP_MS")
            .ok()
            .and_then(|raw| raw.trim().parse::<u64>().ok())
            .filter(|ms| *ms > 0)
            .map(Duration::from_millis)
    })
}

/// Opens a span for one operation; see the [crate docs](self) for drop-time
/// semantics. The thread's current request id and parent span are captured
/// at open, and the new span becomes the thread's parent-of-record until it
/// drops.
pub fn span(layer: &'static str, op: &'static str, target: impl Into<String>) -> Span {
    let span_id = next_span_id();
    let parent_span_id = current_parent_span();
    set_parent_span(Some(span_id));
    Span {
        layer,
        op,
        target: target.into(),
        request_id: current_request_id(),
        span_id,
        parent_span_id,
        start_ns: monotonic_ns(),
        start: Instant::now(),
    }
}

/// An in-flight operation measurement; records on drop. Returned by [`span`].
#[must_use = "a span measures until dropped — bind it to a named guard"]
pub struct Span {
    layer: &'static str,
    op: &'static str,
    target: String,
    request_id: Option<u64>,
    span_id: u64,
    parent_span_id: Option<u64>,
    start_ns: u64,
    start: Instant,
}

impl Span {
    /// This span's process-unique id — what a client puts on the wire so
    /// remote spans can chain under it.
    pub fn id(&self) -> u64 {
        self.span_id
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let duration = self.start.elapsed();
        let layer = self.layer;
        let op = self.op;
        histogram(&format!("{layer}.{op}.latency_ns")).record_duration(duration);
        counter(&format!("{layer}.{op}.ops")).incr();
        // Pop this span off the thread's parent chain — but only if it is
        // still the innermost one (a span moved to and dropped on another
        // thread must not clobber that thread's chain).
        CURRENT_PARENT_SPAN.with(|current| {
            if current.get() == Some(self.span_id) {
                current.set(self.parent_span_id);
            }
        });
        let record = SpanRecord {
            layer,
            op,
            target: std::mem::take(&mut self.target),
            request_id: self.request_id,
            span_id: self.span_id,
            parent_span_id: self.parent_span_id,
            start_ns: self.start_ns,
            duration,
        };
        let slow = slow_op_threshold().is_some_and(|threshold| duration >= threshold);
        let (target, request_id) = (record.target.clone(), record.request_id);
        {
            // Ring insert happens before the slow-op render so the slow
            // span itself appears in its own tree.
            let mut ring = span_ring().lock().expect("span ring lock");
            if ring.len() == SPAN_RING_CAPACITY {
                ring.pop_front();
            }
            ring.push_back(record);
        }
        if slow {
            log_event(
                "slow-op",
                &[
                    ("layer", layer.to_string()),
                    ("op", op.to_string()),
                    ("target", target),
                    (
                        "request_id",
                        request_id.map_or_else(|| "-".to_string(), |id| id.to_string()),
                    ),
                    ("duration_ms", format!("{:.3}", duration.as_secs_f64() * 1e3)),
                ],
            );
            if let Some(id) = request_id {
                let tree = span_tree(id);
                if !tree.spans.is_empty() {
                    eprint!("{}", tree.render());
                }
            }
        }
    }
}

// --- span trees -------------------------------------------------------------

/// The spans of one request id, reassembled into parent/child order.
/// Returned by [`span_tree`]; spans are sorted by start offset, so parents
/// precede children.
#[derive(Debug, Clone, Default)]
pub struct SpanTree {
    /// The request id the tree was queried for.
    pub request_id: u64,
    /// All completed spans of the request currently in the ring, sorted by
    /// [`SpanRecord::start_ns`] (ties broken by span id).
    pub spans: Vec<SpanRecord>,
}

impl SpanTree {
    /// Spans with no parent in the tree: true roots (`parent_span_id:
    /// None`) plus orphans whose parent has aged out of the ring or has not
    /// completed yet.
    pub fn roots(&self) -> Vec<&SpanRecord> {
        self.spans
            .iter()
            .filter(|span| {
                span.parent_span_id
                    .is_none_or(|parent| !self.spans.iter().any(|s| s.span_id == parent))
            })
            .collect()
    }

    /// Direct children of `span_id`, in start order.
    pub fn children(&self, span_id: u64) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|span| span.parent_span_id == Some(span_id)).collect()
    }

    /// True when the tree is non-empty and every span is reachable from one
    /// single root — the shape one fully-traced request produces.
    pub fn is_connected(&self) -> bool {
        self.roots().len() == 1 && !self.spans.is_empty()
    }

    /// Renders the tree as an indented multi-line trace, one span per line,
    /// children nested two spaces under their parent:
    ///
    /// ```text
    /// client.read_stream target=cam span=12 34.125ms
    ///   net.read_stream target=cam span=13 33.871ms
    ///     engine.read target=cam span=14 31.002ms
    /// ```
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        fn visit(tree: &SpanTree, span: &SpanRecord, depth: usize, out: &mut String) {
            let _ = writeln!(
                out,
                "{:indent$}{}.{} target={} span={} {:.3}ms",
                "",
                span.layer,
                span.op,
                if span.target.is_empty() { "-" } else { &span.target },
                span.span_id,
                span.duration.as_secs_f64() * 1e3,
                indent = depth * 2
            );
            for child in tree.children(span.span_id) {
                visit(tree, child, depth + 1, out);
            }
        }
        for root in self.roots() {
            visit(self, root, 0, &mut out);
        }
        out
    }
}

/// Reassembles the span tree of `request_id` from the ring: every completed
/// span carrying the id, sorted by start offset. Query it after the root op
/// finishes — spans still open (or evicted by ring wraparound) appear as
/// missing parents, making their children extra roots.
pub fn span_tree(request_id: u64) -> SpanTree {
    let mut spans = spans_for_request(request_id);
    spans.sort_by_key(|span| (span.start_ns, span.span_id));
    SpanTree { request_id, spans }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_buckets_below_eight() {
        for value in 0..(2 * SUB_COUNT as u64) {
            assert_eq!(bucket_index(value), value as usize);
            assert_eq!(bucket_upper_bound(value as usize), value);
        }
    }

    #[test]
    fn bucket_bounds_are_consistent_and_tight() {
        let mut previous_end = None;
        for bucket in 0..BUCKETS {
            let upper = bucket_upper_bound(bucket);
            assert_eq!(bucket_index(upper), bucket, "upper bound of {bucket}");
            if let Some(previous) = previous_end {
                let lower: u64 = previous + 1;
                assert_eq!(bucket_index(lower), bucket, "lower bound of {bucket}");
                // Bucket width <= max(1, lower/4): the 25 % relative error
                // guarantee.
                assert!(upper - lower < (lower / 4).max(1), "width of {bucket}");
            }
            previous_end = Some(upper);
        }
        assert_eq!(previous_end, Some(u64::MAX));
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_bound_true_samples() {
        let histogram = Histogram::new();
        let samples: Vec<u64> = (0..1000u64).map(|i| i * i + 17).collect();
        for &sample in &samples {
            histogram.record(sample);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for (q, label) in [(0.50, "p50"), (0.90, "p90"), (0.99, "p99")] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let estimate = histogram.quantile(q);
            assert!(estimate >= truth, "{label}: {estimate} < {truth}");
            assert!(
                estimate as f64 <= truth as f64 * 1.25,
                "{label}: {estimate} > 1.25 * {truth}"
            );
        }
        assert_eq!(histogram.count(), 1000);
        assert_eq!(histogram.max(), *sorted.last().unwrap());
        assert_eq!(histogram.sum(), samples.iter().sum::<u64>());
    }

    #[test]
    fn quantile_clamps_to_exact_max() {
        let histogram = Histogram::new();
        histogram.record(1_000_000);
        assert_eq!(histogram.quantile(0.99), 1_000_000);
    }

    #[test]
    fn registry_interns_per_name() {
        let a = counter("test.registry.interned");
        let b = counter("test.registry.interned");
        assert!(std::ptr::eq(a, b));
        let before = a.get();
        b.incr();
        assert_eq!(a.get(), before + 1);
    }

    #[test]
    fn snapshot_lookup_and_dump() {
        counter("test.snapshot.counter").add(3);
        gauge("test.snapshot.gauge").set(-2);
        histogram("test.snapshot.histogram").record(5);
        let snapshot = snapshot();
        assert!(snapshot.counter("test.snapshot.counter").unwrap() >= 3);
        assert_eq!(snapshot.gauge("test.snapshot.gauge"), Some(-2));
        assert!(snapshot.histogram("test.snapshot.histogram").unwrap().count >= 1);
        let dump = snapshot.dump();
        assert!(dump.contains("counter   test.snapshot.counter"));
        assert!(dump.contains("gauge     test.snapshot.gauge"));
        assert!(dump.contains("histogram test.snapshot.histogram"));
    }

    #[test]
    fn span_records_ring_metrics_and_request_id() {
        let ops_before = counter("testlayer.testop.ops").get();
        {
            let _scope = request_scope(4242);
            let _span = span("testlayer", "testop", "clip-1");
        }
        assert_eq!(current_request_id(), None);
        assert_eq!(counter("testlayer.testop.ops").get(), ops_before + 1);
        let spans = spans_for_request(4242);
        let span = spans.last().expect("span recorded");
        assert_eq!(span.layer, "testlayer");
        assert_eq!(span.op, "testop");
        assert_eq!(span.target, "clip-1");
        assert_eq!(span.request_id, Some(4242));
    }

    #[test]
    fn labeled_series_are_canonical_and_distinct() {
        let a = counter_with("test.labels.ops", &[("shard", "0"), ("kind", "read")]);
        let b = counter_with("test.labels.ops", &[("kind", "read"), ("shard", "0")]);
        assert!(std::ptr::eq(a, b), "label order must not split a series");
        let c = counter_with("test.labels.ops", &[("kind", "write"), ("shard", "0")]);
        assert!(!std::ptr::eq(a, c), "distinct label values are distinct series");
        let plain = counter("test.labels.ops");
        assert!(!std::ptr::eq(a, plain), "unlabeled series is its own series");
        a.add(2);
        c.incr();
        let snapshot = snapshot();
        assert_eq!(
            snapshot.counter_labeled("test.labels.ops", &[("shard", "0"), ("kind", "read")]),
            Some(a.get())
        );
        assert_eq!(
            snapshot.counter("test.labels.ops{kind=read,shard=0}"),
            Some(a.get()),
            "snapshot keys are the canonical rendering"
        );
    }

    #[test]
    fn series_key_renders_sorted() {
        assert_eq!(series_key("a.b.c", &[]), "a.b.c");
        assert_eq!(series_key("a.b.c", &[("z", "1"), ("a", "2")]), "a.b.c{a=2,z=1}");
        assert_eq!(split_series_key("a.b.c{a=2,z=1}"), ("a.b.c", "{a=2,z=1}"));
        assert_eq!(split_series_key("a.b.c"), ("a.b.c", ""));
    }

    #[test]
    fn series_of_lists_every_label_set() {
        counter_with("test.serof.ops", &[("shard", "0")]).incr();
        counter_with("test.serof.ops", &[("shard", "1")]).incr();
        gauge_with("test.serof.ops", &[("shard", "2")]).set(1);
        let series = snapshot().series_of("test.serof.ops");
        let suffixes: Vec<&str> = series.iter().map(|(s, _)| s.as_str()).collect();
        assert_eq!(suffixes, ["{shard=0}", "{shard=1}", "{shard=2}"]);
    }

    #[test]
    fn text_exposition_is_sorted_and_labeled() {
        counter_with("test.expo.total", &[("kind", "read")]).add(4);
        gauge("test.expo.level").set(-3);
        histogram_with("test.expo.lat_ns", &[("shard", "1")]).record(100);
        let text = snapshot().text_exposition();
        assert!(text.contains("vss_test_expo_total{kind=\"read\"} 4"), "{text}");
        assert!(text.contains("vss_test_expo_level -3"), "{text}");
        assert!(text.contains("vss_test_expo_lat_ns_count{shard=\"1\"} 1"), "{text}");
        assert!(text.contains("vss_test_expo_lat_ns{shard=\"1\",quantile=\"0.5\"}"), "{text}");
        // Byte-stable: two expositions of the same snapshot are identical,
        // and lines within each kind are sorted.
        let snapshot = snapshot();
        assert_eq!(snapshot.text_exposition(), snapshot.text_exposition());
        let dump = snapshot.dump();
        let counter_lines: Vec<&str> =
            dump.lines().filter(|l| l.starts_with("counter")).collect();
        let mut sorted = counter_lines.clone();
        sorted.sort();
        assert_eq!(counter_lines, sorted, "dump counters in sorted order");
    }

    #[test]
    fn nested_spans_chain_into_a_tree() {
        let _scope = request_scope(777_001);
        let root_id;
        {
            let root = span("testtree", "root", "clip");
            root_id = root.id();
            assert_eq!(current_parent_span(), Some(root_id));
            {
                let child = span("testtree", "child", "clip");
                assert_eq!(current_parent_span(), Some(child.id()));
                let _grandchild = span("testtree", "grandchild", "clip");
            }
            assert_eq!(current_parent_span(), Some(root_id));
        }
        let tree = span_tree(777_001);
        assert_eq!(tree.spans.len(), 3);
        assert!(tree.is_connected(), "one root: {:?}", tree.roots());
        assert_eq!(tree.roots()[0].span_id, root_id);
        assert_eq!(tree.roots()[0].op, "root");
        // Parent ordering invariant: parents start at or before children.
        for span in &tree.spans {
            if let Some(parent) = span.parent_span_id {
                let parent = tree.spans.iter().find(|s| s.span_id == parent).unwrap();
                assert!(parent.start_ns <= span.start_ns);
            }
        }
        let rendered = tree.render();
        assert!(rendered.contains("testtree.root"), "{rendered}");
        assert!(rendered.contains("\n  testtree.child"), "{rendered}");
        assert!(rendered.contains("\n    testtree.grandchild"), "{rendered}");
    }

    #[test]
    fn trace_scope_chains_remote_parent_and_restores() {
        let remote_parent = 990_001;
        {
            let _scope = trace_scope(777_002, Some(remote_parent));
            assert_eq!(current_request_id(), Some(777_002));
            assert_eq!(current_parent_span(), Some(remote_parent));
            let _span = span("testremote", "serve", "clip");
        }
        assert_eq!(current_request_id(), None);
        assert_eq!(current_parent_span(), None);
        let tree = span_tree(777_002);
        assert_eq!(tree.spans.len(), 1);
        assert_eq!(tree.spans[0].parent_span_id, Some(remote_parent));
        // The remote parent is not in the ring, so the span is an orphan
        // root — the tree still renders rather than dropping it.
        assert_eq!(tree.roots().len(), 1);
    }

    #[test]
    fn request_scope_restores_previous() {
        let outer = request_scope(1);
        {
            let _inner = request_scope(2);
            assert_eq!(current_request_id(), Some(2));
        }
        assert_eq!(current_request_id(), Some(1));
        drop(outer);
        assert_eq!(current_request_id(), None);
    }
}
