//! Property tests for labeled-metric interning under concurrency: however
//! many threads race to intern the same (name, label set) in whatever pair
//! order, they must all receive the same series — and series with different
//! label sets must never mix counts.

use proptest::prelude::*;
use vss_telemetry::{counter_with, series_key, snapshot};

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Four threads concurrently intern-and-increment a case-unique family
    /// of labeled series, each thread spelling the label pairs in its own
    /// order. Every series must end up with exactly the sum of the
    /// increments aimed at it: a single misrouted add (two label sets
    /// colliding, or one set splitting into two series) breaks the tally.
    #[test]
    fn concurrent_interning_never_mixes_series(
        nonce in any::<u64>(),
        series_count in 1usize..5,
        per_thread in 1u64..50,
    ) {
        const THREADS: usize = 4;
        let name = "test.props.interned_ops";
        // Case-unique label values so series start at zero for this case.
        let shards: Vec<String> = (0..series_count).map(|i| format!("{nonce:x}-{i}")).collect();
        let kinds = ["read", "write", "sub"];
        let handles: Vec<_> = (0..THREADS)
            .map(|thread| {
                let shards = shards.clone();
                std::thread::spawn(move || {
                    for (index, shard) in shards.iter().enumerate() {
                        let kind = kinds[index % kinds.len()];
                        // Odd threads spell the pairs in reverse order; the
                        // canonical sort must land them on the same series.
                        let counter = if thread % 2 == 0 {
                            counter_with(name, &[("shard", shard), ("kind", kind)])
                        } else {
                            counter_with(name, &[("kind", kind), ("shard", shard)])
                        };
                        // Weight by series index so a cross-series mixup
                        // changes totals instead of cancelling out.
                        counter.add(per_thread + index as u64);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("interning thread");
        }
        let snapshot = snapshot();
        for (index, shard) in shards.iter().enumerate() {
            let kind = kinds[index % kinds.len()];
            let labels = [("shard", shard.as_str()), ("kind", kind)];
            let expected = THREADS as u64 * (per_thread + index as u64);
            let got = snapshot.counter_labeled(name, &labels);
            prop_assert_eq!(
                got,
                Some(expected),
                "series {} mixed: {:?}",
                series_key(name, &labels),
                got
            );
        }
        // The same pairs intern to pointer-identical handles after the race.
        for (index, shard) in shards.iter().enumerate() {
            let kind = kinds[index % kinds.len()];
            let a = counter_with(name, &[("shard", shard), ("kind", kind)]);
            let b = counter_with(name, &[("kind", kind), ("shard", shard)]);
            prop_assert!(std::ptr::eq(a, b), "order split a series");
        }
    }
}
