//! Property tests for the telemetry primitives: histogram quantiles stay
//! within their documented bucket error bounds on arbitrary sample sets, and
//! counters are race-free under a multi-thread hammer.

use proptest::prelude::*;
use std::sync::Arc;
use vss_telemetry::{Counter, Gauge, Histogram};

/// Exact quantile of a sorted sample set, `rank = ceil(q * n)` (1-based),
/// mirroring the histogram's rank rule.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// For any sample set, every reported quantile is an upper bound on the
    /// exact quantile and overshoots by at most the bucket width: 25%
    /// relative error plus one (the sub-bucket rounding), never above the
    /// exact maximum.
    #[test]
    fn quantiles_are_bounded_upper_estimates(
        samples in proptest::collection::vec(any::<u64>(), 1..200),
    ) {
        let histogram = Histogram::new();
        for &sample in &samples {
            histogram.record(sample);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let max = *sorted.last().expect("non-empty");
        prop_assert_eq!(histogram.count(), samples.len() as u64);
        prop_assert_eq!(histogram.max(), max);
        // The sum is a plain wrapping atomic accumulator.
        prop_assert_eq!(histogram.sum(), samples.iter().fold(0u64, |a, &b| a.wrapping_add(b)));
        for q in [0.5, 0.9, 0.99] {
            let exact = exact_quantile(&sorted, q);
            let reported = histogram.quantile(q);
            prop_assert!(
                reported >= exact,
                "q={} reported {} below exact {}",
                q, reported, exact
            );
            prop_assert!(reported <= max, "q={} reported {} above max {}", q, reported, max);
            // Bucket width is at most max(1, lower/4), so the upper bound
            // overshoots the exact value by at most 25% (plus 1 for the
            // integer sub-bucket rounding).
            let bound = exact.saturating_add(exact / 4).saturating_add(1);
            prop_assert!(
                reported <= bound,
                "q={} reported {} beyond error bound {} (exact {})",
                q, reported, bound, exact
            );
        }
    }

    /// Recording order never changes what a histogram reports.
    #[test]
    fn histograms_are_order_insensitive(
        samples in proptest::collection::vec(any::<u64>(), 1..100),
    ) {
        let forward = Histogram::new();
        let backward = Histogram::new();
        for &sample in &samples {
            forward.record(sample);
        }
        for &sample in samples.iter().rev() {
            backward.record(sample);
        }
        prop_assert_eq!(forward.summary(), backward.summary());
    }
}

/// Eight threads hammering the same counter, gauge and histogram must lose
/// no updates: counters land on the exact total, gauges return to their
/// starting level after balanced add/sub, and the histogram accounts every
/// sample in both `count` and `sum`.
#[test]
fn counters_survive_an_eight_thread_hammer() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 20_000;
    let counter = Arc::new(Counter::new());
    let gauge = Arc::new(Gauge::new());
    let histogram = Arc::new(Histogram::new());
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let counter = Arc::clone(&counter);
            let gauge = Arc::clone(&gauge);
            let histogram = Arc::clone(&histogram);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    counter.incr();
                    gauge.add(3);
                    gauge.sub(3);
                    // Spread samples across many buckets, varied per thread.
                    histogram.record((t as u64 + 1) * (i % 4096));
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("hammer thread");
    }
    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(counter.get(), total);
    assert_eq!(gauge.get(), 0);
    assert_eq!(histogram.count(), total);
    let expected_sum: u64 =
        (0..THREADS as u64).map(|t| (t + 1) * (0..PER_THREAD).map(|i| i % 4096).sum::<u64>()).sum();
    assert_eq!(histogram.sum(), expected_sum);
    assert_eq!(histogram.max(), THREADS as u64 * 4095);
    assert!(histogram.quantile(0.99) >= histogram.quantile(0.5));
}
