//! # vss-parallel
//!
//! A small, deterministic parallel-map primitive for the VSS GOP pipeline.
//!
//! VSS decomposes every read, write and cache operation into independent
//! GOPs; the paper's prototype exploits that with hardware-parallel encoders.
//! This crate provides the software equivalent: [`par_map`] runs a function
//! over a slice of inputs on `threads` scoped worker threads and returns the
//! outputs **in input order**, so the parallel pipeline is bit-identical to
//! the sequential one regardless of scheduling. (The full `rayon` crate is
//! unavailable in this offline build environment; this is the subset the
//! workspace needs, with the same ordered-collect semantics as
//! `par_iter().map(..).collect()`.)
//!
//! Work distribution is a shared atomic cursor: each worker claims the next
//! unprocessed index, which load-balances uneven GOP sizes without any
//! channel traffic or per-item allocation beyond the output slot.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Number of worker threads the machine can usefully run.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Resolves a configured thread-count knob: `0` means "use every core".
pub fn resolve_threads(configured: usize) -> usize {
    if configured == 0 {
        available_parallelism()
    } else {
        configured
    }
}

/// Maps `f` over `items` using up to `threads` worker threads, returning the
/// results in input order.
///
/// With `threads <= 1` (or a single item) this degenerates to a plain
/// sequential loop on the calling thread — no threads are spawned, so the
/// single-threaded configuration reproduces the historical behaviour exactly.
/// Panics in `f` propagate to the caller.
pub fn par_map<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = resolve_threads(threads).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let mut slots: Vec<Option<U>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let cursor = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|scope| {
        // Hand each worker a disjoint set of output slots: the slot vector is
        // split into one-element chunks behind a striped claim protocol.
        // Simpler and safe: collect per-worker (index, value) pairs and fill
        // the slots afterwards on the calling thread.
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let cursor = &cursor;
            handles.push(scope.spawn(move || {
                let mut produced: Vec<(usize, U)> = Vec::new();
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= items.len() {
                        break;
                    }
                    produced.push((index, f(index, &items[index])));
                }
                produced
            }));
        }
        for handle in handles {
            for (index, value) in handle.join().expect("par_map worker panicked") {
                slots[index] = Some(value);
            }
        }
    });
    slots.into_iter().map(|slot| slot.expect("every index produced")).collect()
}

/// Like [`par_map`] for fallible functions: returns the first error by input
/// order, or all results in input order.
pub fn try_par_map<T, U, E, F>(threads: usize, items: &[T], f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<U, E> + Sync,
{
    let results = par_map(threads, items, |i, item| f(i, item));
    let mut out = Vec::with_capacity(results.len());
    for result in results {
        out.push(result?);
    }
    Ok(out)
}

/// A bounded, in-order background prefetcher: a pool of worker threads maps
/// `f` over a list of owned work items, delivering the results **in input
/// order** through [`recv`](OrderedPrefetch::recv) while never running more
/// than `depth` items ahead of the consumer.
///
/// This is the pipelining counterpart of [`par_map`]: where `par_map` is a
/// barrier (the caller blocks until every output exists), `OrderedPrefetch`
/// overlaps production with consumption — the VSS streaming read path uses it
/// to decode GOP *n + k* on a worker while the consumer is still processing
/// GOP *n*. The in-order delivery makes the consumer's view identical to a
/// sequential loop over the items, so pipelined output is byte-identical to
/// synchronous output by construction.
///
/// Work items are **moved in** (and shared behind an `Arc`), so the bounds on
/// this type never force callers to make *their* data `'static` — the
/// prefetcher owns everything it touches, which is what lets `ReadStream`
/// keep its snapshot-then-iterate API unchanged.
///
/// Dropping the prefetcher cancels it: unclaimed items are abandoned, workers
/// finish (at most) the item they are currently computing, and every worker
/// thread is joined before `drop` returns — no threads outlive the value.
pub struct OrderedPrefetch<T> {
    shared: Arc<PrefetchShared<T>>,
    workers: Vec<JoinHandle<()>>,
}

struct PrefetchShared<T> {
    state: Mutex<PrefetchState<T>>,
    /// Signalled when a claim becomes available (consumer advanced) or on
    /// cancellation; workers wait here.
    work_ready: Condvar,
    /// Signalled when a result lands (or on worker panic / cancellation);
    /// the consumer waits here.
    result_ready: Condvar,
}

struct PrefetchState<T> {
    /// Completed results awaiting in-order delivery, keyed by input index.
    done: BTreeMap<usize, T>,
    /// Next input index a worker may claim.
    next_claim: usize,
    /// Next input index the consumer will receive.
    next_deliver: usize,
    total: usize,
    /// Maximum claimed-but-undelivered items (the lookahead window).
    depth: usize,
    cancelled: bool,
    /// Set when a worker's closure panicked, so the consumer fails loudly
    /// instead of waiting forever for an index that will never arrive.
    poisoned: bool,
}

/// Marks the prefetcher poisoned if the worker closure unwinds.
struct PoisonGuard<'a, T> {
    shared: &'a PrefetchShared<T>,
    armed: bool,
}

impl<T> Drop for PoisonGuard<'_, T> {
    fn drop(&mut self) {
        if self.armed {
            self.shared.state.lock().unwrap_or_else(|e| e.into_inner()).poisoned = true;
            self.shared.result_ready.notify_all();
        }
    }
}

impl<T: Send + 'static> OrderedPrefetch<T> {
    /// Spawns a prefetcher over `items` with up to `threads` workers
    /// (resolved via [`resolve_threads`], then capped by `depth` and the item
    /// count) and a lookahead window of `depth` items (minimum 1).
    pub fn spawn<I, F>(threads: usize, depth: usize, items: Vec<I>, f: F) -> Self
    where
        I: Send + Sync + 'static,
        F: Fn(usize, &I) -> T + Send + Sync + 'static,
    {
        let depth = depth.max(1);
        let total = items.len();
        let workers = resolve_threads(threads).min(depth).min(total.max(1));
        let shared = Arc::new(PrefetchShared {
            state: Mutex::new(PrefetchState {
                done: BTreeMap::new(),
                next_claim: 0,
                next_deliver: 0,
                total,
                depth,
                cancelled: false,
                poisoned: false,
            }),
            work_ready: Condvar::new(),
            result_ready: Condvar::new(),
        });
        let items = Arc::new(items);
        let f = Arc::new(f);
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let items = Arc::clone(&items);
                let f = Arc::clone(&f);
                std::thread::spawn(move || loop {
                    let index = {
                        let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
                        loop {
                            if state.cancelled || state.next_claim >= state.total {
                                return;
                            }
                            if state.next_claim < state.next_deliver + state.depth {
                                break;
                            }
                            state =
                                shared.work_ready.wait(state).unwrap_or_else(|e| e.into_inner());
                        }
                        let index = state.next_claim;
                        state.next_claim += 1;
                        index
                    };
                    let mut guard = PoisonGuard { shared: &shared, armed: true };
                    let value = f(index, &items[index]);
                    guard.armed = false;
                    drop(guard);
                    let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
                    if state.cancelled {
                        return;
                    }
                    state.done.insert(index, value);
                    shared.result_ready.notify_all();
                })
            })
            .collect();
        Self { shared, workers: handles }
    }

    /// Receives the next result in input order, blocking until a worker
    /// produces it. Returns `None` once every item has been delivered.
    ///
    /// # Panics
    ///
    /// Panics if a worker's closure panicked (the work that index represents
    /// can never be delivered).
    pub fn recv(&mut self) -> Option<T> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            assert!(!state.poisoned, "prefetch worker panicked");
            if state.next_deliver >= state.total {
                return None;
            }
            let next = state.next_deliver;
            if let Some(value) = state.done.remove(&next) {
                state.next_deliver += 1;
                // Advancing the consumer cursor frees one claim slot.
                self.shared.work_ready.notify_all();
                return Some(value);
            }
            state = self.shared.result_ready.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Items claimed by workers but not yet delivered (bounded by `depth`).
    pub fn in_flight(&self) -> usize {
        let state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.next_claim - state.next_deliver
    }
}

impl<T> Drop for OrderedPrefetch<T> {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.cancelled = true;
        }
        self.shared.work_ready.notify_all();
        self.shared.result_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Splits `total` items into contiguous `(start, end)` chunks of at most
/// `chunk_size`, in order — the GOP boundaries of an encode.
pub fn chunk_ranges(total: usize, chunk_size: usize) -> Vec<(usize, usize)> {
    let chunk_size = chunk_size.max(1);
    let mut ranges = Vec::with_capacity(total.div_ceil(chunk_size));
    let mut start = 0;
    while start < total {
        let end = (start + chunk_size).min(total);
        ranges.push((start, end));
        start = end;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 4, 8] {
            let doubled = par_map(threads, &items, |_, &v| v * 2);
            assert_eq!(doubled, items.iter().map(|v| v * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_output_is_identical_to_sequential() {
        let items: Vec<u64> = (0..100).collect();
        let sequential = par_map(1, &items, |i, &v| v.wrapping_mul(31).wrapping_add(i as u64));
        let parallel = par_map(4, &items, |i, &v| v.wrapping_mul(31).wrapping_add(i as u64));
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn try_par_map_surfaces_first_error_by_index() {
        let items: Vec<u32> = (0..50).collect();
        let result: Result<Vec<u32>, u32> =
            try_par_map(4, &items, |_, &v| if v == 7 || v == 31 { Err(v) } else { Ok(v) });
        assert_eq!(result.unwrap_err(), 7);
        let ok: Result<Vec<u32>, u32> = try_par_map(4, &items, |_, &v| Ok(v));
        assert_eq!(ok.unwrap(), items);
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        assert_eq!(resolve_threads(0), available_parallelism());
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        assert_eq!(chunk_ranges(10, 4), vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(chunk_ranges(0, 4), Vec::<(usize, usize)>::new());
        assert_eq!(chunk_ranges(3, 0), vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(chunk_ranges(4, 4), vec![(0, 4)]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(4, &empty, |_, &v| v).is_empty());
    }

    #[test]
    fn ordered_prefetch_delivers_in_input_order() {
        let items: Vec<u64> = (0..64).collect();
        for (threads, depth) in [(1, 1), (2, 2), (4, 4), (4, 8)] {
            let mut prefetch =
                OrderedPrefetch::spawn(threads, depth, items.clone(), |i, &v| (i, v * 3));
            let mut received = Vec::new();
            while let Some(value) = prefetch.recv() {
                received.push(value);
            }
            let expected: Vec<(usize, u64)> =
                items.iter().enumerate().map(|(i, &v)| (i, v * 3)).collect();
            assert_eq!(received, expected);
            assert!(prefetch.recv().is_none(), "exhausted prefetch stays exhausted");
        }
    }

    #[test]
    fn ordered_prefetch_respects_the_lookahead_window() {
        // With depth 2 and a blocked consumer, workers may run at most 2
        // items ahead; the produced counter can never exceed consumed + 2.
        let produced = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&produced);
        let items: Vec<u32> = (0..32).collect();
        let mut prefetch = OrderedPrefetch::spawn(4, 2, items, move |_, &v| {
            counter.fetch_add(1, Ordering::SeqCst);
            v
        });
        let mut consumed = 0usize;
        while prefetch.recv().is_some() {
            consumed += 1;
            let ahead = produced.load(Ordering::SeqCst).saturating_sub(consumed);
            assert!(ahead <= 2, "workers ran {ahead} items ahead of a depth-2 window");
        }
        assert_eq!(consumed, 32);
    }

    #[test]
    fn ordered_prefetch_drop_cancels_and_joins() {
        // Drop after one receive: remaining work is abandoned, all workers
        // join, and far fewer than `total` items were computed.
        let produced = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&produced);
        let items: Vec<u32> = (0..1000).collect();
        let mut prefetch = OrderedPrefetch::spawn(4, 3, items, move |_, &v| {
            counter.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(1));
            v
        });
        assert_eq!(prefetch.recv(), Some(0));
        drop(prefetch); // joins every worker before returning
        let total = produced.load(Ordering::SeqCst);
        assert!(total <= 16, "cancellation should abandon unclaimed work, computed {total}");
    }

    #[test]
    fn ordered_prefetch_empty_input_is_exhausted_immediately() {
        let mut prefetch = OrderedPrefetch::spawn(4, 4, Vec::<u8>::new(), |_, &v| v);
        assert_eq!(prefetch.recv(), None);
    }

    #[test]
    #[should_panic(expected = "prefetch worker panicked")]
    fn ordered_prefetch_worker_panics_surface_on_recv() {
        let items: Vec<u8> = (0..8).collect();
        let mut prefetch = OrderedPrefetch::spawn(2, 2, items, |_, &v| {
            if v == 0 {
                panic!("boom");
            }
            v
        });
        while prefetch.recv().is_some() {}
    }

    #[test]
    #[should_panic(expected = "par_map worker panicked")]
    fn worker_panics_propagate() {
        let items: Vec<u8> = (0..16).collect();
        par_map(2, &items, |_, &v| {
            if v == 9 {
                panic!("boom");
            }
            v
        });
    }
}
