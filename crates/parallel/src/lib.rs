//! # vss-parallel
//!
//! A small, deterministic parallel-map primitive for the VSS GOP pipeline.
//!
//! VSS decomposes every read, write and cache operation into independent
//! GOPs; the paper's prototype exploits that with hardware-parallel encoders.
//! This crate provides the software equivalent: [`par_map`] runs a function
//! over a slice of inputs on `threads` scoped worker threads and returns the
//! outputs **in input order**, so the parallel pipeline is bit-identical to
//! the sequential one regardless of scheduling. (The full `rayon` crate is
//! unavailable in this offline build environment; this is the subset the
//! workspace needs, with the same ordered-collect semantics as
//! `par_iter().map(..).collect()`.)
//!
//! Work distribution is a shared atomic cursor: each worker claims the next
//! unprocessed index, which load-balances uneven GOP sizes without any
//! channel traffic or per-item allocation beyond the output slot.

#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads the machine can usefully run.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Resolves a configured thread-count knob: `0` means "use every core".
pub fn resolve_threads(configured: usize) -> usize {
    if configured == 0 {
        available_parallelism()
    } else {
        configured
    }
}

/// Maps `f` over `items` using up to `threads` worker threads, returning the
/// results in input order.
///
/// With `threads <= 1` (or a single item) this degenerates to a plain
/// sequential loop on the calling thread — no threads are spawned, so the
/// single-threaded configuration reproduces the historical behaviour exactly.
/// Panics in `f` propagate to the caller.
pub fn par_map<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = resolve_threads(threads).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let mut slots: Vec<Option<U>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let cursor = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|scope| {
        // Hand each worker a disjoint set of output slots: the slot vector is
        // split into one-element chunks behind a striped claim protocol.
        // Simpler and safe: collect per-worker (index, value) pairs and fill
        // the slots afterwards on the calling thread.
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let cursor = &cursor;
            handles.push(scope.spawn(move || {
                let mut produced: Vec<(usize, U)> = Vec::new();
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= items.len() {
                        break;
                    }
                    produced.push((index, f(index, &items[index])));
                }
                produced
            }));
        }
        for handle in handles {
            for (index, value) in handle.join().expect("par_map worker panicked") {
                slots[index] = Some(value);
            }
        }
    });
    slots.into_iter().map(|slot| slot.expect("every index produced")).collect()
}

/// Like [`par_map`] for fallible functions: returns the first error by input
/// order, or all results in input order.
pub fn try_par_map<T, U, E, F>(threads: usize, items: &[T], f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<U, E> + Sync,
{
    let results = par_map(threads, items, |i, item| f(i, item));
    let mut out = Vec::with_capacity(results.len());
    for result in results {
        out.push(result?);
    }
    Ok(out)
}

/// Splits `total` items into contiguous `(start, end)` chunks of at most
/// `chunk_size`, in order — the GOP boundaries of an encode.
pub fn chunk_ranges(total: usize, chunk_size: usize) -> Vec<(usize, usize)> {
    let chunk_size = chunk_size.max(1);
    let mut ranges = Vec::with_capacity(total.div_ceil(chunk_size));
    let mut start = 0;
    while start < total {
        let end = (start + chunk_size).min(total);
        ranges.push((start, end));
        start = end;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 4, 8] {
            let doubled = par_map(threads, &items, |_, &v| v * 2);
            assert_eq!(doubled, items.iter().map(|v| v * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_output_is_identical_to_sequential() {
        let items: Vec<u64> = (0..100).collect();
        let sequential = par_map(1, &items, |i, &v| v.wrapping_mul(31).wrapping_add(i as u64));
        let parallel = par_map(4, &items, |i, &v| v.wrapping_mul(31).wrapping_add(i as u64));
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn try_par_map_surfaces_first_error_by_index() {
        let items: Vec<u32> = (0..50).collect();
        let result: Result<Vec<u32>, u32> =
            try_par_map(4, &items, |_, &v| if v == 7 || v == 31 { Err(v) } else { Ok(v) });
        assert_eq!(result.unwrap_err(), 7);
        let ok: Result<Vec<u32>, u32> = try_par_map(4, &items, |_, &v| Ok(v));
        assert_eq!(ok.unwrap(), items);
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        assert_eq!(resolve_threads(0), available_parallelism());
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        assert_eq!(chunk_ranges(10, 4), vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(chunk_ranges(0, 4), Vec::<(usize, usize)>::new());
        assert_eq!(chunk_ranges(3, 0), vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(chunk_ranges(4, 4), vec![(0, 4)]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(4, &empty, |_, &v| v).is_empty());
    }

    #[test]
    #[should_panic(expected = "par_map worker panicked")]
    fn worker_panics_propagate() {
        let items: Vec<u8> = (0..16).collect();
        par_map(2, &items, |_, &v| {
            if v == 9 {
                panic!("boom");
            }
            v
        });
    }
}
