//! Procedural traffic-scene renderer.
//!
//! The paper evaluates VSS on dash-cam datasets (RobotCar, Waymo) and on
//! synthetic video produced by the Visual Road benchmark's CARLA renderer.
//! None of those are available offline, so this module renders a
//! deterministic traffic scene — sky, road surface, lane markings and moving
//! vehicles — into a wide "world" image from which one or two overlapping
//! camera views are cropped. The renderer provides the properties the
//! evaluation depends on: temporal coherence (inter-frame compression works),
//! controllable horizontal overlap between two cameras, multiple resolutions,
//! detectable vehicles, and optional camera motion (panning) to model the
//! paper's "slow" and "fast" dynamic-camera scenarios.

use vss_frame::pattern::{self, Xorshift};
use vss_frame::{Frame, FrameSequence, PixelFormat, Resolution};

/// A vehicle moving through the scene.
#[derive(Debug, Clone)]
struct Vehicle {
    lane: usize,
    offset: f64,
    speed: f64,
    length: u32,
    color: (u8, u8, u8),
}

/// Camera motion model for the rendered views.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CameraMotion {
    /// Fixed cameras (the default; traffic-pole scenario).
    Static,
    /// Cameras pan horizontally by `pixels_per_frame` (paper's "slow" and
    /// "fast" rotating-camera scenarios).
    Panning {
        /// Horizontal pan speed in world pixels per frame.
        pixels_per_frame: f64,
    },
}

/// Configuration of a rendered scene.
#[derive(Debug, Clone)]
pub struct SceneConfig {
    /// Resolution of each camera view.
    pub resolution: Resolution,
    /// Output pixel format.
    pub format: PixelFormat,
    /// Frame rate of the rendered video.
    pub frame_rate: f64,
    /// Horizontal overlap between the two camera views, in `[0, 1)`.
    pub overlap: f64,
    /// Number of vehicles in the scene.
    pub vehicles: usize,
    /// Camera motion model.
    pub motion: CameraMotion,
    /// Per-pixel noise amplitude (sensor noise; makes compression realistic).
    pub noise_amplitude: u8,
    /// Random seed controlling vehicle placement and colours.
    pub seed: u64,
}

impl Default for SceneConfig {
    fn default() -> Self {
        Self {
            resolution: Resolution::new(320, 180),
            format: PixelFormat::Yuv420,
            frame_rate: 30.0,
            overlap: 0.3,
            vehicles: 6,
            motion: CameraMotion::Static,
            noise_amplitude: 2,
            seed: 7,
        }
    }
}

/// Renders one or two overlapping camera views of a synthetic traffic scene.
#[derive(Debug, Clone)]
pub struct SceneRenderer {
    config: SceneConfig,
    vehicles: Vec<Vehicle>,
    world_width: u32,
}

/// Ground-truth bounding box of a vehicle within a rendered camera view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VehicleBox {
    /// Left edge in view coordinates.
    pub x: u32,
    /// Top edge in view coordinates.
    pub y: u32,
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Dominant colour of the vehicle.
    pub color: (u8, u8, u8),
}

const VEHICLE_PALETTE: [(u8, u8, u8); 6] = [
    (200, 40, 40),   // red
    (40, 160, 220),  // blue
    (240, 210, 70),  // yellow
    (60, 180, 90),   // green
    (230, 230, 230), // white
    (40, 40, 45),    // black
];

impl SceneRenderer {
    /// Creates a renderer for the given configuration.
    pub fn new(config: SceneConfig) -> Self {
        let width = config.resolution.width;
        let world_width = (2.0 * f64::from(width) - config.overlap * f64::from(width))
            .round()
            .max(f64::from(width)) as u32;
        let mut rng = Xorshift::new(config.seed);
        let lane_count = 3usize;
        let vehicles = (0..config.vehicles)
            .map(|i| Vehicle {
                lane: i % lane_count,
                offset: rng.next_f64() * f64::from(world_width),
                speed: 1.0 + rng.next_f64() * 3.0,
                length: (config.resolution.width / 16).max(8) + (rng.next_below(8) as u32),
                color: VEHICLE_PALETTE[(rng.next_below(VEHICLE_PALETTE.len() as u64)) as usize],
            })
            .collect();
        Self { config, vehicles, world_width }
    }

    /// The scene configuration.
    pub fn config(&self) -> &SceneConfig {
        &self.config
    }

    /// Renders the full world image at frame `t`.
    fn render_world(&self, t: usize) -> Frame {
        let height = self.config.resolution.height;
        let mut world = Frame::black(self.world_width, height, PixelFormat::Rgb8)
            .expect("world resolution is valid");
        // Sky with a subtle vertical gradient.
        let sky_height = height / 3;
        for y in 0..sky_height {
            let shade = 200u8.saturating_sub((y * 60 / sky_height.max(1)) as u8);
            pattern::fill_rect(&mut world, 0, y as i64, self.world_width, 1, (shade / 2, shade, 230));
        }
        // Road surface.
        pattern::fill_rect(
            &mut world,
            0,
            sky_height as i64,
            self.world_width,
            height - sky_height,
            (72, 72, 78),
        );
        // Lane markings (dashed lines that scroll with time for realism).
        let lane_height = (height - sky_height) / 4;
        for lane in 1..4u32 {
            let y = sky_height + lane * lane_height;
            let mut x = -((t as i64 * 2) % 24);
            while x < self.world_width as i64 {
                pattern::fill_rect(&mut world, x, y as i64, 12, 2, (220, 220, 200));
                x += 24;
            }
        }
        // Vehicles.
        for vehicle in &self.vehicles {
            let (x, y, w, h) = self.vehicle_world_box(vehicle, t);
            pattern::fill_rect(&mut world, x, y, w, h, vehicle.color);
            // Windshield accent so vehicles have internal structure.
            pattern::fill_rect(&mut world, x + 2, y + 1, (w / 3).max(2), (h / 3).max(1), (180, 210, 230));
        }
        if self.config.noise_amplitude > 0 {
            world = pattern::add_noise(&world, self.config.noise_amplitude, self.config.seed ^ t as u64);
        }
        world
    }

    fn vehicle_world_box(&self, vehicle: &Vehicle, t: usize) -> (i64, i64, u32, u32) {
        let height = self.config.resolution.height;
        let sky_height = height / 3;
        let lane_height = (height - sky_height) / 4;
        let x = ((vehicle.offset + vehicle.speed * t as f64) % f64::from(self.world_width)) as i64;
        let y = (sky_height + (vehicle.lane as u32 + 1) * lane_height - lane_height / 2) as i64;
        let h = (lane_height / 2).max(4);
        (x, y, vehicle.length, h)
    }

    /// World-space horizontal offset of a camera at frame `t`.
    fn camera_offset(&self, camera: usize, t: usize) -> i64 {
        let width = f64::from(self.config.resolution.width);
        let base = if camera == 0 { 0.0 } else { width * (1.0 - self.config.overlap) };
        let pan = match self.config.motion {
            CameraMotion::Static => 0.0,
            CameraMotion::Panning { pixels_per_frame } => pixels_per_frame * t as f64,
        };
        let max_offset = f64::from(self.world_width) - width;
        (base + pan).clamp(0.0, max_offset).round() as i64
    }

    /// Renders camera `camera` (0 = left, 1 = right) at frame `t`.
    pub fn render_view(&self, camera: usize, t: usize) -> Frame {
        let world = self.render_world(t);
        let offset = self.camera_offset(camera, t);
        let width = self.config.resolution.width;
        let height = self.config.resolution.height;
        let roi = vss_frame::RegionOfInterest::new(offset as u32, 0, offset as u32 + width, height)
            .expect("camera view inside world");
        let view = vss_frame::crop(&world, &roi).expect("crop inside world");
        view.convert(self.config.format).expect("format conversion")
    }

    /// Renders `frames` frames of camera `camera` as a sequence.
    pub fn render_sequence(&self, camera: usize, frames: usize) -> FrameSequence {
        let rendered: Vec<Frame> = (0..frames).map(|t| self.render_view(camera, t)).collect();
        FrameSequence::new(rendered, self.config.frame_rate).expect("uniform rendered frames")
    }

    /// Ground-truth vehicle boxes visible in camera `camera` at frame `t`.
    pub fn ground_truth(&self, camera: usize, t: usize) -> Vec<VehicleBox> {
        let offset = self.camera_offset(camera, t);
        let width = self.config.resolution.width as i64;
        let mut boxes = Vec::new();
        for vehicle in &self.vehicles {
            let (wx, wy, w, h) = self.vehicle_world_box(vehicle, t);
            let x0 = wx - offset;
            let x1 = x0 + i64::from(w);
            if x1 <= 0 || x0 >= width {
                continue;
            }
            let clamped_x0 = x0.max(0);
            let clamped_x1 = x1.min(width);
            boxes.push(VehicleBox {
                x: clamped_x0 as u32,
                y: wy.max(0) as u32,
                width: (clamped_x1 - clamped_x0) as u32,
                height: h,
                color: vehicle.color,
            });
        }
        boxes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vss_frame::quality;

    #[test]
    fn rendering_is_deterministic_and_temporally_coherent() {
        let renderer = SceneRenderer::new(SceneConfig::default());
        let a = renderer.render_view(0, 5);
        let b = renderer.render_view(0, 5);
        assert_eq!(a, b, "same frame renders identically");
        let next = renderer.render_view(0, 6);
        let p = quality::psnr(&a, &next).unwrap();
        assert!(p.db() > 20.0, "consecutive frames should be similar, got {p}");
        assert!(p.db() < quality::PsnrDb::LOSSLESS_CAP, "but not identical");
    }

    #[test]
    fn overlapping_cameras_share_content() {
        let config = SceneConfig { overlap: 0.5, noise_amplitude: 0, ..Default::default() };
        let renderer = SceneRenderer::new(config);
        let left = renderer.render_view(0, 0);
        let right = renderer.render_view(1, 0);
        // The right half of the left view equals the left half of the right view.
        let width = left.width();
        let half = width / 2;
        let roi_left = vss_frame::RegionOfInterest::new(half, 0, width, left.height()).unwrap();
        let roi_right = vss_frame::RegionOfInterest::new(0, 0, width - half, left.height()).unwrap();
        let a = vss_frame::crop(&left, &roi_left).unwrap();
        let b = vss_frame::crop(&right, &roi_right).unwrap();
        let p = quality::psnr(&a, &b).unwrap();
        assert!(p.db() > 38.0, "overlap regions should match, got {p}");
    }

    #[test]
    fn ground_truth_boxes_match_rendered_vehicles() {
        let config = SceneConfig { noise_amplitude: 0, format: PixelFormat::Rgb8, ..Default::default() };
        let renderer = SceneRenderer::new(config);
        let frame = renderer.render_view(0, 3);
        let boxes = renderer.ground_truth(0, 3);
        assert!(!boxes.is_empty(), "some vehicles should be visible");
        for b in &boxes {
            // Sample the centre pixel of each box and check it is vehicle-coloured
            // (either body colour or the windshield accent).
            let cx = (b.x + b.width / 2).min(frame.width() - 1);
            let cy = (b.y + b.height / 2).min(frame.height() - 1);
            let (r, g, bl) = frame.rgb_at(cx, cy);
            let body = b.color;
            let body_dist = (i32::from(r) - i32::from(body.0)).abs()
                + (i32::from(g) - i32::from(body.1)).abs()
                + (i32::from(bl) - i32::from(body.2)).abs();
            let accent_dist = (i32::from(r) - 180).abs() + (i32::from(g) - 210).abs() + (i32::from(bl) - 230).abs();
            assert!(body_dist < 60 || accent_dist < 60, "pixel at box centre is not vehicle-like");
        }
    }

    #[test]
    fn panning_cameras_shift_over_time() {
        let config = SceneConfig {
            motion: CameraMotion::Panning { pixels_per_frame: 2.0 },
            noise_amplitude: 0,
            ..Default::default()
        };
        let renderer = SceneRenderer::new(config);
        assert_eq!(renderer.camera_offset(0, 0), 0);
        assert_eq!(renderer.camera_offset(0, 10), 20);
        // Panning never runs past the world edge.
        let far = renderer.camera_offset(1, 10_000);
        assert!(far as u32 + renderer.config().resolution.width <= renderer.world_width);
    }

    #[test]
    fn sequences_have_requested_shape() {
        let config = SceneConfig {
            resolution: Resolution::new(128, 72),
            format: PixelFormat::Yuv420,
            ..Default::default()
        };
        let renderer = SceneRenderer::new(config);
        let seq = renderer.render_sequence(0, 10);
        assert_eq!(seq.len(), 10);
        assert_eq!(seq.resolution(), Some(Resolution::new(128, 72)));
        assert_eq!(seq.format(), Some(PixelFormat::Yuv420));
    }
}
