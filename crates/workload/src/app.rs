//! The end-to-end traffic-monitoring application (paper Sections 2 and 6.4).
//!
//! The application monitors an intersection for vehicles of a given colour in
//! three phases:
//!
//! 1. **Indexing** — read the video at low resolution, run the vehicle
//!    detector every `detect_every` frames, and record where vehicles appear.
//! 2. **Search** — given an alert colour, re-read the indexed regions and
//!    keep those whose detections match the colour (Euclidean distance ≤ 50,
//!    as in the paper).
//! 3. **Streaming** — retrieve the matching clips compressed with the
//!    device's codec (H.264) for playback.
//!
//! The driver runs against any [`VideoStorage`]; stores that cannot convert
//! formats (the local-file-system / "OpenCV" variant) decode in the stored
//! format and the *application* performs the resize and colour conversion,
//! exactly as the paper's baseline does. Multiple clients run the same
//! phases concurrently against a shared store.
//!
//! # Concurrency model
//!
//! A [`SharedStore`] is a [`StoreFactory`]: each client thread asks it for
//! its *own* [`VideoStorage`] handle. Against the sharded [`VssServer`]
//! (see [`server_store`]) every client gets an independent session and the
//! storage manager itself provides the concurrency — there is no driver-side
//! lock at all. Stores that are not internally thread-safe (the local file
//! system and VStore-like baselines) are adapted by [`shared_store`], whose
//! per-client handles serialize on one mutex exactly like the historical
//! `Arc<Mutex<Box<dyn VideoStore>>>` driver did.

use crate::detector::{detect_vehicles, Detection, DetectorParams};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vss_codec::Codec;
use vss_core::{
    ReadRequest, ReadResult, ReadStream, StorageBudget, VideoMetadata, VideoStorage, VssError,
    WriteReport, WriteRequest,
};
use vss_frame::{resize_bilinear, FrameSequence, PixelFormat, Resolution};
use vss_server::VssServer;

/// Application configuration.
#[derive(Debug, Clone)]
pub struct AppConfig {
    /// Logical video to analyse.
    pub video: String,
    /// Total duration of the video in seconds.
    pub duration: f64,
    /// Source resolution of the stored video.
    pub source_resolution: Resolution,
    /// Source codec of the stored video.
    pub source_codec: Codec,
    /// Low resolution used by the indexing phase.
    pub index_resolution: Resolution,
    /// Run the detector every `detect_every` frames (paper: every 10 frames).
    pub detect_every: usize,
    /// Colour to search for in the search phase.
    pub target_color: (u8, u8, u8),
    /// Maximum colour distance for a match (paper: 50).
    pub color_threshold: f64,
    /// Length of each streamed clip in seconds.
    pub clip_length: f64,
}

/// Wall-clock time spent in each phase by one client.
#[derive(Debug, Clone, Default)]
pub struct PhaseTimings {
    /// Indexing phase duration.
    pub indexing: Duration,
    /// Search phase duration.
    pub search: Duration,
    /// Streaming phase duration.
    pub streaming: Duration,
    /// Number of time ranges with detections found during indexing.
    pub indexed_ranges: usize,
    /// Number of ranges whose vehicles matched the target colour.
    pub matching_ranges: usize,
    /// Number of clips produced by the streaming phase.
    pub clips: usize,
}

impl PhaseTimings {
    /// Total wall-clock time across all phases.
    pub fn total(&self) -> Duration {
        self.indexing + self.search + self.streaming
    }
}

/// Hands out per-client [`VideoStorage`] handles for the multi-client
/// application driver.
pub trait StoreFactory: Send + Sync {
    /// Human-readable name used in benchmark output.
    fn label(&self) -> &'static str;

    /// Creates a store handle for one client. Handles from the same factory
    /// share the underlying store state.
    fn client(&self) -> Box<dyn VideoStorage + Send>;
}

/// A shared, thread-safe store handle used by the application driver.
pub type SharedStore = Arc<dyn StoreFactory>;

/// Wraps a store that is not internally thread-safe for use by the
/// (possibly multi-client) application driver: every per-client handle
/// serializes on one mutex around the store — the compatibility shim for
/// the baseline stores (and the historical behaviour of this driver).
pub fn shared_store(store: Box<dyn VideoStorage + Send>) -> SharedStore {
    let label = store.label();
    Arc::new(MutexStoreFactory { label, store: Arc::new(Mutex::new(store)) })
}

/// Wraps a sharded [`VssServer`] for the application driver: every client
/// handle is its own server session, so concurrency is provided by the
/// storage manager (per-shard locks) with no driver-side lock.
pub fn server_store(server: VssServer) -> SharedStore {
    Arc::new(ServerStoreFactory { server })
}

/// Wraps a remote `vss-net` server for the application driver: every client
/// handle is its own [`vss_net::RemoteStore`] (one TCP session per client,
/// admitted through the server's admission control), so the same
/// multi-client phases run against a storage service in another process.
///
/// Dialing happens when a client handle is requested; an unreachable or
/// overloaded server panics there, matching the driver's treatment of other
/// unrecoverable setup failures.
pub fn net_store(addr: std::net::SocketAddr) -> SharedStore {
    Arc::new(NetStoreFactory { addr })
}

struct NetStoreFactory {
    addr: std::net::SocketAddr,
}

impl StoreFactory for NetStoreFactory {
    fn label(&self) -> &'static str {
        "vss-net"
    }

    fn client(&self) -> Box<dyn VideoStorage + Send> {
        Box::new(
            vss_net::RemoteStore::connect(self.addr)
                .expect("dial the vss-net server for a client handle"),
        )
    }
}

struct MutexStoreFactory {
    label: &'static str,
    store: Arc<Mutex<Box<dyn VideoStorage + Send>>>,
}

impl StoreFactory for MutexStoreFactory {
    fn label(&self) -> &'static str {
        self.label
    }

    fn client(&self) -> Box<dyn VideoStorage + Send> {
        Box::new(MutexStoreClient { store: Arc::clone(&self.store) })
    }
}

/// A per-client handle that takes the shared mutex around every operation.
struct MutexStoreClient {
    store: Arc<Mutex<Box<dyn VideoStorage + Send>>>,
}

impl VideoStorage for MutexStoreClient {
    fn label(&self) -> &'static str {
        self.store.lock().label()
    }

    fn create(&mut self, name: &str, budget: Option<StorageBudget>) -> Result<(), VssError> {
        self.store.lock().create(name, budget)
    }

    fn delete(&mut self, name: &str) -> Result<(), VssError> {
        self.store.lock().delete(name)
    }

    fn write(
        &mut self,
        request: &WriteRequest,
        frames: &FrameSequence,
    ) -> Result<WriteReport, VssError> {
        self.store.lock().write(request, frames)
    }

    fn append(&mut self, name: &str, frames: &FrameSequence) -> Result<WriteReport, VssError> {
        self.store.lock().append(name, frames)
    }

    fn read(&mut self, request: &ReadRequest) -> Result<ReadResult, VssError> {
        self.store.lock().read(request)
    }

    fn read_stream(&mut self, request: &ReadRequest) -> Result<ReadStream, VssError> {
        // The stream is snapshotted under the mutex and consumed outside it.
        self.store.lock().read_stream(request)
    }

    fn metadata(&self, name: &str) -> Result<VideoMetadata, VssError> {
        self.store.lock().metadata(name)
    }

    fn supports_conversion(&self, from: Codec, to: Codec) -> bool {
        self.store.lock().supports_conversion(from, to)
    }
}

struct ServerStoreFactory {
    server: VssServer,
}

impl StoreFactory for ServerStoreFactory {
    fn label(&self) -> &'static str {
        "vss-server"
    }

    fn client(&self) -> Box<dyn VideoStorage + Send> {
        // A session speaks `VideoStorage` natively; no adapter needed.
        Box::new(self.server.session())
    }
}

/// Runs all three phases once against a per-client handle from the shared
/// store factory, returning the per-phase timings.
pub fn run_client(store: &SharedStore, config: &AppConfig) -> Result<PhaseTimings, VssError> {
    run_client_with(&mut *store.client(), config)
}

/// Runs all three phases once against an explicit store handle.
pub fn run_client_with(
    store: &mut dyn VideoStorage,
    config: &AppConfig,
) -> Result<PhaseTimings, VssError> {
    let mut timings = PhaseTimings::default();

    // --- Phase 1: indexing -------------------------------------------------
    let started = Instant::now();
    let step = 1.0f64.min(config.duration);
    let mut indexed: Vec<(f64, f64, Vec<Detection>)> = Vec::new();
    let mut t = 0.0;
    while t < config.duration - 1e-9 {
        let end = (t + step).min(config.duration);
        let frames = read_as(
            store,
            config,
            t,
            end,
            Some(config.index_resolution),
            Codec::Raw(PixelFormat::Rgb8),
        )?;
        let mut detections = Vec::new();
        for (i, frame) in frames.frames().iter().enumerate() {
            if i % config.detect_every.max(1) != 0 {
                continue;
            }
            detections.extend(detect_vehicles(frame, &DetectorParams::default()));
        }
        if !detections.is_empty() {
            indexed.push((t, end, detections));
        }
        t = end;
    }
    timings.indexing = started.elapsed();
    timings.indexed_ranges = indexed.len();

    // --- Phase 2: search ---------------------------------------------------
    let started = Instant::now();
    let mut matching: Vec<(f64, f64)> = Vec::new();
    for (start, end, _) in &indexed {
        let frames = read_as(store, config, *start, *end, None, Codec::Raw(PixelFormat::Rgb8))?;
        let mut matched = false;
        for frame in frames.frames().iter().step_by(config.detect_every.max(1)) {
            for detection in detect_vehicles(frame, &DetectorParams::default()) {
                if detection.color_distance(config.target_color) <= config.color_threshold {
                    matched = true;
                    break;
                }
            }
            if matched {
                break;
            }
        }
        if matched {
            matching.push((*start, *end));
        }
    }
    timings.search = started.elapsed();
    timings.matching_ranges = matching.len();

    // --- Phase 3: streaming content retrieval -------------------------------
    // Clips are consumed GOP-at-a-time through the streaming read API — a
    // playback client needs only the chunk in hand, not the whole clip.
    let started = Instant::now();
    for (start, _) in &matching {
        let clip_end = (start + config.clip_length).min(config.duration);
        if store.supports_conversion(config.source_codec, Codec::H264) {
            let stream = store
                .read_stream(&ReadRequest::new(&config.video, *start, clip_end, Codec::H264))?;
            for chunk in stream {
                let _gop = chunk?; // hand each GOP to the (simulated) player
            }
        } else {
            // The application decodes in the stored format and transcodes
            // itself (the paper's OpenCV + local-file-system variant).
            let frames = read_as(store, config, *start, clip_end, None, Codec::Raw(PixelFormat::Rgb8))?;
            let encoder = vss_codec::EncoderConfig::default();
            vss_codec::encode_to_gops(&frames, Codec::H264, &encoder)?;
        }
        timings.clips += 1;
    }
    timings.streaming = started.elapsed();
    Ok(timings)
}

/// Runs `clients` concurrent clients against the shared store and returns the
/// per-client timings (in client order). Each client thread gets its own
/// store handle from the factory (a private session against the sharded
/// server; a mutex-sharing handle for the baseline stores).
pub fn run_clients(
    store: &SharedStore,
    config: &AppConfig,
    clients: usize,
) -> Result<Vec<PhaseTimings>, VssError> {
    let clients = clients.max(1);
    let mut handles = Vec::with_capacity(clients);
    for _ in 0..clients {
        let store = Arc::clone(store);
        let config = config.clone();
        handles.push(std::thread::spawn(move || run_client_with(&mut *store.client(), &config)));
    }
    let mut results = Vec::with_capacity(clients);
    for handle in handles {
        results.push(handle.join().expect("client thread panicked")?);
    }
    Ok(results)
}

/// Reads a range in the requested configuration, falling back to
/// application-side conversion when the store cannot convert formats.
fn read_as(
    store: &mut dyn VideoStorage,
    config: &AppConfig,
    start: f64,
    end: f64,
    resolution: Option<Resolution>,
    codec: Codec,
) -> Result<FrameSequence, VssError> {
    if store.supports_conversion(config.source_codec, codec) {
        let mut request = ReadRequest::new(&config.video, start, end, codec);
        if let Some(resolution) = resolution {
            request = request.resolution(resolution);
        }
        match store.read(&request) {
            Ok(result) => return Ok(result.frames),
            Err(VssError::Unsupported(_)) => {}
            Err(other) => return Err(other),
        }
    }
    // Store-side conversion unavailable: read in the stored format and let
    // the application convert.
    let result =
        store.read(&ReadRequest::new(&config.video, start, end, config.source_codec))?;
    let mut converted = Vec::with_capacity(result.frames.len());
    for frame in result.frames.frames() {
        let frame = match resolution {
            Some(r) if frame.resolution() != r => resize_bilinear(frame, r.width, r.height)?,
            _ => frame.clone(),
        };
        let target_format = match codec {
            Codec::Raw(format) => format,
            _ => PixelFormat::Yuv420,
        };
        converted.push(frame.convert(target_format)?);
    }
    Ok(FrameSequence::new(converted, result.frames.frame_rate())?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{SceneConfig, SceneRenderer};
    use vss_baseline::LocalFs;
    use vss_core::Vss;

    fn scenario(tag: &str) -> (AppConfig, FrameSequence, std::path::PathBuf) {
        let root = std::env::temp_dir().join(format!(
            "vss-app-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let renderer = SceneRenderer::new(SceneConfig {
            resolution: Resolution::new(128, 72),
            noise_amplitude: 0,
            ..Default::default()
        });
        let frames = renderer.render_sequence(0, 60);
        let config = AppConfig {
            video: "traffic".into(),
            duration: 2.0,
            source_resolution: Resolution::new(128, 72),
            source_codec: Codec::H264,
            index_resolution: Resolution::new(64, 36),
            detect_every: 10,
            target_color: (200, 40, 40),
            color_threshold: 60.0,
            clip_length: 1.0,
        };
        (config, frames, root)
    }

    #[test]
    fn application_runs_against_vss() {
        let (config, frames, root) = scenario("vss");
        let mut store = Vss::open_at(root.join("vss")).unwrap();
        VideoStorage::write(&mut store, &WriteRequest::new(&config.video, config.source_codec), &frames)
            .unwrap();
        let shared = shared_store(Box::new(store));
        let timings = run_client(&shared, &config).unwrap();
        assert!(timings.indexed_ranges > 0, "the scene contains vehicles");
        assert!(timings.matching_ranges > 0, "a red vehicle should match");
        assert_eq!(timings.clips, timings.matching_ranges);
        assert!(timings.total() > Duration::ZERO);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn application_runs_against_local_fs_with_app_side_conversion() {
        let (config, frames, root) = scenario("fs");
        let mut store = LocalFs::new(root.join("fs")).unwrap();
        store.write(&WriteRequest::new(&config.video, config.source_codec), &frames).unwrap();
        let shared = shared_store(Box::new(store));
        let timings = run_client(&shared, &config).unwrap();
        assert!(timings.indexed_ranges > 0);
        assert!(timings.clips > 0);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn multiple_clients_complete() {
        let (config, frames, root) = scenario("multi");
        let mut store = Vss::open_at(root.join("vss")).unwrap();
        VideoStorage::write(&mut store, &WriteRequest::new(&config.video, config.source_codec), &frames)
            .unwrap();
        let shared = shared_store(Box::new(store));
        assert_eq!(shared.label(), "vss");
        let results = run_clients(&shared, &config, 2).unwrap();
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|t| t.indexed_ranges > 0));
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn application_runs_against_a_remote_store_over_loopback_tcp() {
        let (config, frames, root) = scenario("net");
        let server = vss_server::VssServer::open_sharded(
            vss_core::VssConfig::new(root.join("net")),
            2,
        )
        .unwrap();
        server
            .session()
            .write(&WriteRequest::new(&config.video, config.source_codec), &frames)
            .unwrap();
        let net = vss_net::NetServer::bind(server.clone(), "127.0.0.1:0").unwrap();
        let shared = net_store(net.local_addr());
        assert_eq!(shared.label(), "vss-net");
        let results = run_clients(&shared, &config, 2).unwrap();
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|t| t.indexed_ranges > 0));
        assert!(server.stats().total_read_ops() > 0, "remote reads hit the shards");
        net.shutdown();
        assert!(server.shutdown(std::time::Duration::from_secs(10)));
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn application_runs_against_the_sharded_server_without_a_driver_lock() {
        let (config, frames, root) = scenario("server");
        let server = vss_server::VssServer::open_sharded(
            vss_core::VssConfig::new(root.join("server")),
            4,
        )
        .unwrap();
        server
            .session()
            .write(&WriteRequest::new(&config.video, config.source_codec), &frames)
            .unwrap();
        let shared = server_store(server.clone());
        assert_eq!(shared.label(), "vss-server");
        let results = run_clients(&shared, &config, 2).unwrap();
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|t| t.indexed_ranges > 0));
        assert!(results.iter().all(|t| t.clips == t.matching_ranges));
        // Each client ran on its own session against the shard owning the
        // video; the server accounted their reads.
        assert!(server.stats().total_read_ops() > 0);
        let _ = std::fs::remove_dir_all(root);
    }
}
