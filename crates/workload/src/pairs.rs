//! Joint-compression pair-selection strategies compared in Figure 11.
//!
//! The paper compares VSS's histogram-cluster + feature-match candidate
//! search against (i) an oracle that knows the overlapping pairs a priori and
//! (ii) random sampling of pairs. This module provides the oracle and random
//! strategies plus the recall metric used to score all three.

use vss_frame::pattern::Xorshift;

/// A set of ground-truth overlapping pairs (unordered).
#[derive(Debug, Clone, Default)]
pub struct GroundTruthPairs {
    pairs: Vec<(u64, u64)>,
}

impl GroundTruthPairs {
    /// Creates a ground-truth set (pairs are stored unordered).
    pub fn new(pairs: impl IntoIterator<Item = (u64, u64)>) -> Self {
        Self { pairs: pairs.into_iter().map(normalize).collect() }
    }

    /// Number of true pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if there are no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// True if `(a, b)` is a true overlapping pair.
    pub fn contains(&self, a: u64, b: u64) -> bool {
        self.pairs.contains(&normalize((a, b)))
    }

    /// The oracle strategy: returns exactly the true pairs.
    pub fn oracle(&self) -> Vec<(u64, u64)> {
        self.pairs.clone()
    }

    /// Fraction of true pairs present in `selected` (the recall reported in
    /// Figure 11).
    pub fn recall(&self, selected: &[(u64, u64)]) -> f64 {
        if self.pairs.is_empty() {
            return 1.0;
        }
        let hits = self.pairs.iter().filter(|&&(a, b)| {
            selected.iter().any(|&pair| normalize(pair) == (a, b))
        });
        hits.count() as f64 / self.pairs.len() as f64
    }
}

fn normalize(pair: (u64, u64)) -> (u64, u64) {
    (pair.0.min(pair.1), pair.0.max(pair.1))
}

/// The random-sampling strategy: draws `count` distinct unordered pairs from
/// `ids` uniformly at random.
pub fn random_pairs(ids: &[u64], count: usize, seed: u64) -> Vec<(u64, u64)> {
    if ids.len() < 2 {
        return Vec::new();
    }
    let mut rng = Xorshift::new(seed);
    let mut selected = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let max_pairs = ids.len() * (ids.len() - 1) / 2;
    while selected.len() < count.min(max_pairs) {
        let a = ids[rng.next_below(ids.len() as u64) as usize];
        let b = ids[rng.next_below(ids.len() as u64) as usize];
        if a == b {
            continue;
        }
        let pair = normalize((a, b));
        if seen.insert(pair) {
            selected.push(pair);
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_has_perfect_recall() {
        let truth = GroundTruthPairs::new([(1, 2), (3, 4)]);
        assert_eq!(truth.len(), 2);
        assert!(!truth.is_empty());
        assert!(truth.contains(2, 1));
        assert!(!truth.contains(1, 3));
        assert_eq!(truth.recall(&truth.oracle()), 1.0);
    }

    #[test]
    fn recall_counts_partial_matches_regardless_of_order() {
        let truth = GroundTruthPairs::new([(1, 2), (3, 4), (5, 6)]);
        let selected = vec![(2, 1), (9, 10)];
        assert!((truth.recall(&selected) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(truth.recall(&[]), 0.0);
        assert_eq!(GroundTruthPairs::default().recall(&[]), 1.0);
    }

    #[test]
    fn random_pairs_are_distinct_and_bounded() {
        let ids: Vec<u64> = (0..6).collect();
        let pairs = random_pairs(&ids, 10, 3);
        assert_eq!(pairs.len(), 10);
        let unique: std::collections::HashSet<_> = pairs.iter().collect();
        assert_eq!(unique.len(), pairs.len());
        // Requesting more pairs than exist caps at the total number of pairs.
        let all = random_pairs(&ids, 100, 3);
        assert_eq!(all.len(), 15);
        assert!(random_pairs(&[1], 5, 1).is_empty());
        // Deterministic for a fixed seed.
        assert_eq!(random_pairs(&ids, 5, 9), random_pairs(&ids, 5, 9));
    }
}
