//! Random read-workload generation (paper Section 6.1).
//!
//! The long-read, short-read and cache-eviction experiments populate VSS's
//! cache with reads whose temporal range, resolution and codec are drawn at
//! random. This module generates those request streams deterministically
//! from a seed so every experiment is reproducible.

use vss_codec::Codec;
use vss_core::ReadRequest;
use vss_frame::pattern::Xorshift;
use vss_frame::{PixelFormat, Resolution};

/// Parameters of a random read workload over one logical video.
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    /// Logical video name the reads target.
    pub video: String,
    /// Total duration of the video in seconds.
    pub duration: f64,
    /// Minimum read length in seconds.
    pub min_length: f64,
    /// Maximum read length in seconds.
    pub max_length: f64,
    /// Source resolution of the video (used to derive downscaled variants).
    pub source_resolution: Resolution,
    /// Codecs the workload may request.
    pub codecs: Vec<Codec>,
    /// Random seed.
    pub seed: u64,
}

impl QueryWorkload {
    /// A workload matching the paper's cache-population runs: random ranges
    /// over the whole video, requesting a mix of codecs and resolutions.
    pub fn cache_population(video: impl Into<String>, duration: f64, source_resolution: Resolution, seed: u64) -> Self {
        Self {
            video: video.into(),
            duration,
            min_length: (duration / 10.0).max(0.5),
            max_length: (duration / 3.0).max(1.0),
            source_resolution,
            codecs: vec![
                Codec::Hevc,
                Codec::H264,
                Codec::Raw(PixelFormat::Yuv420),
                Codec::Raw(PixelFormat::Rgb8),
            ],
            seed,
        }
    }

    /// A workload of short (one-second) reads, as in the paper's short-read
    /// experiment.
    pub fn short_reads(video: impl Into<String>, duration: f64, source_resolution: Resolution, seed: u64) -> Self {
        Self {
            video: video.into(),
            duration,
            min_length: 1.0,
            max_length: 1.0,
            source_resolution,
            codecs: vec![Codec::Hevc, Codec::H264, Codec::Raw(PixelFormat::Yuv420)],
            seed,
        }
    }

    /// Generates `count` read requests.
    pub fn generate(&self, count: usize) -> Vec<ReadRequest> {
        let mut rng = Xorshift::new(self.seed);
        let mut requests = Vec::with_capacity(count);
        let resolutions = self.candidate_resolutions();
        for _ in 0..count {
            let length = self.min_length + rng.next_f64() * (self.max_length - self.min_length);
            let length = length.min(self.duration);
            let start = rng.next_f64() * (self.duration - length).max(0.0);
            let codec = self.codecs[rng.next_below(self.codecs.len() as u64) as usize];
            let resolution = resolutions[rng.next_below(resolutions.len() as u64) as usize];
            let mut request = ReadRequest::new(&self.video, start, start + length, codec);
            if resolution != self.source_resolution {
                request = request.at_resolution(resolution);
            }
            requests.push(request);
        }
        requests
    }

    /// The source resolution plus halved and quartered variants (kept even).
    fn candidate_resolutions(&self) -> Vec<Resolution> {
        let even = |v: u32| (v & !1).max(16);
        let halve = |r: Resolution, d: u32| Resolution::new(even(r.width / d), even(r.height / d));
        vec![
            self.source_resolution,
            halve(self.source_resolution, 2),
            halve(self.source_resolution, 4),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_in_range() {
        let workload = QueryWorkload::cache_population("v", 60.0, Resolution::new(320, 180), 5);
        let a = workload.generate(50);
        let b = workload.generate(50);
        assert_eq!(a.len(), 50);
        assert_eq!(a, b, "same seed produces the same workload");
        for request in &a {
            assert!(request.temporal.start >= 0.0);
            assert!(request.temporal.end <= 60.0 + 1e-9);
            assert!(request.temporal.duration() >= 0.5);
            assert!(workload.codecs.contains(&request.physical.codec));
            if let Some(r) = request.spatial.resolution {
                assert_eq!(r.width % 2, 0);
                assert_eq!(r.height % 2, 0);
            }
        }
    }

    #[test]
    fn short_read_workload_produces_one_second_reads() {
        let workload = QueryWorkload::short_reads("v", 30.0, Resolution::new(320, 180), 11);
        for request in workload.generate(20) {
            assert!((request.temporal.duration() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = QueryWorkload::cache_population("v", 60.0, Resolution::new(320, 180), 1).generate(10);
        let b = QueryWorkload::cache_population("v", 60.0, Resolution::new(320, 180), 2).generate(10);
        assert_ne!(a, b);
    }
}
