//! A lightweight vehicle detector and colour matcher.
//!
//! The paper's end-to-end application (Section 6.4) uses YOLOv4 to find
//! vehicles and a colour histogram of each bounding box to search for a
//! specific colour. The substitute here is a connected-component blob
//! detector over "non-road" pixels: it finds the same synthetic vehicles the
//! scene renderer draws, costs time proportional to the pixel count (so the
//! indexing phase remains decode-plus-per-pixel-work, as in the paper), and
//! supports the same colour-distance search predicate.

use vss_frame::Frame;

/// A detected object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Left edge of the bounding box.
    pub x: u32,
    /// Top edge of the bounding box.
    pub y: u32,
    /// Width of the bounding box.
    pub width: u32,
    /// Height of the bounding box.
    pub height: u32,
    /// Mean colour of the pixels inside the box.
    pub mean_color: (u8, u8, u8),
}

impl Detection {
    /// Euclidean distance between the detection's mean colour and a target
    /// colour (the paper's search predicate uses distance ≤ 50).
    pub fn color_distance(&self, target: (u8, u8, u8)) -> f64 {
        let d = |a: u8, b: u8| {
            let diff = f64::from(a) - f64::from(b);
            diff * diff
        };
        (d(self.mean_color.0, target.0) + d(self.mean_color.1, target.1) + d(self.mean_color.2, target.2))
            .sqrt()
    }
}

/// Detector parameters.
#[derive(Debug, Clone, Copy)]
pub struct DetectorParams {
    /// Minimum number of pixels for a blob to count as a vehicle.
    pub min_area: u32,
    /// Colour distance from the road/sky background above which a pixel is
    /// considered foreground.
    pub foreground_threshold: f64,
}

impl Default for DetectorParams {
    fn default() -> Self {
        Self { min_area: 24, foreground_threshold: 55.0 }
    }
}

/// Detects vehicle-like blobs in a frame.
///
/// Pixels are classified as foreground when they are far (in RGB distance)
/// from both the road grey and the sky blue; 4-connected foreground
/// components larger than `min_area` become detections.
pub fn detect_vehicles(frame: &Frame, params: &DetectorParams) -> Vec<Detection> {
    let width = frame.width() as usize;
    let height = frame.height() as usize;
    let road = (72.0, 72.0, 78.0);
    let marking = (220.0, 220.0, 200.0);
    let mut foreground = vec![false; width * height];
    let sky_limit = height / 3;
    for y in sky_limit..height {
        for x in 0..width {
            let (r, g, b) = frame.rgb_at(x as u32, y as u32);
            let dist = |c: (f64, f64, f64)| {
                ((f64::from(r) - c.0).powi(2) + (f64::from(g) - c.1).powi(2) + (f64::from(b) - c.2).powi(2))
                    .sqrt()
            };
            foreground[y * width + x] =
                dist(road) > params.foreground_threshold && dist(marking) > params.foreground_threshold;
        }
    }
    // Connected components by flood fill.
    let mut visited = vec![false; width * height];
    let mut detections = Vec::new();
    let mut stack = Vec::new();
    for start in 0..foreground.len() {
        if !foreground[start] || visited[start] {
            continue;
        }
        stack.push(start);
        visited[start] = true;
        let (mut min_x, mut max_x) = (usize::MAX, 0usize);
        let (mut min_y, mut max_y) = (usize::MAX, 0usize);
        let mut area = 0u32;
        let (mut sum_r, mut sum_g, mut sum_b) = (0u64, 0u64, 0u64);
        while let Some(index) = stack.pop() {
            let x = index % width;
            let y = index / width;
            area += 1;
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
            let (r, g, b) = frame.rgb_at(x as u32, y as u32);
            sum_r += u64::from(r);
            sum_g += u64::from(g);
            sum_b += u64::from(b);
            let neighbours = [
                (x.wrapping_sub(1), y),
                (x + 1, y),
                (x, y.wrapping_sub(1)),
                (x, y + 1),
            ];
            for (nx, ny) in neighbours {
                if nx < width && ny < height {
                    let ni = ny * width + nx;
                    if foreground[ni] && !visited[ni] {
                        visited[ni] = true;
                        stack.push(ni);
                    }
                }
            }
        }
        if area >= params.min_area {
            detections.push(Detection {
                x: min_x as u32,
                y: min_y as u32,
                width: (max_x - min_x + 1) as u32,
                height: (max_y - min_y + 1) as u32,
                mean_color: (
                    (sum_r / u64::from(area)) as u8,
                    (sum_g / u64::from(area)) as u8,
                    (sum_b / u64::from(area)) as u8,
                ),
            });
        }
    }
    detections
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{SceneConfig, SceneRenderer};
    use vss_frame::{pattern, PixelFormat};

    #[test]
    fn detects_rendered_vehicles() {
        let config = SceneConfig { noise_amplitude: 0, format: PixelFormat::Rgb8, ..Default::default() };
        let renderer = SceneRenderer::new(config);
        let frame = renderer.render_view(0, 0);
        let truth = renderer.ground_truth(0, 0);
        let detections = detect_vehicles(&frame, &DetectorParams::default());
        assert!(!detections.is_empty());
        // Most ground-truth vehicles overlap some detection.
        let mut matched = 0;
        for t in &truth {
            if t.width < 6 {
                continue;
            }
            let hit = detections.iter().any(|d| {
                let dx = (i64::from(d.x) + i64::from(d.width) / 2) - (i64::from(t.x) + i64::from(t.width) / 2);
                let dy = (i64::from(d.y) + i64::from(d.height) / 2) - (i64::from(t.y) + i64::from(t.height) / 2);
                dx.abs() < i64::from(t.width) && dy.abs() < i64::from(t.height)
            });
            if hit {
                matched += 1;
            }
        }
        assert!(matched * 2 >= truth.iter().filter(|t| t.width >= 6).count(), "at least half the vehicles detected");
    }

    #[test]
    fn empty_road_has_no_detections() {
        let mut frame = vss_frame::Frame::black(160, 90, PixelFormat::Rgb8).unwrap();
        pattern::fill_rect(&mut frame, 0, 0, 160, 30, (100, 160, 230));
        pattern::fill_rect(&mut frame, 0, 30, 160, 60, (72, 72, 78));
        assert!(detect_vehicles(&frame, &DetectorParams::default()).is_empty());
    }

    #[test]
    fn color_distance_identifies_the_right_vehicle() {
        let d = Detection { x: 0, y: 0, width: 10, height: 10, mean_color: (200, 45, 40) };
        assert!(d.color_distance((200, 40, 40)) < 10.0);
        assert!(d.color_distance((40, 160, 220)) > 100.0);
    }
}
