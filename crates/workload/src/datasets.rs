//! Dataset presets mirroring the paper's Table 1.
//!
//! Each preset records the paper's resolution, frame count and overlap; the
//! generator renders the corresponding synthetic scene. Because the simulated
//! codecs run on CPU, presets are generated at a configurable *scale*: the
//! resolution is divided by the scale factor (rounded to even) and the frame
//! count capped, so experiments complete in minutes while preserving relative
//! behaviour. Scale 1 reproduces the paper's nominal shapes.

use crate::scene::{CameraMotion, SceneConfig, SceneRenderer};
use vss_frame::{FrameSequence, PixelFormat, Resolution};

/// One dataset preset (a row of the paper's Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Nominal resolution from the paper.
    pub resolution: Resolution,
    /// Nominal frame count from the paper.
    pub frames: usize,
    /// Number of overlapping camera streams (1 or 2).
    pub cameras: usize,
    /// Horizontal overlap fraction between the two cameras.
    pub overlap: f64,
    /// Camera motion (RobotCar/Waymo are vehicle-mounted → panning).
    pub motion: CameraMotion,
    /// Nominal frame rate.
    pub frame_rate: f64,
}

impl DatasetSpec {
    /// All presets from Table 1.
    pub fn all() -> Vec<DatasetSpec> {
        vec![
            DatasetSpec {
                name: "robotcar",
                resolution: Resolution::new(1280, 960),
                frames: 7494,
                cameras: 2,
                overlap: 0.8,
                motion: CameraMotion::Panning { pixels_per_frame: 0.5 },
                frame_rate: 30.0,
            },
            DatasetSpec {
                name: "waymo",
                resolution: Resolution::new(1920, 1280),
                frames: 398,
                cameras: 2,
                overlap: 0.15,
                motion: CameraMotion::Panning { pixels_per_frame: 0.5 },
                frame_rate: 20.0,
            },
            DatasetSpec {
                name: "visualroad-1k-30",
                resolution: Resolution::R1K,
                frames: 108_000,
                cameras: 2,
                overlap: 0.30,
                motion: CameraMotion::Static,
                frame_rate: 30.0,
            },
            DatasetSpec {
                name: "visualroad-1k-50",
                resolution: Resolution::R1K,
                frames: 108_000,
                cameras: 2,
                overlap: 0.50,
                motion: CameraMotion::Static,
                frame_rate: 30.0,
            },
            DatasetSpec {
                name: "visualroad-1k-75",
                resolution: Resolution::R1K,
                frames: 108_000,
                cameras: 2,
                overlap: 0.75,
                motion: CameraMotion::Static,
                frame_rate: 30.0,
            },
            DatasetSpec {
                name: "visualroad-2k-30",
                resolution: Resolution::R2K,
                frames: 108_000,
                cameras: 2,
                overlap: 0.30,
                motion: CameraMotion::Static,
                frame_rate: 30.0,
            },
            DatasetSpec {
                name: "visualroad-4k-30",
                resolution: Resolution::R4K,
                frames: 108_000,
                cameras: 2,
                overlap: 0.30,
                motion: CameraMotion::Static,
                frame_rate: 30.0,
            },
        ]
    }

    /// Looks up a preset by name.
    pub fn by_name(name: &str) -> Option<DatasetSpec> {
        Self::all().into_iter().find(|d| d.name == name)
    }

    /// The resolution this preset uses when generated at `scale` (dimensions
    /// divided by `scale`, rounded down to even, never below 32×32).
    pub fn scaled_resolution(&self, scale: u32) -> Resolution {
        let scale = scale.max(1);
        let even = |v: u32| ((v / scale).max(32)) & !1;
        Resolution::new(even(self.resolution.width), even(self.resolution.height))
    }

    /// The frame count used when generated at `scale`, capped at `max_frames`.
    pub fn scaled_frames(&self, max_frames: usize) -> usize {
        self.frames.min(max_frames.max(1))
    }

    /// Generates the dataset at the given scale: resolution divided by
    /// `scale` and at most `max_frames` frames. Returns one sequence per
    /// camera.
    pub fn generate(&self, scale: u32, max_frames: usize) -> GeneratedDataset {
        let resolution = self.scaled_resolution(scale);
        let frames = self.scaled_frames(max_frames);
        let renderer = SceneRenderer::new(SceneConfig {
            resolution,
            format: PixelFormat::Yuv420,
            frame_rate: self.frame_rate,
            overlap: self.overlap,
            vehicles: 8,
            motion: self.motion,
            noise_amplitude: 2,
            seed: 0xC0FFEE ^ self.name.len() as u64,
        });
        let cameras = (0..self.cameras.clamp(1, 2))
            .map(|camera| renderer.render_sequence(camera, frames))
            .collect();
        GeneratedDataset { spec: self.clone(), renderer, cameras }
    }
}

/// A generated dataset: the spec, the renderer (for ground truth) and one
/// frame sequence per camera.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// The preset this dataset was generated from.
    pub spec: DatasetSpec,
    /// The renderer, exposing ground-truth vehicle boxes.
    pub renderer: SceneRenderer,
    /// One sequence per camera (index 0 = left).
    pub cameras: Vec<FrameSequence>,
}

impl GeneratedDataset {
    /// The primary (left) camera's sequence.
    pub fn primary(&self) -> &FrameSequence {
        &self.cameras[0]
    }

    /// The secondary (right) camera's sequence, if the preset has two cameras.
    pub fn secondary(&self) -> Option<&FrameSequence> {
        self.cameras.get(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_presets_are_complete() {
        let all = DatasetSpec::all();
        assert_eq!(all.len(), 7);
        let names: Vec<_> = all.iter().map(|d| d.name).collect();
        assert!(names.contains(&"robotcar"));
        assert!(names.contains(&"waymo"));
        assert!(names.contains(&"visualroad-4k-30"));
        assert_eq!(DatasetSpec::by_name("visualroad-1k-50").unwrap().overlap, 0.5);
        assert!(DatasetSpec::by_name("nope").is_none());
    }

    #[test]
    fn scaling_preserves_even_dimensions_and_caps_frames() {
        let spec = DatasetSpec::by_name("visualroad-4k-30").unwrap();
        let r = spec.scaled_resolution(8);
        assert_eq!(r, Resolution::new(480, 270 & !1));
        assert_eq!(r.width % 2, 0);
        assert_eq!(r.height % 2, 0);
        assert_eq!(spec.scaled_frames(120), 120);
        let tiny = spec.scaled_resolution(1000);
        assert!(tiny.width >= 32 && tiny.height >= 32);
    }

    #[test]
    fn generation_produces_overlapping_camera_pairs() {
        let spec = DatasetSpec::by_name("visualroad-1k-50").unwrap();
        let dataset = spec.generate(8, 6);
        assert_eq!(dataset.cameras.len(), 2);
        assert_eq!(dataset.primary().len(), 6);
        assert_eq!(dataset.secondary().unwrap().len(), 6);
        assert_eq!(dataset.primary().resolution(), Some(spec.scaled_resolution(8)));
    }
}
