//! # vss-workload
//!
//! Synthetic datasets, query workloads and application drivers used to
//! evaluate the VSS reproduction.
//!
//! * [`scene`] — a deterministic procedural traffic-scene renderer producing
//!   temporally coherent, overlapping camera views with ground-truth vehicle
//!   positions (the stand-in for RobotCar, Waymo and Visual Road video).
//! * [`datasets`] — presets mirroring the paper's Table 1, generated at a
//!   configurable scale.
//! * [`queries`] — deterministic random read workloads used to populate the
//!   cache in the read-performance and eviction experiments.
//! * [`detector`] — a lightweight vehicle detector and colour matcher (the
//!   stand-in for YOLOv4 in the end-to-end application).
//! * [`app`] — the three-phase traffic-monitoring application driver
//!   (indexing / search / streaming) with multi-client support.
//! * [`pairs`] — oracle and random joint-compression pair-selection
//!   strategies compared against VSS's selector in Figure 11.

#![warn(missing_docs)]

pub mod app;
pub mod datasets;
pub mod detector;
pub mod pairs;
pub mod queries;
pub mod scene;

pub use app::{
    net_store, run_client, run_client_with, run_clients, server_store, shared_store, AppConfig,
    PhaseTimings,
    SharedStore, StoreFactory,
};
pub use datasets::{DatasetSpec, GeneratedDataset};
pub use detector::{detect_vehicles, Detection, DetectorParams};
pub use pairs::{random_pairs, GroundTruthPairs};
pub use queries::QueryWorkload;
pub use scene::{CameraMotion, SceneConfig, SceneRenderer, VehicleBox};
