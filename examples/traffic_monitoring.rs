//! The end-to-end traffic-monitoring application from Section 2 of the paper:
//! index a video for vehicles, search for a vehicle of a specific colour, and
//! stream the matching clips — once against VSS and once against the local
//! file system, to show where the storage manager helps.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example traffic_monitoring
//! ```

use vss::baseline::LocalFs;
use vss::prelude::*;
use vss::workload::{run_client, shared_store, AppConfig, SceneConfig, SceneRenderer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let resolution = Resolution::new(192, 108);
    let renderer = SceneRenderer::new(SceneConfig {
        resolution,
        format: PixelFormat::Yuv420,
        vehicles: 8,
        ..Default::default()
    });
    let video = renderer.render_sequence(0, 120);
    let config = AppConfig {
        video: "intersection".into(),
        duration: video.duration_seconds(),
        source_resolution: resolution,
        source_codec: Codec::H264,
        index_resolution: Resolution::new(96, 54),
        detect_every: 10,
        // Search for the missing red vehicle.
        target_color: (200, 40, 40),
        color_threshold: 60.0,
        clip_length: 1.0,
    };

    // --- VSS ----------------------------------------------------------------
    // The Vss handle and the baselines implement the same `VideoStorage`
    // trait, so the driver swaps stores without adapters.
    let vss_root = std::env::temp_dir().join("vss-example-traffic-vss");
    let _ = std::fs::remove_dir_all(&vss_root);
    let mut store = Vss::open(VssConfig::new(&vss_root))?;
    VideoStorage::write(&mut store, &WriteRequest::new(&config.video, Codec::H264), &video)?;
    let shared = shared_store(Box::new(store));
    let vss_timings = run_client(&shared, &config)?;

    // --- Local file system ("OpenCV" variant) --------------------------------
    let fs_root = std::env::temp_dir().join("vss-example-traffic-fs");
    let _ = std::fs::remove_dir_all(&fs_root);
    let mut store = LocalFs::new(&fs_root)?;
    store.write(&WriteRequest::new(&config.video, Codec::H264), &video)?;
    let shared = shared_store(Box::new(store));
    let fs_timings = run_client(&shared, &config)?;

    println!("phase        vss (s)    local-fs (s)");
    println!(
        "indexing   {:>9.2}  {:>13.2}",
        vss_timings.indexing.as_secs_f64(),
        fs_timings.indexing.as_secs_f64()
    );
    println!(
        "search     {:>9.2}  {:>13.2}",
        vss_timings.search.as_secs_f64(),
        fs_timings.search.as_secs_f64()
    );
    println!(
        "streaming  {:>9.2}  {:>13.2}",
        vss_timings.streaming.as_secs_f64(),
        fs_timings.streaming.as_secs_f64()
    );
    println!(
        "\nVSS found {} ranges with vehicles, {} matching the alert colour, and produced {} clips.",
        vss_timings.indexed_ranges, vss_timings.matching_ranges, vss_timings.clips
    );

    let _ = std::fs::remove_dir_all(&vss_root);
    let _ = std::fs::remove_dir_all(&fs_root);
    Ok(())
}
