//! Joint compression of two overlapping cameras (Section 5.1 of the paper):
//! estimate the homography between the views, store the overlap once, and
//! recover both views, comparing storage size and recovered quality for the
//! two merge functions.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example multi_camera_dedup
//! ```

use vss::codec::{encode_to_gops, EncoderConfig};
use vss::core::{
    joint_compress_sequences, recover_sequences, JointConfig, JointOutcome, JointTimings,
    MergeFunction,
};
use vss::frame::quality;
use vss::prelude::*;
use vss::workload::{SceneConfig, SceneRenderer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two cameras watching the same intersection with 50% horizontal overlap.
    let renderer = SceneRenderer::new(SceneConfig {
        resolution: Resolution::new(192, 108),
        format: PixelFormat::Rgb8,
        overlap: 0.5,
        vehicles: 8,
        ..Default::default()
    });
    let left = renderer.render_sequence(0, 6);
    let right = renderer.render_sequence(1, 6);

    let encoder = EncoderConfig::default();
    let separate: usize = [&left, &right]
        .iter()
        .map(|seq| {
            encode_to_gops(seq, Codec::H264, &encoder)
                .unwrap()
                .iter()
                .map(|gop| gop.byte_len())
                .sum::<usize>()
        })
        .sum();
    println!("separately compressed: {} KiB", separate / 1024);

    let config = JointConfig {
        min_correspondences: 6,
        quality_threshold: vss::frame::PsnrDb(26.0),
        recovery_threshold: vss::frame::PsnrDb(22.0),
        ..JointConfig::default()
    };
    for merge in [MergeFunction::Unprojected, MergeFunction::Mean] {
        let mut timings = JointTimings::default();
        let outcome =
            joint_compress_sequences(&left, &right, merge, &config, &encoder, None, &mut timings)?;
        match outcome {
            JointOutcome::Compressed(artifact) => {
                let (recovered_left, recovered_right) = recover_sequences(&artifact)?;
                let left_psnr = quality::sequence_psnr(left.frames(), recovered_left.frames())?;
                let right_psnr = quality::sequence_psnr(right.frames(), recovered_right.frames())?;
                println!(
                    "{merge:?} merge: {} KiB ({:.0}% smaller), recovered left {left_psnr}, right {right_psnr}",
                    artifact.byte_len() / 1024,
                    (1.0 - artifact.byte_len() as f64 / separate as f64) * 100.0,
                );
                println!(
                    "  overhead: features {:.2}s, homography {:.2}s, compression {:.2}s",
                    timings.feature_detection, timings.homography_estimation, timings.compression
                );
            }
            JointOutcome::Duplicate => println!("{merge:?}: views are exact duplicates"),
            JointOutcome::Aborted(reason) => println!("{merge:?}: aborted ({reason})"),
        }
    }
    Ok(())
}
