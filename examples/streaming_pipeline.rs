//! Streaming ingest and playback with bounded memory: frames flow into a
//! [`WriteSink`] one at a time (each GOP persists as it fills), then a
//! [`ReadStream`] transcodes the clip GOP-at-a-time for a device that only
//! plays HEVC — the whole pipeline never holds more than a few GOPs of
//! frames, regardless of clip length.
//!
//! `VssConfig::readahead` turns both hot paths into overlapped pipelines:
//! the sink encodes each GOP on a worker while the previous GOP's file
//! write persists, and the stream decodes up to `readahead` GOPs ahead of
//! the consumer on a bounded worker pool. Output is byte-identical at every
//! depth — the knob trades a bounded amount of memory (~`2 + readahead`
//! GOPs peak) for wall time.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example streaming_pipeline
//! ```

use vss::prelude::*;
use vss::workload::{SceneConfig, SceneRenderer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join("vss-example-streaming");
    let _ = std::fs::remove_dir_all(&root);
    // Readahead 2: decode (and encode) up to two GOPs ahead of the consumer.
    let vss = Vss::open(VssConfig::new(&root).with_readahead(2))?;

    // --- Ingest: a camera delivering one frame at a time --------------------
    let renderer = SceneRenderer::new(SceneConfig {
        resolution: Resolution::new(160, 96),
        format: PixelFormat::Yuv420,
        ..Default::default()
    });
    let live = renderer.render_sequence(0, 150); // 5 seconds at 30 fps
    let mut sink = vss.write_sink(&WriteRequest::new("camera", Codec::H264), 30.0)?;
    for frame in live.frames() {
        sink.push_frame(frame.clone())?;
        // The sink never buffers a full GOP: each one is handed to the
        // encode worker the moment it fills (at most `readahead` in flight)
        // and persisted in order, holding the engine lock per GOP.
        assert!(sink.buffered_frames() < 30);
        assert!(sink.in_flight_gops() <= 2);
    }
    let report = sink.finish()?;
    println!(
        "ingested {} frames as {} GOPs ({} KiB) without ever buffering the clip",
        report.frames_written,
        report.gops_written,
        report.bytes_written / 1024
    );

    // --- Playback: transcode to HEVC, GOP-at-a-time --------------------------
    let mut stream =
        vss.read_stream(&ReadRequest::new("camera", 0.0, 5.0, Codec::Hevc).uncacheable())?;
    let mut shipped = 0usize;
    for chunk in &mut stream {
        let chunk = chunk?;
        // Each chunk carries one encoded output GOP plus its decoded frames;
        // a real player would ship `chunk.encoded_gop` and drop the chunk.
        shipped += chunk.encoded_gop.map(|g| g.byte_len()).unwrap_or(0);
    }
    println!(
        "transcoded 5s to HEVC in GOP chunks: {} KiB shipped, peak buffer {} frames \
         (a materialized read would have held all {} frames)",
        shipped / 1024,
        stream.peak_buffered_frames(),
        report.frames_written
    );

    let _ = std::fs::remove_dir_all(&root);
    Ok(())
}
