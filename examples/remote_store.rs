//! VSS as a multi-process service: a loopback `vss-net` deployment.
//!
//! Starts a sharded `VssServer` with admission limits, puts the `vss-net`
//! TCP front-end before it, and drives it through `RemoteStore` — the same
//! `VideoStorage` contract every in-process store speaks:
//!
//! * streaming ingest over the wire (the server persists GOP-at-a-time,
//!   overlapping encode with file writes via its readahead),
//! * a GOP-at-a-time streaming read whose chunks arrive over TCP through a
//!   bounded client-side buffer (O(GOP) memory end to end),
//! * admission control shedding a client burst with typed `Overloaded`
//!   errors, and
//! * graceful shutdown draining every session.
//!
//! Run with `cargo run --release --example remote_store`.

use vss::net::{NetServer, RemoteStore};
use vss::prelude::*;
use vss::server::{ServerConfig, VssServer};
use vss::workload::{SceneConfig, SceneRenderer};
use vss_core::VssError;

fn main() {
    let root = std::env::temp_dir().join(format!("vss-example-remote-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // A sharded server with readahead-enabled streaming and room for three
    // concurrent sessions; the TCP front-end admits every connection through
    // this gate.
    let server = VssServer::open_configured(
        VssConfig::new(&root).with_readahead(2),
        4,
        ServerConfig { max_concurrent_sessions: 3, ..ServerConfig::default() },
    )
    .expect("open server");
    let net = NetServer::bind(server.clone(), "127.0.0.1:0").expect("bind loopback");
    println!("serving VSS on {}", net.local_addr());

    // --- streaming ingest over the wire ------------------------------------
    let clip = SceneRenderer::new(SceneConfig {
        resolution: Resolution::new(128, 72),
        format: PixelFormat::Yuv420,
        ..Default::default()
    })
    .render_sequence(0, 120);
    let mut store = RemoteStore::connect(net.local_addr()).expect("dial");
    let mut sink = store
        .write_sink(&WriteRequest::new("traffic", Codec::H264), clip.frame_rate())
        .expect("open remote sink");
    for frame in clip.frames() {
        sink.push_frame(frame.clone()).expect("push frame");
    }
    let report = sink.finish().expect("finish ingest");
    println!(
        "ingested {} frames / {} GOPs over TCP ({} bytes on disk)",
        report.frames_written, report.gops_written, report.bytes_written
    );

    // --- GOP-at-a-time read over the wire ----------------------------------
    let stream = store
        .read_stream(&ReadRequest::new("traffic", 0.0, 3.0, Codec::Hevc))
        .expect("open remote stream");
    let mut chunks = 0usize;
    let mut frames = 0usize;
    let mut wire_bytes = 0u64;
    for chunk in stream {
        let chunk = chunk.expect("stream chunk");
        chunks += 1;
        frames += chunk.frames.len();
        wire_bytes += chunk.stats_delta.bytes_read;
    }
    println!("streamed {frames} frames in {chunks} GOP chunks ({wire_bytes} bytes read)");

    // --- admission control --------------------------------------------------
    // The control connection above holds one slot; a burst of five more
    // clients sees the remaining two admitted and the rest shed.
    let mut held = Vec::new();
    let mut shed = 0usize;
    for _ in 0..5 {
        match RemoteStore::connect(net.local_addr()) {
            Ok(client) => held.push(client),
            Err(VssError::Overloaded(reason)) => {
                shed += 1;
                println!("shed a client: {reason}");
            }
            Err(other) => panic!("unexpected dial error: {other:?}"),
        }
    }
    println!(
        "admission limit 3: {} admitted alongside the ingest client, {shed} shed",
        held.len()
    );
    drop(held);

    // --- graceful shutdown ---------------------------------------------------
    drop(store);
    net.shutdown();
    let drained = server.shutdown(std::time::Duration::from_secs(10));
    println!("shutdown complete (drained: {drained})");
    let _ = std::fs::remove_dir_all(root);
}
