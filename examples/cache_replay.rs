//! Cache behaviour under a constrained storage budget: replay a random read
//! workload with the LRU_VSS eviction policy and with plain LRU, then compare
//! how quickly a final full-video read completes (the Section 4 / Figure 16
//! scenario).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example cache_replay
//! ```

use std::time::Instant;
use vss::core::{EvictionPolicy, StorageBudget};
use vss::prelude::*;
use vss::workload::{QueryWorkload, SceneConfig, SceneRenderer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let resolution = Resolution::new(160, 96);
    let renderer = SceneRenderer::new(SceneConfig {
        resolution,
        format: PixelFormat::Yuv420,
        ..Default::default()
    });
    let video = renderer.render_sequence(0, 90);
    let duration = video.duration_seconds();

    for (label, policy) in
        [("LRU_VSS", EvictionPolicy::default()), ("plain LRU", EvictionPolicy::Lru)]
    {
        let root = std::env::temp_dir().join(format!("vss-example-cache-{label}"));
        let _ = std::fs::remove_dir_all(&root);
        let vss = Vss::open(VssConfig::new(&root))?;
        // A tight budget (3x the original) forces evictions during the replay.
        vss.create("traffic", Some(StorageBudget::MultipleOfOriginal(3.0)))?;
        vss.write(&WriteRequest::new("traffic", Codec::H264), &video)?;
        vss.with_engine(|engine| engine.config.eviction_policy = policy);

        let workload = QueryWorkload::cache_population("traffic", duration, resolution, 99);
        let mut admitted = 0usize;
        for request in workload.generate(25) {
            if let Ok(result) = vss.read(&request) {
                admitted += usize::from(result.stats.cache_admitted);
            }
        }
        let fragments = vss.with_engine(|engine| engine.materialized_fragment_count("traffic"))?;
        let started = Instant::now();
        let final_read =
            vss.read(&ReadRequest::new("traffic", 0.0, duration, Codec::Hevc).uncacheable())?;
        println!(
            "{label:>9}: {admitted} reads admitted, {fragments} cached GOP pages survive, \
             final full read {:.2}s using {} fragment(s)",
            started.elapsed().as_secs_f64(),
            final_read.stats.plan.fragments_used().len()
        );
        let _ = std::fs::remove_dir_all(&root);
    }
    Ok(())
}
