//! Quickstart: create a store, write a video, read it back in several
//! formats, and inspect what VSS materialized along the way.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vss::prelude::*;
use vss::workload::{SceneConfig, SceneRenderer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Open a VSS store rooted at a scratch directory.
    let root = std::env::temp_dir().join("vss-example-quickstart");
    let _ = std::fs::remove_dir_all(&root);
    let vss = Vss::open(VssConfig::new(&root))?;

    // 2. Render one minute-equivalent of synthetic traffic video (scaled down
    //    so the example runs in seconds) and write it as H.264.
    let renderer = SceneRenderer::new(SceneConfig {
        resolution: Resolution::new(160, 96),
        format: PixelFormat::Yuv420,
        ..Default::default()
    });
    let video = renderer.render_sequence(0, 90);
    println!("writing {} frames ({:.1} s of video) ...", video.len(), video.duration_seconds());
    let report = vss.write(&WriteRequest::new("traffic", Codec::H264), &video)?;
    println!(
        "  stored {} GOPs, {} KiB (budget: {} KiB)",
        report.gops_written,
        report.bytes_written / 1024,
        vss.budget_bytes("traffic")?.unwrap_or(0) / 1024
    );

    // 3. Read a low-resolution raw region — the kind of read a detection
    //    pipeline issues. VSS transparently decodes, rescales and caches it.
    let low_res = vss.read(
        &ReadRequest::new("traffic", 0.0, 2.0, Codec::Raw(PixelFormat::Rgb8))
            .at_resolution(Resolution::new(80, 48)),
    )?;
    println!(
        "read {} low-resolution frames (cache admitted: {})",
        low_res.frames.len(),
        low_res.stats.cache_admitted
    );

    // 4. Read the same region as HEVC for a device that only supports HEVC.
    let hevc = vss.read(&ReadRequest::new("traffic", 0.0, 2.0, Codec::Hevc))?;
    println!(
        "read {} frames transcoded to HEVC in {} GOPs; plan cost {:.0}",
        hevc.frames.len(),
        hevc.encoded.as_ref().map(Vec::len).unwrap_or(0),
        hevc.stats.plan.total_cost
    );

    // 5. A second HEVC read of a sub-range is served from the cached copy
    //    rather than re-transcoding the original.
    let cached = vss.read(&ReadRequest::new("traffic", 0.5, 1.5, Codec::Hevc))?;
    println!(
        "second HEVC read planned {} segment(s) using fragments {:?} (cost {:.0})",
        cached.stats.plan.segments.len(),
        cached.stats.plan.fragments_used(),
        cached.stats.plan.total_cost
    );

    // 6. Stream a read GOP-at-a-time: the chunks concatenate to exactly what
    //    step 4 materialized, but the consumer only ever holds one GOP.
    let mut chunks = 0usize;
    let mut streamed_frames = 0usize;
    let stream =
        vss.read_stream(&ReadRequest::new("traffic", 0.0, 2.0, Codec::Hevc).uncacheable())?;
    for chunk in stream {
        let chunk = chunk?;
        chunks += 1;
        streamed_frames += chunk.frames.len();
    }
    println!("streamed the same read as {chunks} GOP chunk(s), {streamed_frames} frames total");

    // 7. Inspect storage accounting.
    println!(
        "store now holds {} KiB across {} logical video(s)",
        vss.bytes_used("traffic")? / 1024,
        vss.video_names().len()
    );

    let _ = std::fs::remove_dir_all(&root);
    Ok(())
}
