//! Subprocess crash-recovery harness (PR 6 acceptance test).
//!
//! The parent re-execs this binary as a **child ingest process** that pushes
//! deterministic frames through a [`WriteSink`], recording an ack file
//! (outside the store root — recovery sweeps unknown files *inside* it) after
//! every fully persisted GOP. The parent then `kill -9`s the child at a
//! randomized point mid-ingest, reopens the store, and verifies the
//! durability contract:
//!
//! * `Engine::open` always succeeds — recovery never needs manual repair;
//! * every **acked** GOP survives byte-identically (its `.gop` file equals
//!   the one a clean reference run produces, and reads return the same
//!   frames);
//! * no orphan `.tmp` or unreferenced files remain after recovery, and a
//!   second open finds nothing left to repair;
//! * a fault-injected child (`VSS_FAULT_INJECT` rate mode) dies with a
//!   **typed error exit, never a panic**, and the store it leaves behind
//!   recovers just the same.
//!
//! `harness = false`: this file is its own `main`, so the child branch can
//! run the ingest loop without dragging the libtest harness along.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;
use vss_catalog::durable;
use vss_codec::Codec;
use vss_core::{Engine, ReadRequest, VideoStorage, VssConfig, WriteRequest};
use vss_frame::{pattern, Frame, PixelFormat};

const CHILD_ENV: &str = "VSS_CRASH_RECOVERY_CHILD";
const ROOT_ENV: &str = "VSS_CRASH_RECOVERY_ROOT";
const ACK_ENV: &str = "VSS_CRASH_RECOVERY_ACK";

const GOP: usize = 5;
const FRAME_RATE: f64 = 30.0;
/// Frames the child tries to ingest: far more than any kill window allows,
/// so the crash always lands mid-ingest on realistic hardware, while a
/// reference run of the same length stays cheap.
const TOTAL_FRAMES: usize = 2000;
const KILL_ITERATIONS: u64 = 6;
const FAULT_ITERATIONS: u64 = 2;

fn config(root: &Path) -> VssConfig {
    // Deferred compression is disabled so a GOP file's bytes are fixed at
    // append time (never rewritten later) — that is what makes the acked
    // prefix of a crashed store byte-comparable against a clean run.
    VssConfig::new(root).with_gop_size(GOP).without_caching().without_deferred_compression()
}

fn frame(i: usize) -> Frame {
    pattern::gradient(64, 48, PixelFormat::Yuv420, i as u64)
}

/// The re-execed child: open the store, ingest deterministic frames through
/// a `WriteSink`, and ack every persisted GOP by atomically rewriting the
/// ack file. Exit codes: 0 = ingested everything, 2 = unexpected setup
/// failure, 3 = typed `VssError` surfaced mid-ingest (the fault-injection
/// pass asserts this is how injected faults die — never a panic).
fn child_main() -> ! {
    let root = PathBuf::from(std::env::var_os(ROOT_ENV).expect("child needs store root"));
    let ack = PathBuf::from(std::env::var_os(ACK_ENV).expect("child needs ack path"));
    let mut engine = match Engine::open(config(&root)) {
        Ok(engine) => engine,
        Err(error) => {
            eprintln!("child: open failed with typed error: {error:?}");
            std::process::exit(3);
        }
    };
    let mut sink = match engine.write_sink(&WriteRequest::new("cam", Codec::H264), FRAME_RATE) {
        Ok(sink) => sink,
        Err(error) => {
            eprintln!("child: write_sink failed with typed error: {error:?}");
            std::process::exit(3);
        }
    };
    for i in 0..TOTAL_FRAMES {
        if let Err(error) = sink.push_frame(frame(i)) {
            eprintln!("child: push failed with typed error: {error:?}");
            std::process::exit(3);
        }
        if (i + 1) % GOP == 0 {
            // The push above persisted GOP (i+1)/GOP synchronously, so this
            // ack is only ever written for durable data.
            let acked = ((i + 1) / GOP) as u64;
            if let Err(error) = durable::write_atomic(&ack, acked.to_string().as_bytes()) {
                eprintln!("child: ack write failed: {error:?}");
                std::process::exit(2);
            }
        }
    }
    match sink.finish() {
        Ok(_) => std::process::exit(0),
        Err(error) => {
            eprintln!("child: finish failed with typed error: {error:?}");
            std::process::exit(3);
        }
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vss-crash-recovery-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Deterministic xorshift64* stream for kill-point randomization.
fn next_rand(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    state.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// Maps every `{index}.gop` file under `root` to its bytes, keyed by
/// `(physical directory name, GOP index)` so two stores of the same workload
/// compare structurally.
fn gop_files(root: &Path) -> BTreeMap<(String, u64), Vec<u8>> {
    let mut files = BTreeMap::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "gop") {
                let parent = path
                    .parent()
                    .and_then(|p| p.file_name())
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                let index: u64 = path
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .and_then(|s| s.parse().ok())
                    .expect("gop file stem is its index");
                files.insert((parent, index), std::fs::read(&path).expect("read gop file"));
            }
        }
    }
    files
}

fn tmp_files(root: &Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "tmp") {
                found.push(path);
            }
        }
    }
    found
}

/// Spawns the ingest child against `root`/`ack` with extra env vars.
fn spawn_child(root: &Path, ack: &Path, extra_env: &[(&str, String)]) -> std::process::Child {
    let exe = std::env::current_exe().expect("current exe");
    let mut command = Command::new(exe);
    command
        .env(CHILD_ENV, "1")
        .env(ROOT_ENV, root)
        .env(ACK_ENV, ack)
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    for (key, value) in extra_env {
        command.env(key, value);
    }
    command.spawn().expect("spawn crash child")
}

fn read_ack(ack: &Path) -> u64 {
    std::fs::read_to_string(ack).ok().and_then(|s| s.trim().parse().ok()).unwrap_or(0)
}

/// Verifies a (possibly crashed) store against the clean reference run:
/// recovery succeeds, all `acked` GOPs are byte-identical and readable, no
/// temp/orphan files survive, and a second open has nothing left to repair.
fn verify_store(
    tag: &str,
    root: &Path,
    acked: u64,
    reference_root: &Path,
    reference: &mut Engine,
) {
    let mut engine = Engine::open(config(root))
        .unwrap_or_else(|error| panic!("[{tag}] recovery open failed: {error:?}"));
    let report = engine.recovery_report().clone();

    // Acked GOPs survive byte-identically on disk...
    let actual_files = gop_files(root);
    let reference_files = gop_files(reference_root);
    for index in 0..acked {
        let actual: Vec<&Vec<u8>> =
            actual_files.iter().filter(|((_, i), _)| *i == index).map(|(_, b)| b).collect();
        let expected: Vec<&Vec<u8>> =
            reference_files.iter().filter(|((_, i), _)| *i == index).map(|(_, b)| b).collect();
        assert_eq!(
            actual.len(),
            1,
            "[{tag}] acked GOP {index} must survive as exactly one file ({report:?})"
        );
        assert_eq!(
            actual[0], expected[0],
            "[{tag}] acked GOP {index} must be byte-identical to the clean run"
        );
    }

    // ...and through the read path.
    if acked > 0 {
        let end = (acked as usize * GOP) as f64 / FRAME_RATE;
        let request =
            ReadRequest::new("cam", 0.0, end, Codec::Raw(PixelFormat::Yuv420)).uncacheable();
        let recovered = engine
            .read(&request)
            .unwrap_or_else(|error| panic!("[{tag}] reading acked range failed: {error:?}"));
        let expected = reference
            .read(&request)
            .unwrap_or_else(|error| panic!("[{tag}] reference read failed: {error:?}"));
        assert_eq!(
            recovered.frames.frames(),
            expected.frames.frames(),
            "[{tag}] acked frames must match the clean run"
        );
    }

    // Recovery leaves no temp files or unreconciled debris, and a second
    // open (after the post-repair checkpoint) finds a clean store.
    assert!(tmp_files(root).is_empty(), "[{tag}] recovery must sweep .tmp files");
    drop(engine);
    let second = Engine::open(config(root))
        .unwrap_or_else(|error| panic!("[{tag}] second open failed: {error:?}"));
    assert!(
        !second.recovery_report().repaired_anything(),
        "[{tag}] repairs must be checkpointed on the first open: {:?}",
        second.recovery_report()
    );
}

fn main() {
    if std::env::var_os(CHILD_ENV).is_some() {
        child_main();
    }

    // Clean reference run: the same deterministic workload, uninterrupted.
    // Acked GOP files of every crashed run are compared against it.
    let reference_root = scratch("reference");
    let mut reference = Engine::open(config(&reference_root)).expect("open reference store");
    {
        let mut sink = reference
            .write_sink(&WriteRequest::new("cam", Codec::H264), FRAME_RATE)
            .expect("reference sink");
        for i in 0..TOTAL_FRAMES {
            sink.push_frame(frame(i)).expect("reference push");
        }
        sink.finish().expect("reference finish");
    }
    println!("crash_recovery: reference store ready ({TOTAL_FRAMES} frames)");

    // Scenario A: kill -9 mid-ingest at randomized points.
    let mut rng = 0x9e37_79b9_7f4a_7c15u64;
    for iteration in 0..KILL_ITERATIONS {
        let tag = format!("kill-{iteration}");
        let dir = scratch(&tag);
        let root = dir.join("store");
        let ack = dir.join("acked"); // outside the store root by design
        let mut child = spawn_child(&root, &ack, &[]);
        let delay = 5 + next_rand(&mut rng) % 196;
        std::thread::sleep(Duration::from_millis(delay));
        child.kill().expect("kill -9 child");
        let output = child.wait_with_output().expect("reap child");
        let stderr = String::from_utf8_lossy(&output.stderr).into_owned();
        assert!(!stderr.contains("panicked"), "[{tag}] child panicked:\n{stderr}");
        let acked = read_ack(&ack);
        println!(
            "crash_recovery: [{tag}] killed after {delay}ms with {acked} acked GOP(s)"
        );
        verify_store(&tag, &root, acked, &reference_root, &mut reference);
        let _ = std::fs::remove_dir_all(dir);
    }

    // Scenario B: low-rate fault injection inside the child. Injected write
    // failures must surface as typed errors (exit 3) or let the run finish
    // (exit 0) — never a panic — and the store still recovers.
    for iteration in 0..FAULT_ITERATIONS {
        let tag = format!("fault-{iteration}");
        let dir = scratch(&tag);
        let root = dir.join("store");
        let ack = dir.join("acked");
        // Low enough that a healthy prefix of GOPs lands (and gets acked)
        // before an injected failure kills the ingest.
        let spec = format!("rate=0.005,seed={},prefix={}", 41 + iteration, root.display());
        let child = spawn_child(&root, &ack, &[("VSS_FAULT_INJECT", spec)]);
        let output = child.wait_with_output().expect("wait fault child");
        let status = output.status;
        let stderr = String::from_utf8_lossy(&output.stderr).into_owned();
        assert!(!stderr.contains("panicked"), "[{tag}] child panicked:\n{stderr}");
        assert!(
            matches!(status.code(), Some(0) | Some(3)),
            "[{tag}] fault-injected child must exit cleanly or with a typed error, got {status:?}:\n{stderr}"
        );
        let acked = read_ack(&ack);
        println!(
            "crash_recovery: [{tag}] child exited {:?} with {acked} acked GOP(s)",
            status.code()
        );
        verify_store(&tag, &root, acked, &reference_root, &mut reference);
        let _ = std::fs::remove_dir_all(dir);
    }

    let _ = std::fs::remove_dir_all(reference_root);
    println!("crash_recovery: all scenarios passed");
}
