//! Cross-crate integration tests: the full write → read → cache → evict →
//! deferred-compress → joint-compress lifecycle through the public API.

use vss::baseline::{LocalFs, VStoreLike};
use vss::codec::EncoderConfig;
use vss::core::{
    joint_compress_sequences, recover_sequences, EvictionPolicy, JointConfig, JointOutcome,
    MergeFunction, StorageBudget,
};
use vss::frame::{quality, PsnrDb};
use vss::prelude::*;
use vss::workload::{DatasetSpec, QueryWorkload, SceneConfig, SceneRenderer};

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "vss-integration-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn traffic_video(frames: usize) -> FrameSequence {
    let renderer = SceneRenderer::new(SceneConfig {
        resolution: Resolution::new(128, 72),
        format: PixelFormat::Yuv420,
        ..Default::default()
    });
    renderer.render_sequence(0, frames)
}

#[test]
fn full_lifecycle_write_read_cache_reuse_and_restart() {
    let root = scratch("lifecycle");
    let video = traffic_video(90);
    {
        let vss = Vss::open(VssConfig::new(&root)).unwrap();
        vss.write(&WriteRequest::new("traffic", Codec::H264), &video).unwrap();

        // A raw low-resolution read (detection input) is cached...
        let detection = vss
            .read(
                &ReadRequest::new("traffic", 0.0, 2.0, Codec::Raw(PixelFormat::Rgb8))
                    .at_resolution(Resolution::new(64, 36)),
            )
            .unwrap();
        assert!(detection.stats.cache_admitted);

        // ...and an HEVC read transcodes and caches.
        let hevc = vss.read(&ReadRequest::new("traffic", 0.0, 2.0, Codec::Hevc)).unwrap();
        assert!(hevc.stats.cache_admitted);
        let p = quality::sequence_psnr(&video.frames()[..60], hevc.frames.frames()).unwrap();
        assert!(p.db() > 30.0, "transcoded output should stay faithful, got {p}");
    }
    // Re-open the store: the catalog and cached fragments survive restart.
    let vss = Vss::open(VssConfig::new(&root)).unwrap();
    assert_eq!(vss.video_names(), vec!["traffic".to_string()]);
    let fragments = vss.with_engine(|engine| engine.materialized_fragment_count("traffic")).unwrap();
    assert!(fragments > 0, "cached fragments persist across restart");
    let again = vss.read(&ReadRequest::new("traffic", 0.5, 1.5, Codec::Hevc).uncacheable()).unwrap();
    assert_eq!(again.frames.len(), 30);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn parallel_engine_produces_bit_identical_store_and_reads() {
    // The `parallelism` knob must not change any observable output: a store
    // written and read with 4 workers is byte-identical on disk to one
    // produced with the sequential (parallelism = 1) configuration, and the
    // decoded read results match frame for frame.
    let video = traffic_video(45);
    let run = |threads: usize, tag: &str| {
        let root = scratch(tag);
        let vss =
            Vss::open(VssConfig::new(&root).with_gop_size(10).with_parallelism(threads)).unwrap();
        vss.write(&WriteRequest::new("traffic", Codec::H264), &video).unwrap();
        // A transcoding read exercises decode, normalize and re-encode.
        let read = vss.read(&ReadRequest::new("traffic", 0.0, 1.0, Codec::Hevc)).unwrap();
        // Collect every GOP file's bytes, keyed by its store-relative path.
        let mut pages: Vec<(String, Vec<u8>)> = Vec::new();
        let mut pending = vec![root.clone()];
        while let Some(dir) = pending.pop() {
            for entry in std::fs::read_dir(&dir).unwrap() {
                let path = entry.unwrap().path();
                if path.is_dir() {
                    pending.push(path);
                } else if path.extension().is_some_and(|e| e == "gop") {
                    let relative =
                        path.strip_prefix(&root).unwrap().to_string_lossy().into_owned();
                    pages.push((relative, std::fs::read(&path).unwrap()));
                }
            }
        }
        pages.sort_by(|a, b| a.0.cmp(&b.0));
        let _ = std::fs::remove_dir_all(root);
        (pages, read.frames, read.encoded)
    };
    let (sequential_pages, sequential_frames, sequential_encoded) = run(1, "det-seq");
    let (parallel_pages, parallel_frames, parallel_encoded) = run(4, "det-par");
    assert_eq!(sequential_pages, parallel_pages, "on-disk GOP pages diverged");
    assert_eq!(sequential_frames, parallel_frames, "decoded read output diverged");
    let as_bytes = |gops: Option<Vec<vss::codec::EncodedGop>>| {
        gops.map(|gops| gops.iter().map(|g| g.to_bytes()).collect::<Vec<_>>())
    };
    assert_eq!(
        as_bytes(sequential_encoded),
        as_bytes(parallel_encoded),
        "re-encoded read output diverged"
    );
}

#[test]
fn budget_pressure_evicts_but_always_preserves_readability() {
    let root = scratch("eviction");
    let video = traffic_video(90);
    let vss = Vss::open(VssConfig::new(&root)).unwrap();
    vss.create("traffic", Some(StorageBudget::MultipleOfOriginal(2.0))).unwrap();
    vss.write(&WriteRequest::new("traffic", Codec::H264), &video).unwrap();
    let duration = video.duration_seconds();
    let workload =
        QueryWorkload::cache_population("traffic", duration, Resolution::new(128, 72), 7);
    for request in workload.generate(20) {
        let _ = vss.read(&request);
    }
    let budget = vss.budget_bytes("traffic").unwrap().unwrap();
    assert!(
        vss.bytes_used("traffic").unwrap() <= budget,
        "eviction keeps the store within its budget"
    );
    // Whatever was evicted, the full video can still be read at full quality.
    let full = vss.read(&ReadRequest::new("traffic", 0.0, duration, Codec::H264).uncacheable()).unwrap();
    assert_eq!(full.frames.len(), video.len());
    let p = quality::sequence_psnr(video.frames(), full.frames.frames()).unwrap();
    assert!(p.db() > 30.0, "original quality is always reproducible, got {p}");
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn lru_vss_keeps_more_useful_fragments_than_plain_lru() {
    let video = traffic_video(90);
    let duration = video.duration_seconds();
    let run = |policy: EvictionPolicy, tag: &str| {
        let root = scratch(tag);
        let vss = Vss::open(VssConfig::new(&root)).unwrap();
        vss.create("traffic", Some(StorageBudget::MultipleOfOriginal(2.5))).unwrap();
        vss.write(&WriteRequest::new("traffic", Codec::H264), &video).unwrap();
        vss.with_engine(|engine| engine.config.eviction_policy = policy);
        let workload =
            QueryWorkload::cache_population("traffic", duration, Resolution::new(128, 72), 5);
        for request in workload.generate(15) {
            let _ = vss.read(&request);
        }
        // Count how fragmented the surviving cached entries are.
        let runs = vss.with_engine(|engine| engine.fragment_run_count("traffic").unwrap());
        let _ = std::fs::remove_dir_all(root);
        runs
    };
    let vss_runs = run(EvictionPolicy::default(), "lruvss");
    let lru_runs = run(EvictionPolicy::Lru, "plainlru");
    // LRU_VSS's position term avoids shattering physical videos into more
    // contiguous runs than plain LRU does.
    assert!(
        vss_runs <= lru_runs,
        "LRU_VSS should leave the cache no more fragmented than LRU ({vss_runs} vs {lru_runs})"
    );
}

#[test]
fn joint_compression_end_to_end_on_table1_style_pair() {
    let spec = DatasetSpec::by_name("visualroad-1k-50").unwrap();
    let dataset = spec.generate(8, 4);
    let left = dataset.primary().clone();
    let right = dataset.secondary().unwrap().clone();
    let config = JointConfig {
        min_correspondences: 6,
        quality_threshold: PsnrDb(26.0),
        recovery_threshold: PsnrDb(22.0),
        ..JointConfig::default()
    };
    let mut timings = vss::core::JointTimings::default();
    let outcome = joint_compress_sequences(
        &left,
        &right,
        MergeFunction::Mean,
        &config,
        &EncoderConfig::default(),
        None,
        &mut timings,
    )
    .unwrap();
    let JointOutcome::Compressed(artifact) = outcome else {
        panic!("expected joint compression to succeed, got {outcome:?}");
    };
    let (recovered_left, recovered_right) = recover_sequences(&artifact).unwrap();
    assert_eq!(recovered_left.len(), left.len());
    assert!(quality::sequence_psnr(left.frames(), recovered_left.frames()).unwrap().db() > 24.0);
    assert!(quality::sequence_psnr(right.frames(), recovered_right.frames()).unwrap().db() > 20.0);
}

#[test]
fn baselines_and_vss_agree_on_content() {
    // Every store is driven through the one `VideoStorage` trait.
    let video = traffic_video(60);
    let duration = video.duration_seconds();
    let write = WriteRequest::new("v", Codec::H264);
    let read = ReadRequest::new("v", 0.0, duration, Codec::H264);

    let vss_root = scratch("agree-vss");
    let mut vss_store = Vss::open(VssConfig::new(&vss_root)).unwrap();
    let store: &mut dyn VideoStorage = &mut vss_store;
    store.write(&write, &video).unwrap();
    let vss_frames = store.read(&read).unwrap().frames;

    let fs_root = scratch("agree-fs");
    let mut fs_store = LocalFs::new(&fs_root).unwrap();
    fs_store.write(&write, &video).unwrap();
    let fs_frames = fs_store.read(&read).unwrap().frames;

    let vstore_root = scratch("agree-vstore");
    let mut vstore = VStoreLike::new(&vstore_root, vec![Codec::H264]).unwrap();
    vstore.write(&write, &video).unwrap();
    let vstore_frames = vstore.read(&read).unwrap().frames;

    assert_eq!(vss_frames.len(), video.len());
    assert_eq!(fs_frames.len(), video.len());
    assert_eq!(vstore_frames.len(), video.len());
    // All three stores decode to (near) identical content.
    let a = quality::sequence_psnr(fs_frames.frames(), vss_frames.frames()).unwrap();
    let b = quality::sequence_psnr(fs_frames.frames(), vstore_frames.frames()).unwrap();
    assert!(a.db() > 35.0, "vss vs local-fs differ: {a}");
    assert!(b.db() > 35.0, "vstore vs local-fs differ: {b}");
    for root in [vss_root, fs_root, vstore_root] {
        let _ = std::fs::remove_dir_all(root);
    }
}

#[test]
fn streaming_ingest_supports_concurrent_prefix_reads() {
    let root = scratch("streaming");
    let vss = Vss::open(VssConfig::new(&root)).unwrap();
    let video = traffic_video(30);
    vss.write(&WriteRequest::new("live", Codec::H264), &video).unwrap();
    let writer = vss.clone();
    let appender = std::thread::spawn(move || {
        for _ in 0..3 {
            writer.append("live", &traffic_video(30)).unwrap();
        }
    });
    // Readers make progress on whatever prefix exists while writes continue.
    let mut successes = 0;
    for _ in 0..10 {
        if vss.read(&ReadRequest::new("live", 0.0, 1.0, Codec::H264).uncacheable()).is_ok() {
            successes += 1;
        }
    }
    appender.join().unwrap();
    assert!(successes > 0);
    // After the appends, four seconds of video are readable.
    let full = vss.read(&ReadRequest::new("live", 0.0, 4.0, Codec::H264).uncacheable()).unwrap();
    assert_eq!(full.frames.len(), 120);
    let _ = std::fs::remove_dir_all(root);
}
