//! Property-based tests (proptest) over the core invariants of the
//! reproduction: codec round trips, lossless identity, quality-bound
//! monotonicity, planner coverage/optimality dominance and eviction safety.

use proptest::prelude::*;
use vss::codec::{codec_instance, lossless, Codec, CostModel, EncoderConfig};
use vss::frame::{pattern, quality, Frame, FrameSequence, PixelFormat, Resolution};
use vss::solver::{plan_read, plan_read_greedy, FragmentCandidate, ReadPlanRequest};

fn arbitrary_frame(width: u32, height: u32) -> impl Strategy<Value = Frame> {
    (0u64..1_000_000).prop_map(move |seed| {
        let base = pattern::gradient(width, height, PixelFormat::Yuv420, seed);
        pattern::add_noise(&base, (seed % 5) as u8, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The lossless (deferred-compression) codec is an identity for any input
    /// at any level.
    #[test]
    fn lossless_codec_is_identity(data in proptest::collection::vec(any::<u8>(), 0..4096), level in 0u8..25) {
        let compressed = lossless::compress(&data, level);
        let restored = lossless::decompress(&compressed).unwrap();
        prop_assert_eq!(restored, data);
    }

    /// Varint/zig-zag residual coding round-trips arbitrary residual vectors.
    #[test]
    fn residual_coding_round_trips(residuals in proptest::collection::vec(-512i32..512, 0..2048)) {
        let mut buffer = Vec::new();
        vss::codec::bitstream::encode_residuals(&residuals, &mut buffer);
        let mut position = 0;
        let decoded = vss::codec::bitstream::decode_residuals(&buffer, &mut position).unwrap();
        prop_assert_eq!(decoded, residuals);
        prop_assert_eq!(position, buffer.len());
    }

    /// Both lossy codecs round-trip arbitrary (noisy-gradient) frames with an
    /// error bounded by the quantizer, and higher quality never decodes to a
    /// lower PSNR on the same content.
    #[test]
    fn lossy_codecs_bound_error_and_respect_quality(
        frame in arbitrary_frame(48, 32),
        advanced in any::<bool>(),
    ) {
        let codec = if advanced { Codec::Hevc } else { Codec::H264 };
        let implementation = codec_instance(codec);
        let sequence = FrameSequence::new(vec![frame.clone(), frame.clone()], 30.0).unwrap();
        let low = implementation.encode(&sequence, &EncoderConfig::with_quality(40)).unwrap();
        let high = implementation.encode(&sequence, &EncoderConfig::with_quality(95)).unwrap();
        let low_psnr = quality::sequence_psnr(
            sequence.frames(),
            implementation.decode(&low).unwrap().frames(),
        ).unwrap();
        let high_psnr = quality::sequence_psnr(
            sequence.frames(),
            implementation.decode(&high).unwrap().frames(),
        ).unwrap();
        prop_assert!(high_psnr.db() >= low_psnr.db() - 0.5,
            "higher quality decoded worse: {} vs {}", high_psnr, low_psnr);
        prop_assert!(high_psnr.db() > 35.0, "quality-95 should be near-lossless, got {}", high_psnr);
        // Serialization round trip preserves decodability.
        let reparsed = vss::codec::EncodedGop::from_bytes(&high.to_bytes()).unwrap();
        prop_assert_eq!(implementation.decode(&reparsed).unwrap(), implementation.decode(&high).unwrap());
    }

    /// The paper's transitive MSE bound holds for arbitrary three-frame chains.
    #[test]
    fn mse_composition_bound_holds(
        f0 in arbitrary_frame(32, 32),
        noise_a in 0u8..12,
        noise_b in 0u8..12,
        seed in 0u64..1000,
    ) {
        let f1 = pattern::add_noise(&f0, noise_a, seed);
        let f2 = pattern::add_noise(&f1, noise_b, seed ^ 0xABCD);
        let direct = quality::mse(&f0, &f2).unwrap();
        let bound = quality::compose_mse_bound(
            quality::mse(&f0, &f1).unwrap(),
            quality::mse(&f1, &f2).unwrap(),
        );
        prop_assert!(direct <= bound + 1e-6, "direct {} exceeds bound {}", direct, bound);
    }

    /// The optimal planner always covers the requested range, never uses
    /// rejected-quality fragments, and never costs more than the greedy
    /// baseline.
    #[test]
    fn planner_covers_and_dominates_greedy(
        fragment_seeds in proptest::collection::vec((0.0f64..50.0, 1.0f64..30.0, any::<bool>(), any::<bool>()), 1..8),
        start in 0.0f64..10.0,
        length in 5.0f64..40.0,
    ) {
        let mut candidates = vec![FragmentCandidate {
            id: 0,
            start: 0.0,
            end: 60.0,
            resolution: Resolution::R2K,
            codec: Codec::H264,
            frame_rate: 30.0,
            gop_frames: 30,
            quality_ok: true,
        }];
        for (i, (frag_start, frag_len, use_hevc, quality_ok)) in fragment_seeds.iter().enumerate() {
            candidates.push(FragmentCandidate {
                id: (i + 1) as u64,
                start: *frag_start,
                end: (frag_start + frag_len).min(60.0),
                resolution: Resolution::R2K,
                codec: if *use_hevc { Codec::Hevc } else { Codec::H264 },
                frame_rate: 30.0,
                gop_frames: 30,
                quality_ok: *quality_ok,
            });
        }
        let request = ReadPlanRequest {
            start,
            end: (start + length).min(60.0),
            resolution: Resolution::R2K,
            codec: Codec::Hevc,
        };
        let model = CostModel::default();
        let optimal = plan_read(&request, &candidates, &model).unwrap();
        let greedy = plan_read_greedy(&request, &candidates, &model).unwrap();
        prop_assert!(optimal.covers_range(request.start, request.end));
        prop_assert!(greedy.covers_range(request.start, request.end));
        prop_assert!(optimal.total_cost <= greedy.total_cost + 1e-6);
        let rejected: Vec<u64> = candidates.iter().filter(|c| !c.quality_ok).map(|c| c.id).collect();
        for used in optimal.fragments_used() {
            prop_assert!(!rejected.contains(&used), "plan used a rejected fragment");
        }
    }

    /// Frame resampling and format conversion preserve shape invariants for
    /// arbitrary even target sizes.
    #[test]
    fn resampling_preserves_shape(
        frame in arbitrary_frame(64, 48),
        w in 2u32..80,
        h in 2u32..60,
    ) {
        let w = w & !1;
        let h = h & !1;
        prop_assume!(w >= 2 && h >= 2);
        let resized = vss::frame::resize_bilinear(&frame, w, h).unwrap();
        prop_assert_eq!(resized.width(), w);
        prop_assert_eq!(resized.height(), h);
        prop_assert_eq!(resized.format(), frame.format());
        let rgb = resized.convert(PixelFormat::Rgb8).unwrap();
        prop_assert_eq!(rgb.byte_len(), (w * h * 3) as usize);
    }
}
