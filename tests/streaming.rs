//! Streaming-API equivalence and bounded-memory guarantees:
//!
//! * `read_stream` drained chunk-by-chunk reproduces the materialized
//!   `read()` **byte-for-byte** across the full matrix of codec (raw and
//!   compressed) × cacheability × parallelism (1/4) × readahead (0/1/4) ×
//!   backend (monolithic `Vss` engine and sharded `vss-server` session) —
//!   and every readahead depth produces identical bytes to depth 0;
//! * a streaming consumer never holds more than `2 + readahead` GOPs of
//!   frames mid-stream (two GOPs in the default synchronous configuration —
//!   the O(GOP) vs O(clip) memory win);
//! * an incremental `WriteSink` produces a byte-identical store to a batch
//!   `write()` of the same frames, through both the `Vss` handle and a
//!   server session, at every readahead depth (overlapped encoding included);
//! * dropping a `ReadStream` (or aborting a `WriteSink`) with readahead
//!   workers in flight joins every worker, leaves no partial GOP on disk and
//!   never wedges a shard lock.
//!
//! Setting `VSS_STREAM_READAHEAD=<n>` adds depth `n` to the readahead axis
//! (CI uses this to re-run the suite in an extra readahead-enabled
//! configuration).

use vss::prelude::*;
use vss::workload::{SceneConfig, SceneRenderer};
use vss_server::VssServer;

/// The readahead axis of the equivalence matrix: synchronous, minimal
/// pipelining and a deeper pool; `VSS_STREAM_READAHEAD` appends an extra
/// depth so CI can force a readahead-enabled re-run of the whole suite.
fn readahead_depths() -> Vec<usize> {
    let mut depths = vec![0usize, 1, 4];
    if let Ok(value) = std::env::var("VSS_STREAM_READAHEAD") {
        if let Ok(depth) = value.trim().parse::<usize>() {
            if !depths.contains(&depth) {
                depths.push(depth);
            }
        }
    }
    depths
}

/// Count of live threads in this process (Linux); used to prove readahead
/// workers are joined, not leaked. Returns `None` where unsupported.
fn live_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|line| line.starts_with("Threads:"))
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|value| value.parse().ok())
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "vss-streaming-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn traffic_video(frames: usize) -> FrameSequence {
    let renderer = SceneRenderer::new(SceneConfig {
        resolution: Resolution::new(96, 54),
        format: PixelFormat::Yuv420,
        ..Default::default()
    });
    renderer.render_sequence(0, frames)
}

fn encoded_bytes(gops: &Option<Vec<vss::codec::EncodedGop>>) -> Option<Vec<Vec<u8>>> {
    gops.as_ref().map(|gops| gops.iter().map(|g| g.to_bytes()).collect())
}

/// Consumes a stream chunk-by-chunk, reassembling what a materialized read
/// would have returned.
fn drain_chunks(
    stream: ReadStream,
    source_frame_rate: f64,
) -> (FrameSequence, Vec<Vec<u8>>, usize) {
    let mut frames: Option<FrameSequence> = None;
    let mut gops = Vec::new();
    let mut stream = stream;
    for chunk in &mut stream {
        let chunk = chunk.unwrap();
        match &mut frames {
            // The output rate may differ from the source (`.fps()` requests);
            // adopt the first chunk's rate like a real consumer would.
            None => frames = Some(chunk.frames),
            Some(sequence) => sequence.extend(chunk.frames).unwrap(),
        }
        if let Some(gop) = chunk.encoded_gop {
            gops.push(gop.to_bytes());
        }
    }
    let peak = stream.peak_buffered_frames();
    (frames.unwrap_or_else(|| FrameSequence::empty(source_frame_rate).unwrap()), gops, peak)
}

/// The request matrix of the acceptance criteria: raw + compressed codecs,
/// pass-through and transcoding, sub-range entry (look-back), resolution
/// change, cacheable and not.
fn request_matrix(video: &str) -> Vec<ReadRequest> {
    vec![
        ReadRequest::new(video, 0.0, 3.0, Codec::Raw(PixelFormat::Yuv420)),
        ReadRequest::new(video, 0.0, 3.0, Codec::Raw(PixelFormat::Rgb8)).uncacheable(),
        ReadRequest::new(video, 0.0, 3.0, Codec::Hevc),
        ReadRequest::new(video, 0.0, 3.0, Codec::Hevc).uncacheable(),
        ReadRequest::new(video, 0.5, 2.5, Codec::H264).uncacheable(),
        ReadRequest::new(video, 0.0, 2.0, Codec::H264).resolution(Resolution::new(48, 28)),
        ReadRequest::new(video, 0.0, 2.0, Codec::Raw(PixelFormat::Yuv420)).fps(15.0).uncacheable(),
    ]
}

#[test]
fn stream_matches_materialized_read_on_the_engine_across_parallelism_and_readahead() {
    let video = traffic_video(90);
    for parallelism in [1usize, 4] {
        // Per-request reference output, captured at readahead 0: every depth
        // must reproduce it byte-for-byte.
        let mut reference: Vec<(FrameSequence, Vec<Vec<u8>>)> = Vec::new();
        for readahead in readahead_depths() {
            let root = scratch(&format!("engine-eq-{parallelism}-{readahead}"));
            let vss = Vss::open(
                VssConfig::new(&root).with_parallelism(parallelism).with_readahead(readahead),
            )
            .unwrap();
            vss.write(&WriteRequest::new("v", Codec::H264), &video).unwrap();
            // Warm the cache so later plans mix original and cached fragments.
            vss.read(&ReadRequest::new("v", 0.0, 2.0, Codec::Hevc)).unwrap();
            for (index, request) in request_matrix("v").into_iter().enumerate() {
                // Stream first: it admits nothing, so the materialized read
                // that follows sees the same store state the snapshot saw.
                let stream = vss.read_stream(&request).unwrap();
                let (frames, gops, _) = drain_chunks(stream, video.frame_rate());
                let materialized = vss.read(&request).unwrap();
                assert_eq!(
                    frames.frames(),
                    materialized.frames.frames(),
                    "frames diverged (parallelism {parallelism}, readahead {readahead}, \
                     request {request:?})"
                );
                let materialized_gops = encoded_bytes(&materialized.encoded).unwrap_or_default();
                assert_eq!(
                    gops, materialized_gops,
                    "encoded GOPs diverged (parallelism {parallelism}, readahead {readahead}, \
                     request {request:?})"
                );
                match reference.get(index) {
                    None => reference.push((frames, gops)),
                    Some((reference_frames, reference_gops)) => {
                        assert_eq!(
                            frames.frames(),
                            reference_frames.frames(),
                            "readahead {readahead} changed streamed frames \
                             (parallelism {parallelism}, request {request:?})"
                        );
                        assert_eq!(
                            &gops, reference_gops,
                            "readahead {readahead} changed streamed GOPs \
                             (parallelism {parallelism}, request {request:?})"
                        );
                    }
                }
            }
            let _ = std::fs::remove_dir_all(root);
        }
    }
}

#[test]
fn stream_matches_materialized_read_through_the_sharded_session_across_readahead() {
    let video = traffic_video(90);
    let mut reference: Vec<(FrameSequence, Vec<Vec<u8>>)> = Vec::new();
    for readahead in readahead_depths() {
        let root = scratch(&format!("session-eq-{readahead}"));
        let server =
            VssServer::open_sharded(VssConfig::new(&root).with_readahead(readahead), 4).unwrap();
        let session = server.session();
        session.write(&WriteRequest::new("cam", Codec::H264), &video).unwrap();
        session.read(&ReadRequest::new("cam", 0.0, 2.0, Codec::Hevc)).unwrap();
        for (index, request) in request_matrix("cam").into_iter().enumerate() {
            // The session snapshots under the shard's read lock and decodes
            // lock-free (on readahead workers when enabled); output must
            // still match the locked read exactly.
            let stream = session.read_stream(&request).unwrap();
            let (frames, gops, _) = drain_chunks(stream, video.frame_rate());
            let materialized = session.read(&request).unwrap();
            assert_eq!(
                frames.frames(),
                materialized.frames.frames(),
                "session stream frames diverged (readahead {readahead}, {request:?})"
            );
            assert_eq!(
                gops,
                encoded_bytes(&materialized.encoded).unwrap_or_default(),
                "session stream GOPs diverged (readahead {readahead}, {request:?})"
            );
            match reference.get(index) {
                None => reference.push((frames, gops)),
                Some((reference_frames, reference_gops)) => {
                    assert_eq!(
                        frames.frames(),
                        reference_frames.frames(),
                        "readahead {readahead} changed session stream frames ({request:?})"
                    );
                    assert_eq!(
                        &gops, reference_gops,
                        "readahead {readahead} changed session stream GOPs ({request:?})"
                    );
                }
            }
        }
        let _ = std::fs::remove_dir_all(root);
    }
}

#[test]
fn session_streams_decode_concurrently_with_an_exclusive_writer_elsewhere() {
    // A stream opened before another video's write proceeds without blocking:
    // the snapshot released the shard lock, so decoding is lock-free.
    let video = traffic_video(60);
    let root = scratch("session-lockfree");
    let server = VssServer::open_sharded(VssConfig::new(&root), 2).unwrap();
    let session = server.session();
    session.write(&WriteRequest::new("cam-a", Codec::H264), &video).unwrap();
    let stream = session
        .read_stream(&ReadRequest::new("cam-a", 0.0, 2.0, Codec::Hevc).uncacheable())
        .unwrap();
    // With the stream open, writes to the same shard still proceed (the
    // stream holds no lock).
    session.write(&WriteRequest::new("cam-b", Codec::H264), &video).unwrap();
    session.append("cam-a", &video).unwrap();
    let (frames, gops, _) = drain_chunks(stream, video.frame_rate());
    assert_eq!(frames.len(), 60);
    assert!(!gops.is_empty());
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn streaming_reads_buffer_at_most_two_gops_plus_readahead() {
    // 150 frames = 5 GOPs at the default GOP size of 30. A streaming
    // consumer must never see more than `2 + readahead` GOPs buffered (2 in
    // the default synchronous configuration), for raw reads, same-codec
    // reads and transcoding reads — while the materialized read necessarily
    // buffers the whole clip.
    let video = traffic_video(150);
    let gop_size = 30usize;
    for readahead in readahead_depths() {
        let root = scratch(&format!("bounded-{readahead}"));
        let vss = Vss::open(VssConfig::new(&root).with_readahead(readahead)).unwrap();
        vss.write(&WriteRequest::new("v", Codec::H264), &video).unwrap();
        for request in [
            ReadRequest::new("v", 0.0, 5.0, Codec::Raw(PixelFormat::Yuv420)).uncacheable(),
            ReadRequest::new("v", 0.0, 5.0, Codec::H264).uncacheable(),
            ReadRequest::new("v", 0.0, 5.0, Codec::Hevc).uncacheable(),
            // Resized streaming reads stay bounded too: the admission-quality
            // measurement (which buffers a whole segment) only runs on
            // cache-admitting reads, never on streams.
            ReadRequest::new("v", 0.0, 5.0, Codec::Hevc)
                .resolution(Resolution::new(48, 28))
                .uncacheable(),
        ] {
            let stream = vss.read_stream(&request).unwrap();
            let (frames, _, peak) = drain_chunks(stream, video.frame_rate());
            assert_eq!(frames.len(), 150);
            assert!(
                peak <= (2 + readahead) * gop_size,
                "streaming read buffered {peak} frames (> {} GOPs) at readahead \
                 {readahead} for {request:?}",
                2 + readahead
            );
            let materialized = vss.read(&request).unwrap();
            assert!(
                materialized.stats.peak_buffered_frames >= 150,
                "materialized reads hold the whole clip"
            );
        }
        let _ = std::fs::remove_dir_all(root);
    }
}

#[test]
fn write_sink_store_is_byte_identical_to_batch_write() {
    let video = traffic_video(75); // 2 full GOPs + 1 partial
    let collect_pages = |root: &std::path::Path| {
        let mut pages: Vec<(String, Vec<u8>)> = Vec::new();
        let mut pending = vec![root.to_path_buf()];
        while let Some(dir) = pending.pop() {
            for entry in std::fs::read_dir(&dir).unwrap() {
                let path = entry.unwrap().path();
                if path.is_dir() {
                    pending.push(path);
                } else {
                    let relative = path.strip_prefix(root).unwrap().to_string_lossy().into_owned();
                    pages.push((relative, std::fs::read(&path).unwrap()));
                }
            }
        }
        pages.sort_by(|a, b| a.0.cmp(&b.0));
        pages
    };

    // Batch write through the Vss handle.
    let batch_root = scratch("sink-batch");
    let batch = Vss::open(VssConfig::new(&batch_root)).unwrap();
    let batch_report = batch.write(&WriteRequest::new("v", Codec::H264), &video).unwrap();
    let batch_pages = collect_pages(&batch_root);

    // Incremental writes through the Vss handle, pushed frame-by-frame, at
    // every readahead depth (depth > 0 encodes on the overlapped worker):
    // all of them must produce the exact on-disk store the batch write did.
    for readahead in readahead_depths() {
        let sink_root = scratch(&format!("sink-inc-{readahead}"));
        let incremental = Vss::open(VssConfig::new(&sink_root).with_readahead(readahead)).unwrap();
        let mut sink = incremental.write_sink(&WriteRequest::new("v", Codec::H264), 30.0).unwrap();
        for frame in video.frames() {
            sink.push_frame(frame.clone()).unwrap();
        }
        let sink_report = sink.finish().unwrap();
        assert_eq!(sink_report.gops_written, batch_report.gops_written);
        assert_eq!(sink_report.bytes_written, batch_report.bytes_written);
        assert_eq!(sink_report.deferred_levels, batch_report.deferred_levels);
        assert_eq!(
            batch_pages,
            collect_pages(&sink_root),
            "sink store diverged from the batch store at readahead {readahead}"
        );

        // Reads of the sink-written store match reads of the batch-written one.
        let request =
            ReadRequest::new("v", 0.0, 2.5, Codec::Raw(PixelFormat::Yuv420)).uncacheable();
        let a = batch.read(&request).unwrap();
        let b = incremental.read(&request).unwrap();
        assert_eq!(a.frames.frames(), b.frames.frames());
        let _ = std::fs::remove_dir_all(sink_root);
    }
    let _ = std::fs::remove_dir_all(batch_root);
}

#[test]
fn session_write_sink_matches_session_batch_write() {
    let video = traffic_video(66);
    let batch_root = scratch("session-sink-batch");
    let sink_root = scratch("session-sink-inc");
    {
        let server = VssServer::open_sharded(VssConfig::new(&batch_root), 2).unwrap();
        server.session().write(&WriteRequest::new("cam", Codec::H264), &video).unwrap();
    }
    {
        // Readahead 2: the session sink encodes on its overlapped worker
        // while persisting under the shard lock per GOP — the store must
        // still be byte-identical to the synchronous batch write.
        let server =
            VssServer::open_sharded(VssConfig::new(&sink_root).with_readahead(2), 2).unwrap();
        let session = server.session();
        let mut sink = session.write_sink(&WriteRequest::new("cam", Codec::H264), 30.0).unwrap();
        // Push in uneven slabs to exercise re-chunking at GOP boundaries.
        for slab in video.frames().chunks(17) {
            for frame in slab {
                sink.push_frame(frame.clone()).unwrap();
            }
        }
        let report = sink.finish().unwrap();
        assert_eq!(report.frames_written, 66);
        assert_eq!(report.gops_written, 3);
        // The sink's write was accounted by the shard.
        assert!(server.stats().total_write_ops() >= 1);
        assert!(server.stats().total_bytes_written() > 0);
    }
    // Both stores reopen and serve identical content.
    let batch = VssServer::open_sharded(VssConfig::new(&batch_root), 2).unwrap();
    let sink = VssServer::open_sharded(VssConfig::new(&sink_root), 2).unwrap();
    let request = ReadRequest::new("cam", 0.0, 2.0, Codec::Raw(PixelFormat::Yuv420)).uncacheable();
    let a = batch.session().read(&request).unwrap();
    let b = sink.session().read(&request).unwrap();
    assert_eq!(a.frames.frames(), b.frames.frames());
    let _ = std::fs::remove_dir_all(batch_root);
    let _ = std::fs::remove_dir_all(sink_root);
}

#[test]
fn early_drop_with_readahead_in_flight_leaks_nothing_and_wedges_no_lock() {
    // Dropping a ReadStream (and aborting a WriteSink mid-clip) while
    // readahead workers are in flight must join every worker thread, leave
    // no partial GOP files and leave every shard lock free — proven by a
    // same-shard write plus a follow-up full read of the store afterwards.
    let video = traffic_video(150);
    let root = scratch("early-drop");
    let server = VssServer::open_sharded(VssConfig::new(&root).with_readahead(4), 2).unwrap();
    let session = server.session();
    session.write(&WriteRequest::new("cam", Codec::H264), &video).unwrap();
    let baseline_threads = live_threads();

    for consumed in [0usize, 1, 2] {
        // --- ReadStream dropped with prefetch workers in flight ------------
        let mut stream = session
            .read_stream(&ReadRequest::new("cam", 0.0, 5.0, Codec::Hevc).uncacheable())
            .unwrap();
        for _ in 0..consumed {
            stream.next().unwrap().unwrap();
        }
        drop(stream);

        // --- WriteSink aborted mid-clip with encodes in flight -------------
        let aborted = format!("aborted-{consumed}");
        let mut sink = session.write_sink(&WriteRequest::new(&aborted, Codec::H264), 30.0).unwrap();
        for frame in video.frames().iter().take(75) {
            sink.push_frame(frame.clone()).unwrap();
        }
        drop(sink);

        // The shard locks are free: a write routed to the same store (and a
        // full read of the original clip) completes immediately.
        session.append("cam", &traffic_video(30)).unwrap();
        let (start, end) = session.metadata("cam").unwrap().time_range.unwrap();
        let full = session
            .read(&ReadRequest::new("cam", start, end, Codec::Raw(PixelFormat::Yuv420)).uncacheable())
            .unwrap();
        assert_eq!(full.frames.len(), 150 + 30 * (consumed + 1));

        // Whatever prefix the aborted sink persisted is complete: either the
        // video never materialized, or every stored GOP is fully readable.
        if let Ok(metadata) = session.metadata(&aborted) {
            let (start, end) = metadata.time_range.unwrap();
            let persisted = session
                .read(
                    &ReadRequest::new(&aborted, start, end, Codec::Raw(PixelFormat::Yuv420))
                        .uncacheable(),
                )
                .unwrap();
            assert!(persisted.frames.len().is_multiple_of(30), "aborted sink left a partial GOP");
            assert!(persisted.frames.len() <= 75);
        }
    }

    // Every readahead/encode worker was joined on drop (Linux-only check).
    if let (Some(before), Some(after)) = (baseline_threads, live_threads()) {
        assert!(
            after <= before,
            "early drops leaked threads: {before} before, {after} after"
        );
    }
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn stream_chunk_deltas_measure_the_streaming_win() {
    // The per-chunk stats deltas give a consumer live visibility into I/O.
    let video = traffic_video(90);
    let root = scratch("deltas");
    let vss = Vss::open(VssConfig::new(&root)).unwrap();
    vss.write(&WriteRequest::new("v", Codec::H264), &video).unwrap();
    let stream =
        vss.read_stream(&ReadRequest::new("v", 0.0, 3.0, Codec::H264).uncacheable()).unwrap();
    let mut total_bytes = 0u64;
    let mut chunks = 0usize;
    let mut stream = stream;
    for chunk in &mut stream {
        let chunk = chunk.unwrap();
        total_bytes += chunk.stats_delta.bytes_read;
        chunks += 1;
    }
    assert!(chunks >= 3, "3 seconds at GOP size 30 yields at least 3 chunks");
    let stats = stream.stats();
    assert_eq!(total_bytes, stats.bytes_read, "deltas sum to the stream totals");
    assert!(stats.bytes_read > 0);
    let _ = std::fs::remove_dir_all(root);
}
