//! The acceptance gate for the `vss-net` multi-process service:
//!
//! * `RemoteStore` passes the streaming byte-identity equivalence matrix
//!   (the `tests/streaming.rs` request matrix, readahead {0, 1, 4} ×
//!   parallelism {1, 4}) against a loopback `NetServer` — every remote
//!   stream reproduces the in-process materialized read byte-for-byte, and
//!   every readahead depth produces identical bytes;
//! * a multi-client stress test (8+ concurrent TCP clients, mixed ops,
//!   admission limit exercised) verifies byte-identical stores vs. the
//!   sequential engine, with **zero leaked threads** and **no partial GOPs**
//!   after shutdown.
//!
//! `VSS_STREAM_READAHEAD=<n>` appends a depth to the readahead axis, like
//! the local streaming suite.

use vss::net::{NetServer, RemoteStore};
use vss::prelude::*;
use vss::server::{ServerConfig, VssServer};
use vss::workload::{SceneConfig, SceneRenderer};
use vss_core::VssError;

fn readahead_depths() -> Vec<usize> {
    let mut depths = vec![0usize, 1, 4];
    if let Ok(value) = std::env::var("VSS_STREAM_READAHEAD") {
        if let Ok(depth) = value.trim().parse::<usize>() {
            if !depths.contains(&depth) {
                depths.push(depth);
            }
        }
    }
    depths
}

/// Count of live threads in this process (Linux); `None` where unsupported.
fn live_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|line| line.starts_with("Threads:"))
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|value| value.parse().ok())
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "vss-remote-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn traffic_video(frames: usize) -> FrameSequence {
    let renderer = SceneRenderer::new(SceneConfig {
        resolution: Resolution::new(96, 54),
        format: PixelFormat::Yuv420,
        ..Default::default()
    });
    renderer.render_sequence(0, frames)
}

/// The request matrix of `tests/streaming.rs`, verbatim.
fn request_matrix(video: &str) -> Vec<ReadRequest> {
    vec![
        ReadRequest::new(video, 0.0, 3.0, Codec::Raw(PixelFormat::Yuv420)),
        ReadRequest::new(video, 0.0, 3.0, Codec::Raw(PixelFormat::Rgb8)).uncacheable(),
        ReadRequest::new(video, 0.0, 3.0, Codec::Hevc),
        ReadRequest::new(video, 0.0, 3.0, Codec::Hevc).uncacheable(),
        ReadRequest::new(video, 0.5, 2.5, Codec::H264).uncacheable(),
        ReadRequest::new(video, 0.0, 2.0, Codec::H264).resolution(Resolution::new(48, 28)),
        ReadRequest::new(video, 0.0, 2.0, Codec::Raw(PixelFormat::Yuv420)).fps(15.0).uncacheable(),
    ]
}

fn drain_chunks(stream: ReadStream) -> (FrameSequence, Vec<Vec<u8>>) {
    let mut frames: Option<FrameSequence> = None;
    let mut gops = Vec::new();
    for chunk in stream {
        let chunk = chunk.unwrap();
        match &mut frames {
            None => frames = Some(chunk.frames),
            Some(sequence) => sequence.extend(chunk.frames).unwrap(),
        }
        if let Some(gop) = chunk.encoded_gop {
            gops.push(gop.to_bytes());
        }
    }
    (frames.unwrap_or_else(|| FrameSequence::empty(30.0).unwrap()), gops)
}

#[test]
fn remote_store_passes_the_streaming_equivalence_matrix_over_loopback() {
    let video = traffic_video(90);
    let baseline_threads = live_threads();
    for parallelism in [1usize, 4] {
        // Reference bytes per request index, captured at the first readahead
        // depth of this parallelism: every depth must reproduce them.
        let mut reference: Vec<(FrameSequence, Vec<Vec<u8>>)> = Vec::new();
        for readahead in readahead_depths() {
            let root = scratch(&format!("matrix-{parallelism}-{readahead}"));
            let server = VssServer::open_sharded(
                VssConfig::new(&root).with_parallelism(parallelism).with_readahead(readahead),
                4,
            )
            .unwrap();
            let net = NetServer::bind(server.clone(), "127.0.0.1:0").unwrap();
            let mut remote = RemoteStore::connect(net.local_addr()).unwrap();

            // Ingest over the wire, then warm the cache in-process so later
            // plans mix original and cached fragments, like the local suite.
            remote.write(&WriteRequest::new("cam", Codec::H264), &video).unwrap();
            server.session().read(&ReadRequest::new("cam", 0.0, 2.0, Codec::Hevc)).unwrap();

            for (index, request) in request_matrix("cam").into_iter().enumerate() {
                // Remote stream first: it admits nothing server-side, so the
                // in-process materialized read that follows sees the same
                // store state the snapshot saw.
                let (frames, gops) = drain_chunks(remote.read_stream(&request).unwrap());
                let materialized = server.session().read(&request).unwrap();
                assert_eq!(
                    frames.frames(),
                    materialized.frames.frames(),
                    "remote frames diverged from the in-process read \
                     (parallelism {parallelism}, readahead {readahead}, request {request:?})"
                );
                let local_gops: Vec<Vec<u8>> =
                    materialized.encoded.iter().flatten().map(|g| g.to_bytes()).collect();
                assert_eq!(
                    gops, local_gops,
                    "remote GOPs diverged (parallelism {parallelism}, readahead {readahead})"
                );
                match reference.get(index) {
                    None => reference.push((frames, gops)),
                    Some((reference_frames, reference_gops)) => {
                        assert_eq!(
                            frames.frames(),
                            reference_frames.frames(),
                            "readahead {readahead} changed remote bytes \
                             (parallelism {parallelism}, request {request:?})"
                        );
                        assert_eq!(&gops, reference_gops);
                    }
                }
            }
            // The remote materialized read is the same drain (spot check —
            // RemoteStore::read is implemented as exactly this drain).
            let request = ReadRequest::new("cam", 0.5, 2.5, Codec::H264).uncacheable();
            let (streamed, _) = drain_chunks(remote.read_stream(&request).unwrap());
            let materialized = remote.read(&request).unwrap();
            assert_eq!(materialized.frames.frames(), streamed.frames());
            net.shutdown();
            drop(remote);
            assert!(
                server.shutdown(std::time::Duration::from_secs(30)),
                "server drains after the network front-end stops"
            );
            let _ = std::fs::remove_dir_all(root);
        }
    }
    if let (Some(before), Some(after)) = (baseline_threads, live_threads()) {
        assert!(after <= before, "matrix run leaked threads: {before} -> {after}");
    }
}

/// PR 9 regression (streaming double-admission): on the multiplexed
/// protocol a `RemoteStore` holds exactly **one** admission slot no matter
/// how many concurrent streams it runs. At `max_concurrent_sessions = 1` a
/// client whose control session is live must still complete streaming reads,
/// writes and a live subscription — before multiplexing, every streaming op
/// dialed a dedicated connection that counted as a second session, so the
/// client shed *itself* with `Overloaded`.
#[test]
fn single_admission_slot_serves_control_plus_streams() {
    let root = scratch("one-slot");
    let server = VssServer::open_configured(
        VssConfig::new(&root).with_readahead(2),
        1,
        ServerConfig { max_concurrent_sessions: 1, ..ServerConfig::default() },
    )
    .unwrap();
    let net = NetServer::bind(server.clone(), "127.0.0.1:0").unwrap();
    let baseline_threads = live_threads();
    let video = traffic_video(60);

    let mut store = RemoteStore::connect(net.local_addr()).unwrap();
    // Control-plane traffic keeps the session busy...
    store.create("cam", None).unwrap();
    // ...while the whole data plane multiplexes onto the same slot.
    store.write(&WriteRequest::new("cam", Codec::H264), &video).unwrap();
    assert!(store.metadata("cam").unwrap().bytes_used > 0);
    let request = ReadRequest::new("cam", 0.0, 2.0, Codec::Raw(PixelFormat::Yuv420));
    let (frames, _) = drain_chunks(store.read_stream(&request).unwrap());
    assert_eq!(frames.len(), 60);

    // Two concurrent streams plus a live feed plus interleaved control ops,
    // still one slot; the second dial is the one that gets shed.
    let mut feed = store.subscribe("cam", vss::net::SubscribeFrom::Start).unwrap();
    let mut first = store.read_stream(&request).unwrap();
    let second =
        store.read_stream(&ReadRequest::new("cam", 0.0, 1.0, Codec::Hevc).uncacheable()).unwrap();
    assert!(!first.next().unwrap().unwrap().frames.is_empty());
    assert!(matches!(feed.next().unwrap().unwrap(), vss::net::SubEvent::Gop(_)));
    assert!(store.metadata("cam").is_ok());
    match RemoteStore::connect(net.local_addr()) {
        Err(VssError::Overloaded(_)) => {}
        other => panic!("second client must be shed at a limit of 1, got {other:?}"),
    }
    // Early drops reset their streams without tearing down the connection.
    drop(first);
    drop(feed);
    let (frames, _) = drain_chunks(second);
    assert_eq!(frames.len(), 30);
    assert!(store.metadata("cam").is_ok(), "connection survives stream resets");
    assert!(server.rejected_sessions() > 0);

    drop(store);
    net.shutdown();
    assert!(server.shutdown(std::time::Duration::from_secs(30)));
    if let (Some(before), Some(after)) = (baseline_threads, live_threads()) {
        assert!(after <= before, "single-slot run leaked threads: {before} -> {after}");
    }
    let _ = std::fs::remove_dir_all(root);
}

const STRESS_CLIENTS: usize = 8;
const SESSION_LIMIT: usize = 4;
const GOP_SIZE: usize = 30;

/// Retries an operation while the server sheds it with `Overloaded` — the
/// client-side half of admission control.
fn with_backoff<T>(mut op: impl FnMut() -> Result<T, VssError>) -> T {
    for _ in 0..3000 {
        match op() {
            Ok(value) => return value,
            Err(VssError::Overloaded(_)) => {
                std::thread::sleep(std::time::Duration::from_millis(5))
            }
            Err(other) => panic!("unexpected error under stress: {other:?}"),
        }
    }
    panic!("operation stayed Overloaded for 15 seconds");
}

#[test]
fn eight_tcp_clients_with_admission_limit_leave_a_byte_identical_store() {
    let server_root = scratch("stress-server");
    let reference_root = scratch("stress-reference");
    let server = VssServer::open_configured(
        VssConfig::new(&server_root).with_readahead(2),
        4,
        ServerConfig { max_concurrent_sessions: SESSION_LIMIT, ..ServerConfig::default() },
    )
    .unwrap();
    let net = NetServer::bind(server.clone(), "127.0.0.1:0").unwrap();
    let addr = net.local_addr();
    // Sequential ground truth: monolithic engine, one worker, no readahead.
    let reference = Vss::open(VssConfig::new(&reference_root).with_parallelism(1)).unwrap();
    let baseline_threads = live_threads();

    // Mixed ops per client: wire write of its own video, streamed reads
    // (drained and early-dropped), an append, and an aborted sink mid-clip —
    // all while the session limit (4) gates 8 clients plus their dedicated
    // streaming connections. Each attempt dials a fresh store inside its
    // backoff loop, so a shed client holds **zero** sessions while it
    // sleeps — the documented client discipline that keeps a saturated
    // admission gate live (a client that kept its control connection while
    // waiting for a streaming slot could livelock the fleet).
    let clips: Vec<FrameSequence> = (0..STRESS_CLIENTS)
        .map(|client| {
            let renderer = SceneRenderer::new(SceneConfig {
                resolution: Resolution::new(48, 36),
                format: PixelFormat::Yuv420,
                seed: client as u64,
                ..Default::default()
            });
            renderer.render_sequence(0, 60)
        })
        .collect();
    let tail: FrameSequence = SceneRenderer::new(SceneConfig {
        resolution: Resolution::new(48, 36),
        format: PixelFormat::Yuv420,
        seed: 99,
        ..Default::default()
    })
    .render_sequence(60, 30);
    let mut handles = Vec::new();
    for (client, clip) in clips.iter().enumerate() {
        let clip = clip.clone();
        let tail = tail.clone();
        handles.push(std::thread::spawn(move || {
            let name = format!("verify-{client}");
            with_backoff(|| {
                RemoteStore::connect(addr)?.write(&WriteRequest::new(&name, Codec::H264), &clip)
            });

            // Drained stream + early-dropped stream. The store handle drops
            // at the end of the closure; the stream keeps only its own
            // dedicated connection.
            let stream = with_backoff(|| {
                RemoteStore::connect(addr)?
                    .read_stream(&ReadRequest::new(&name, 0.0, 2.0, Codec::Hevc).uncacheable())
            });
            let (frames, _) = drain_chunks(stream);
            assert_eq!(frames.len(), 60);
            let mut dropped = with_backoff(|| {
                RemoteStore::connect(addr)?
                    .read_stream(&ReadRequest::new(&name, 0.0, 2.0, Codec::Hevc).uncacheable())
            });
            dropped.next().unwrap().unwrap();
            drop(dropped);

            // Append the shared tail (part of the verified content).
            with_backoff(|| RemoteStore::connect(addr)?.append(&name, &tail));

            // Abort a sink mid-clip on a churn video: after shutdown only
            // fully persisted GOPs may exist. (Explicit loop — the sink
            // borrows its store, so both live and die together per attempt.)
            let churn = format!("churn-{client}");
            loop {
                let mut store = match RemoteStore::connect(addr) {
                    Ok(store) => store,
                    Err(VssError::Overloaded(_)) => {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        continue;
                    }
                    Err(other) => panic!("unexpected dial error: {other:?}"),
                };
                let aborted = {
                    match store.write_sink(&WriteRequest::new(&churn, Codec::H264), 30.0) {
                        Ok(mut sink) => {
                            for frame in clip.frames().iter().take(GOP_SIZE + 10) {
                                sink.push_frame(frame.clone()).unwrap();
                            }
                            drop(sink); // abort
                            true
                        }
                        Err(VssError::Overloaded(_)) => false,
                        Err(other) => panic!("unexpected sink error: {other:?}"),
                    }
                };
                drop(store); // hold nothing while backing off
                if aborted {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        }));
    }
    for handle in handles {
        handle.join().expect("stress client panicked");
    }
    assert!(
        server.rejected_sessions() > 0,
        "8 clients × dedicated stream connections against a limit of {SESSION_LIMIT} \
         must exercise admission control"
    );

    // Build the reference store sequentially and compare byte-for-byte.
    for (client, clip) in clips.iter().enumerate() {
        let name = format!("verify-{client}");
        reference.write(&WriteRequest::new(&name, Codec::H264), clip).unwrap();
        reference.append(&name, &tail).unwrap();
    }
    let mut verifier = with_backoff(|| RemoteStore::connect(addr));
    for client in 0..STRESS_CLIENTS {
        let name = format!("verify-{client}");
        for request in [
            ReadRequest::new(&name, 0.0, 3.0, Codec::Raw(PixelFormat::Yuv420)).uncacheable(),
            ReadRequest::new(&name, 0.0, 3.0, Codec::Hevc).uncacheable(),
        ] {
            let remote = with_backoff(|| verifier.read(&request));
            let local = reference.read(&request).unwrap();
            assert_eq!(
                remote.frames.frames(),
                local.frames.frames(),
                "remote store diverged from the sequential engine on {name}"
            );
            let remote_gops: Vec<Vec<u8>> =
                remote.encoded.iter().flatten().map(|g| g.to_bytes()).collect();
            let local_gops: Vec<Vec<u8>> =
                local.encoded.iter().flatten().map(|g| g.to_bytes()).collect();
            assert_eq!(remote_gops, local_gops, "encoded GOPs diverged on {name}");
        }
    }
    drop(verifier);

    // Shutdown: network first, then drain the engine.
    net.shutdown();
    assert!(
        server.shutdown(std::time::Duration::from_secs(30)),
        "server drains all sessions after shutdown"
    );

    // No partial GOPs: every aborted churn video holds whole GOPs only.
    let session = server.session(); // trusted escape hatch for the audit
    for client in 0..STRESS_CLIENTS {
        let churn = format!("churn-{client}");
        if let Ok(metadata) = session.metadata(&churn) {
            let (start, end) = metadata.time_range.unwrap();
            let persisted = session
                .read(
                    &ReadRequest::new(&churn, start, end, Codec::Raw(PixelFormat::Yuv420))
                        .uncacheable(),
                )
                .unwrap();
            assert_eq!(
                persisted.frames.len() % GOP_SIZE,
                0,
                "aborted sink left a partial GOP on {churn}"
            );
        }
    }
    drop(session);

    // Zero leaked threads (Linux-only check): handlers, readers and
    // readahead workers were all joined.
    if let (Some(before), Some(after)) = (baseline_threads, live_threads()) {
        assert!(after <= before, "stress run leaked threads: {before} -> {after}");
    }
    let _ = std::fs::remove_dir_all(server_root);
    let _ = std::fs::remove_dir_all(reference_root);
}
